"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark regenerates one figure of the paper's evaluation section:
it runs the experiment harness, prints the series (method × x-axis,
throughput mean ± 95 % CI), and asserts the figure's qualitative claims
— who wins, by roughly what factor, where the crossovers fall.

By default the *quick* grids are used (fewer x-points, 3 repetitions).
Set ``REPRO_FULL_FIGURES=1`` for the paper's full grids, and see
EXPERIMENTS.md for recorded paper-vs-measured values.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL_FIGURES", "") not in ("", "0")


@pytest.fixture(scope="session")
def full_figures():
    return FULL


@pytest.fixture
def regenerate(benchmark, full_figures):
    """Run a figure function under pytest-benchmark and print its table."""

    def run(figure_fn, **kwargs):
        kwargs.setdefault("quick", not full_figures)
        result = benchmark.pedantic(
            lambda: figure_fn(**kwargs), rounds=1, iterations=1,
        )
        print()
        print(result.format_table())
        return result

    return run


def series_by_x(result, method):
    """Dict x -> mean MB/s for one method's series."""
    return {m.x: m.ci.mean for m in result.series[method]}
