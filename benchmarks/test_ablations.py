"""Ablations of Kascade's design choices, beyond the paper's figures.

The paper's conclusion notes that "Kascade has a high tuning potential
and could be tuned according to the network used in order to reduce
timeouts and achieve better performance even in case of sequential
failures" (§IV-G) and proposes slow-node exclusion as future work (§V).
These benchmarks quantify those claims on the simulator:

* detection timeout vs. failure cost (the knob the paper names);
* recovery ring-buffer size vs. recovery cost (small buffers force the
  expensive PGET path through the head);
* pipeline chunk size vs. fill latency at scale;
* slow-node exclusion on/off (the §V feature, implemented here).
"""

import pytest

from repro.baselines import KascadeSim, SimSetup, SlowNodePolicy
from repro.core import KascadeConfig, order_by_hostname
from repro.core.units import GB, mbps
from repro.distem import SEQUENTIAL_SCENARIOS, build_distem_platform
from repro.topology import build_fat_tree


def distem_setup(failures=()):
    plat = build_distem_platform()
    return SimSetup(
        network=plat.network, head=plat.vnodes[0], receivers=plat.vnodes[1:],
        size=5 * GB, failures=failures, include_startup=False,
    )


def fat_tree_setup(n, size=2 * GB, **kwargs):
    net = build_fat_tree(n + 1)
    hosts = order_by_hostname(net.host_names())
    kwargs.setdefault("include_startup", False)
    return SimSetup(network=net, head=hosts[0],
                    receivers=tuple(hosts[1: n + 1]), size=size, **kwargs)


def test_ablation_detection_timeout(benchmark):
    """Shorter io_timeout -> cheaper sequential failures (§IV-G).

    Each sequential failure costs roughly one detection timeout, so the
    10%-sequential scenario's throughput rises as the timeout shrinks."""

    def sweep():
        rows = []
        for timeout in (2.0, 1.0, 0.5, 0.25):
            method = KascadeSim(config=KascadeConfig(io_timeout=timeout))
            r = method.run(distem_setup(SEQUENTIAL_SCENARIOS[2].events))
            rows.append((timeout, mbps(r.throughput)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: detection timeout vs 10% sequential failures")
    for timeout, tput in rows:
        print(f"  io_timeout={timeout:5.2f}s -> {tput:6.1f} MB/s")
    rates = [tput for _t, tput in rows]
    assert rates == sorted(rates), "shorter timeouts must help"
    # The paper-tuning claim: meaningful headroom exists.
    assert rates[-1] > rates[0] * 1.08


def test_ablation_buffer_size(benchmark):
    """Bigger recovery buffers keep replacements off the PGET path.

    With a large ring buffer the upstream can replay everything the
    replacement missed; with a tiny one, the hole must be re-fetched
    from the head across the whole network."""

    def sweep():
        rows = []
        for chunks in (1, 4, 8, 64, 256):
            method = KascadeSim(
                config=KascadeConfig(buffer_chunks=chunks, io_timeout=1.0),
            )
            r = method.run(distem_setup(SEQUENTIAL_SCENARIOS[1].events))
            rows.append((chunks, mbps(r.throughput)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: ring-buffer size vs 5% sequential failures")
    for chunks, tput in rows:
        print(f"  buffer={chunks:4d} MiB-chunks -> {tput:6.1f} MB/s")
    by = dict(rows)
    # A big buffer is at least as good as a tiny one.
    assert by[256] >= by[1] - 0.5
    # And failure handling succeeded everywhere (nothing asserted inside
    # the sweep failed).


def test_ablation_chunk_size(benchmark):
    """Pipeline fill costs one chunk per hop: big chunks hurt at scale."""

    def sweep():
        rows = []
        for chunk in (64 * 1024, 256 * 1024, 1 << 20, 4 << 20, 16 << 20):
            method = KascadeSim(sim_chunk=chunk)
            r = method.run(fat_tree_setup(200))
            rows.append((chunk, mbps(r.throughput), r.data_time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: forwarding chunk size, 200 clients, 2 GB")
    for chunk, tput, t in rows:
        print(f"  chunk={chunk >> 10:6d} KiB -> {tput:6.1f} MB/s "
              f"(data {t:5.1f}s)")
    tputs = [t for _c, t, _d in rows]
    assert tputs[0] > tputs[-1], "16 MiB chunks must pay a visible fill cost"
    # 200 hops x 16 MiB at ~117 MB/s is ~27 s of fill on a 17 s transfer.
    assert tputs[-1] < 0.75 * tputs[0]


def test_ablation_slow_node_exclusion(benchmark):
    """The §V future-work feature: one malfunctioning node no longer
    slows down the whole process once exclusion is enabled."""

    def sweep():
        def run(policy):
            setup = fat_tree_setup(30)
            setup.network.host("node-15").copy_limit = 30e6
            return KascadeSim(slow_policy=policy).run(setup)

        dragged = run(None)
        excluded = run(SlowNodePolicy(threshold=40e6, grace=3.0))
        return dragged, excluded

    dragged, excluded = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: slow-node exclusion (one 15 MB/s laggard of 30)")
    print(f"  without exclusion: {mbps(dragged.throughput):6.1f} MB/s, "
          f"everyone completes at the laggard's pace")
    print(f"  with exclusion:    {mbps(excluded.throughput):6.1f} MB/s, "
          f"excluded={excluded.excluded}")
    assert mbps(dragged.throughput) < 25
    assert excluded.excluded == ["node-15"]
    assert excluded.throughput > 3 * dragged.throughput
    assert len(excluded.completed) == 29
