"""Fig. 7 — raw performance and scalability on 1 GbE with a 2 GB file.

Paper claims: only Kascade and MPI Broadcast nearly saturate the network
and scale with negligible loss; UDPCast keeps up until ~100 clients then
degrades rapidly; both TakTuk variants sit at roughly a third of the
line rate regardless of scale.
"""

import os

import pytest
from conftest import series_by_x

from repro.bench import fig07_scalability, fig07_scalability_10x


def test_fig07(regenerate):
    result = regenerate(fig07_scalability)

    kascade = series_by_x(result, "Kascade")
    mpi = series_by_x(result, "MPI/Eth")
    udpcast = series_by_x(result, "UDPCast")
    tk_chain = series_by_x(result, "TakTuk/chain")
    tk_tree = series_by_x(result, "TakTuk/tree")
    ns = sorted(kascade)
    n_max, n_min = ns[-1], ns[0]

    # Kascade and MPI saturate GbE (line rate 125 MB/s) even at scale...
    assert kascade[n_max] > 100
    assert mpi[n_max] > 95
    # ...with negligible loss versus the single-client point.
    assert kascade[n_max] > 0.85 * kascade[n_min]
    assert mpi[n_max] > 0.85 * mpi[n_min]

    # UDPCast matches them at small scale but collapses past ~100 clients.
    assert udpcast[n_min] > 100
    mid = max(n for n in ns if n <= 100)
    assert udpcast[n_max] < 0.65 * udpcast[mid]

    # TakTuk: flat, around a third of the line rate, for both shapes.
    for series in (tk_chain, tk_tree):
        for n in ns:
            assert 25 < series[n] < 55

    # Ranking at full scale: Kascade and MPI on top.
    assert kascade[n_max] > udpcast[n_max]
    assert mpi[n_max] > udpcast[n_max]
    assert udpcast[n_max] > tk_chain[n_max] * 0.9


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_FIGURES", "") in ("", "0"),
    reason="10x-scale extension: ~3 min of simulation; "
           "set REPRO_SCALE_FIGURES=1",
)
def test_fig07_10x_paper_scale(regenerate):
    """Beyond the paper: the sweep at 10x the Grid'5000 testbed.

    Not a claim the paper makes — a check that its rankings extrapolate
    (and that the simulation kernel sustains 2000-host fluid runs at
    all; before the kernel overhaul this regime took hours, and the
    TakTuk chain could not even be *built* past the interpreter's
    recursion limit).  At this depth pipeline fill time is no longer
    negligible for an unsegmented chain, so Kascade sheds throughput
    where segmented MPI does not — an honest model consequence, asserted
    as such rather than hidden.
    """
    result = regenerate(fig07_scalability_10x)

    kascade = series_by_x(result, "Kascade")
    mpi = series_by_x(result, "MPI/Eth")
    tk_chain = series_by_x(result, "TakTuk/chain")
    n_max = max(kascade)
    assert n_max >= 2000

    # The flat-baseline claim extrapolates: TakTuk sits at roughly a
    # third of line rate at 10x scale, exactly as it did at 200.
    assert 25 < tk_chain[n_max] < 55

    # Segmented MPI still nearly saturates GbE; unsegmented Kascade pays
    # its per-hop fill time (~depth x hop delay against 16 s of
    # transfer) but stays comfortably ahead of the flat chain.
    assert mpi[n_max] > 85
    assert kascade[n_max] > 1.5 * tk_chain[n_max]
    assert kascade[n_max] > 45
