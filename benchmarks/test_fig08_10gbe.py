"""Fig. 8 — the 14-node 10 GbE cluster, 5 GB file.

Paper claims: no method saturates 10 GbE (1250 MB/s); MPI is best
(peaks ~5 Gb/s, usually around 3); UDPCast next (usually slightly above
2 Gb/s); Kascade stable slightly above 2 Gb/s; TakTuk very low.  The
bottleneck is host memory bandwidth, not the network.
"""

from conftest import series_by_x

from repro.bench import fig08_10gbe


def test_fig08(regenerate):
    result = regenerate(fig08_10gbe)

    kascade = series_by_x(result, "Kascade")
    mpi = series_by_x(result, "MPI/Eth")
    udpcast = series_by_x(result, "UDPCast")
    tk_chain = series_by_x(result, "TakTuk/chain")
    ns = sorted(kascade)
    multi = [n for n in ns if n >= 2]  # relay chain actually exists

    # Nobody saturates the 1250 MB/s fabric.
    for series in (kascade, mpi, udpcast):
        assert all(v < 0.7 * 1250 for v in series.values())

    for n in multi:
        # MPI leads; 3 Gb/s = 375 MB/s is its typical neighbourhood.
        assert mpi[n] > udpcast[n]
        assert mpi[n] > kascade[n]
        assert 280 < mpi[n] < 750
        # Kascade sits slightly above 2 Gb/s = 250 MB/s...
        assert 220 < kascade[n] < 330
        # ...and UDPCast typically just above it, in the 2-3 Gb/s band
        # (the two are close neighbours in the paper as well).
        assert 215 < udpcast[n] < 450
        # TakTuk is far below everyone.
        assert tk_chain[n] < 60

    # On average UDPCast edges out Kascade (receivers never relay).
    udp_mean = sum(udpcast[n] for n in multi) / len(multi)
    kas_mean = sum(kascade[n] for n in multi) / len(multi)
    assert udp_mean > 0.95 * kas_mean

    # Kascade is *stable*: its spread across scale stays small.
    vals = [kascade[n] for n in multi]
    assert max(vals) - min(vals) < 0.15 * max(vals)
