"""Fig. 9 — IP over InfiniBand (20 Gb/s), 5 GB file, two IB switches.

Paper claims: MPI over native InfiniBand is very fast for small node
counts but collapses once the reservation spans both switches (160+
nodes, saturated inter-switch link) down to TakTuk-like numbers; Kascade
has more modest but *scalable* performance, similar to its 10 GbE
behaviour — the only method that stays flat.
"""

from conftest import series_by_x

from repro.bench import fig09_infiniband


def test_fig09(regenerate):
    result = regenerate(fig09_infiniband)

    kascade = series_by_x(result, "Kascade")
    mpi = series_by_x(result, "MPI/IB")
    tk_chain = series_by_x(result, "TakTuk/chain")
    ns = sorted(kascade)
    small = [n for n in ns if n <= 120]
    large = [n for n in ns if n >= 160]
    assert small and large, "grid must straddle the switch boundary"

    # Small scale: MPI/IB far ahead of everyone.
    for n in small:
        assert mpi[n] > 2.0 * kascade[n]
        assert mpi[n] > 400

    # Past one switch: MPI collapses to TakTuk's neighbourhood...
    for n in large:
        assert mpi[n] < 0.2 * mpi[small[0]]
        assert mpi[n] < 2.5 * tk_chain[n]
        # ...while Kascade now leads it.
        assert kascade[n] > mpi[n]

    # Kascade is flat across the boundary (the only scalable method).
    assert kascade[ns[-1]] > 0.85 * kascade[ns[0]]
    # And sits in its 10 GbE-like band (slightly above 2 Gb/s).
    for n in ns:
        assert 200 < kascade[n] < 350
