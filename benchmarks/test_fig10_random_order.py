"""Fig. 10 — randomized node ordering on the 1 GbE fat tree.

Paper claims: with a random order the Kascade chain crosses switches
repeatedly and saturates the uplinks, deteriorating badly — as does MPI.
TakTuk is already protocol-bound and barely moves.  The Kascade/ordered
reference keeps its Fig. 7 line-rate behaviour.
"""

from conftest import series_by_x

from repro.bench import fig10_random_order


def test_fig10(regenerate):
    result = regenerate(fig10_random_order)

    kascade = series_by_x(result, "Kascade")
    ordered = series_by_x(result, "Kascade/ordered")
    mpi = series_by_x(result, "MPI/Eth")
    tk_chain = series_by_x(result, "TakTuk/chain")
    ns = sorted(kascade)
    n_max = ns[-1]

    # Random ordering is catastrophic at scale for the pipeline methods.
    assert kascade[n_max] < 0.5 * ordered[n_max]
    assert mpi[n_max] < 0.5 * ordered[n_max]

    # The ordered reference keeps its line-rate behaviour.
    assert ordered[n_max] > 100

    # The degradation grows with scale (more shared uplink crossings).
    assert kascade[n_max] < kascade[ns[0]]

    # TakTuk barely notices: it was never near the network limits.
    assert tk_chain[n_max] > 0.8 * tk_chain[ns[0]]
