"""Fig. 11 — writing the 2 GB file to disk (83.5 MB/s drives), ≤30 clients.

Paper claims: all methods drop well below their RAM-sink numbers; Kascade
has the best performance, writing around 45 MB/s thanks to its
sequential streaming writes (§II-A1).
"""

from conftest import series_by_x

from repro.bench import fig11_disk


def test_fig11(regenerate):
    result = regenerate(fig11_disk)

    kascade = series_by_x(result, "Kascade")
    others = {
        name: series_by_x(result, name)
        for name in ("TakTuk/chain", "TakTuk/tree", "UDPCast", "MPI/Eth")
    }
    ns = sorted(kascade)

    for n in ns:
        # Everyone is far below the 117 MB/s RAM-sink plateau...
        assert kascade[n] < 65
        # ...and below the raw disk speed.
        assert kascade[n] < 83.5
        # Kascade around the paper's ~45 MB/s.
        assert 38 < kascade[n] < 55
        # Kascade leads every other method.
        for name, series in others.items():
            assert kascade[n] > series[n], (n, name)
