"""Fig. 13 (with Fig. 12's topology) — multi-site, routed, high-latency.

Paper claims: every method loses throughput as high-latency sites join;
Kascade offers the best overall performance; MPI suffers so badly from
latency (segment rendezvous) that TakTuk outperforms it.  UDPCast cannot
route and is excluded.  Fig. 12's observation — the Paris–Lyon backbone
link is crossed five times — is reproduced from the topology itself.
"""

from conftest import series_by_x

from repro.bench import fig12_site_map, fig13_multisite


def test_fig12_site_map(benchmark):
    text = benchmark.pedantic(fig12_site_map, rounds=1, iterations=1)
    print()
    print(text)
    assert "lyon-paris               used 5x" in text


def test_fig13(regenerate):
    result = regenerate(fig13_multisite)

    kascade = series_by_x(result, "Kascade")
    mpi = series_by_x(result, "MPI/Eth")
    tk_chain = series_by_x(result, "TakTuk/chain")
    tk_tree = series_by_x(result, "TakTuk/tree")
    ns = sorted(kascade)
    n_min, n_max = ns[0], ns[-1]

    # Throughput declines as distant sites join.
    for series in (kascade, mpi, tk_chain):
        assert series[n_max] < series[n_min]

    # Kascade is the best method at every point.
    for n in ns:
        assert kascade[n] > tk_chain[n]
        assert kascade[n] > tk_tree[n]
        assert kascade[n] > mpi[n]

    # MPI is outperformed by TakTuk once real WAN links are involved.
    for n in [n for n in ns if n >= 2]:
        assert mpi[n] < tk_chain[n]
