"""Fig. 14 — distributing a small (50 MB) file on the Fig. 7 platform.

Paper claims: with a small file the setup time dominates and the picture
inverts — methods with efficient startup (MPI, UDPCast) are clearly
better, while Kascade pays for starting itself through TakTuk.
"""

from conftest import series_by_x

from repro.bench import fig14_small_file


def test_fig14(regenerate):
    result = regenerate(fig14_small_file)

    kascade = series_by_x(result, "Kascade")
    mpi = series_by_x(result, "MPI/Eth")
    udpcast = series_by_x(result, "UDPCast")
    tk_chain = series_by_x(result, "TakTuk/chain")
    ns = sorted(kascade)
    n_max = ns[-1]

    # Everything is compressed far below the line rate...
    for series in (kascade, mpi, udpcast, tk_chain):
        assert all(v < 60 for v in series.values())
        # ...and throughput falls with the client count.
        assert series[n_max] < series[ns[0]]

    # MPI Broadcast outperforms the rest at scale (efficient startup).
    assert mpi[n_max] > kascade[n_max]
    assert mpi[n_max] > tk_chain[n_max]
    assert mpi[n_max] >= 0.95 * udpcast[n_max]

    # Kascade is dragged down by its TakTuk-based startup: the gap to
    # MPI is much wider here than with the 2 GB file.
    assert kascade[n_max] < 0.75 * mpi[n_max]
