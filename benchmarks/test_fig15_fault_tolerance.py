"""Fig. 15 — Kascade under injected failures (Distem, 100 vnodes on 20
physical nodes, 5 GB file).

Paper claims: the file is transferred correctly in every scenario; the
no-failure reference sits near 80 MB/s (folding + virtualisation
overhead, not the 125 MB/s line rate); simultaneous failures cost little
because their detection timeouts pipeline; sequential failures each pay
their own ~1 s timeout, so their cost grows with the failure count.
"""

from conftest import series_by_x

from repro.bench import fig15_fault_tolerance


def test_fig15(regenerate):
    result = regenerate(fig15_fault_tolerance)

    bars = series_by_x(result, "Kascade")

    # Reference throughput: ~80 MB/s, far below the 125 MB/s line rate.
    assert 72 < bars["no failure"] < 90

    # Every failure scenario completes (checked inside the harness); its
    # cost is bounded — small scenarios may tie the reference within the
    # repetition jitter, none may beat it by more, and none is
    # catastrophic.
    for name, value in bars.items():
        if name != "no failure":
            assert value < bars["no failure"] * 1.04
            assert value > 0.6 * bars["no failure"]
    # The expensive scenarios clearly pay.
    assert bars["10% seq."] < 0.92 * bars["no failure"]

    # Simultaneous failures pipeline their detection: near-flat cost.
    sim_vals = [bars["2% sim."], bars["5% sim."], bars["10% sim."]]
    assert max(sim_vals) - min(sim_vals) < 0.08 * bars["no failure"]

    # Sequential failures: cost grows with the number of failures...
    assert bars["2% seq."] > bars["5% seq."] > bars["10% seq."]
    # ...and 10% sequential is worse than 10% simultaneous.
    assert bars["10% seq."] < bars["10% sim."]

    # "In all the cases, the file was transferred correctly": every
    # surviving node completes, nothing aborts.
    for measurement in result.series["Kascade"]:
        for run in measurement.results:
            assert not run.aborted
            assert len(run.completed) == 99 - len(run.failed)
