"""Micro-benchmarks for the performance-critical building blocks.

These are the hot paths of the real runtime (framing, ring buffer) and
the simulator (the max–min solver); regressions here translate directly
into lower broadcast throughput or slower experiment sweeps.
"""

import numpy as np

from repro.core import (
    ChunkRingBuffer,
    Data,
    FailureRecord,
    FrameDecoder,
    PatternSource,
    TransferReport,
    encode_header,
)
from repro.simnet.flows import FlowSpec, solve_max_min

CHUNK = 256 * 1024
PAYLOAD = b"\xab" * CHUNK


def test_framing_encode(benchmark):
    """Header encoding: one per chunk on the wire."""
    msg = Data(1 << 30, CHUNK)
    out = benchmark(encode_header, msg)
    assert len(out) == 17


def test_framing_decode_stream(benchmark):
    """Decode a burst of 64 DATA frames (16 MiB of stream)."""
    wire = b"".join(
        encode_header(Data(i * CHUNK, CHUNK)) + PAYLOAD for i in range(64)
    )

    def decode():
        dec = FrameDecoder()
        dec.feed(wire)
        return sum(1 for _ in dec)

    assert benchmark(decode) == 64


def test_ring_buffer_append(benchmark):
    """Sustained appends with eviction — every received chunk pays this."""

    def fill():
        buf = ChunkRingBuffer(capacity=8 * CHUNK)
        for i in range(128):
            buf.append(PAYLOAD)
        return buf.buffered_bytes

    assert benchmark(fill) == 8 * CHUNK


def test_ring_buffer_replay(benchmark):
    """Replay read from a mid-window offset — the recovery path."""
    buf = ChunkRingBuffer(capacity=32 * CHUNK)
    for _ in range(32):
        buf.append(PAYLOAD)
    offset = buf.min_offset + 5 * CHUNK + 100

    def replay():
        return sum(len(d) for _o, d in buf.iter_chunks_from(offset))

    assert benchmark(replay) > 0


def test_report_roundtrip(benchmark):
    """Encode + decode a 50-failure report (a very bad day)."""
    rep = TransferReport(
        [FailureRecord(f"node-{i}", f"node-{i - 1}", i * 1000, "timeout")
         for i in range(1, 51)],
        source_digest=b"\x11" * 32,
    )

    def roundtrip():
        return len(TransferReport.decode(rep.encode()).failures)

    assert benchmark(roundtrip) == 50


def test_pattern_source_generation(benchmark):
    """Synthetic stream generation: the head's read path in tests."""
    src = PatternSource(64 * CHUNK, seed=3)

    def read_all():
        s = PatternSource(64 * CHUNK, seed=3)
        total = 0
        while True:
            piece = s.read_chunk(CHUNK)
            if not piece:
                return total
            total += len(piece)

    assert benchmark(read_all) == 64 * CHUNK


def test_solver_pipeline_200(benchmark):
    """The simulator's per-event cost: a 200-hop pipeline re-rate."""
    flows = []
    caps = {}
    for i in range(200):
        up = ("link", 2 * i)
        down = ("link", 2 * i + 1)
        caps[up] = 125e6
        caps[down] = 125e6
        caps[("copy", i)] = 560e6
        caps[("copy", i + 1)] = 560e6
        flows.append(FlowSpec(
            i,
            ((up, 1.0), (down, 1.0), (("copy", i), 1.0), (("copy", i + 1), 1.0)),
            limit=124e6 + i,   # near-identical limits: the worst case
        ))

    rates = benchmark(solve_max_min, flows, caps)
    assert len(rates) == 200


def test_solver_contended_uplink(benchmark):
    """Random-order style: 100 flows share 4 uplinks."""
    rng = np.random.default_rng(0)
    caps = {("up", j): 1.25e9 for j in range(4)}
    caps.update({("host", i): 125e6 for i in range(200)})
    flows = []
    for i in range(100):
        j = int(rng.integers(0, 4))
        flows.append(FlowSpec(
            i, ((("up", j), 1.0), (("host", 2 * i), 1.0),
                (("host", 2 * i + 1), 1.0)),
        ))
    rates = benchmark(solve_max_min, flows, caps)
    assert len(rates) == 100


def test_protosim_throughput(benchmark):
    """Events/second of the protocol-exact tier: an 8-node pipeline
    pushing 8 MiB in 64 KiB chunks (~1000 messages end to end)."""
    from repro.core import KascadeConfig
    from repro.protosim import ProtoBroadcast

    config = KascadeConfig(
        chunk_size=64 * 1024, buffer_chunks=8,
        io_timeout=0.5, ping_timeout=0.3, connect_timeout=1.0,
        report_timeout=10.0,
    )

    def run():
        bc = ProtoBroadcast(
            PatternSource(8 * 1024 * 1024, seed=1),
            [f"n{i}" for i in range(2, 10)], config=config,
        )
        result = bc.run()
        assert result.ok
        return result

    benchmark(run)


def test_fluid_sim_200_node_run(benchmark):
    """Wall-clock of the headline fluid scenario (Fig. 7 at n=200)."""
    from repro.baselines import KascadeSim, SimSetup
    from repro.core import order_by_hostname
    from repro.topology import build_fat_tree

    def run():
        net = build_fat_tree(201)
        hosts = order_by_hostname(net.host_names())
        setup = SimSetup(network=net, head=hosts[0],
                         receivers=tuple(hosts[1:]), size=2e9)
        result = KascadeSim().run(setup)
        assert len(result.completed) == 200
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
