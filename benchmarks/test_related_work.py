"""Related-work claims of §II-B, measured instead of cited.

* BitTorrent broadcast achieves only ~12 MB/s on a gigabit network
  (Dichev & Lastovetsky's result, blamed on protocol verbosity and
  tit-for-tat) — far below every pipelined method.
* Dolly, the chain ancestor, matches Kascade's wire throughput on a
  healthy small cluster (the pipeline idea is the same) but pays its
  sequential startup at scale and has no fault tolerance at all.
"""

import numpy as np
import pytest

from repro.baselines import BitTorrentSwarm, DollyChain, KascadeSim, SimSetup
from repro.core import order_by_hostname
from repro.core.units import GB, mbps
from repro.topology import build_fat_tree


def run(method, n, size=2 * GB, include_startup=True):
    net = build_fat_tree(n + 1)
    hosts = order_by_hostname(net.host_names())
    setup = SimSetup(
        network=net, head=hosts[0], receivers=tuple(hosts[1: n + 1]),
        size=size, include_startup=include_startup,
        rng=np.random.default_rng(7),
    )
    return method.run(setup)


def test_related_work(benchmark):
    def sweep():
        rows = {}
        for method_cls in (KascadeSim, DollyChain, BitTorrentSwarm):
            rows[method_cls.name] = {
                n: run(method_cls(), n) for n in (10, 50, 100)
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n§II-B related work, 1 GbE, 2 GB file (startup included):")
    for name, by_n in rows.items():
        series = "  ".join(
            f"n={n}: {mbps(r.throughput):6.1f}" for n, r in by_n.items()
        )
        print(f"  {name:12s} {series}  MB/s")

    bt = {n: mbps(r.throughput) for n, r in rows["BitTorrent"].items()}
    dolly = {n: mbps(r.throughput) for n, r in rows["Dolly"].items()}
    kascade = {n: mbps(r.throughput) for n, r in rows["Kascade"].items()}

    # The cited BitTorrent result: ~12 MB/s on gigabit, flat.
    for n, v in bt.items():
        assert 9 < v < 17, (n, v)

    # Dolly at its published scale (<= 10 nodes) matches Kascade...
    assert dolly[10] > 0.8 * kascade[10]
    # ...but its sequential startup erodes it badly at scale.
    assert dolly[100] < 0.5 * kascade[100]

    # Wire throughput (startup excluded) is pipeline-equal for Dolly.
    dolly_wire = run(DollyChain(), 100, include_startup=False)
    kascade_wire = run(KascadeSim(), 100, include_startup=False)
    assert mbps(dolly_wire.throughput) == pytest.approx(
        mbps(kascade_wire.throughput), rel=0.1
    )


# The fault-tolerance contrast (Dolly/BitTorrent die on failures,
# Kascade survives) is covered in tests/baselines/test_related.py.


def test_udpcast_unidirectional_tuning_dilemma(benchmark):
    """§II-B: the unidirectional mode's send-rate/FEC tuning surface.

    The paper "was unable to get it to work reliably"; the model shows
    why: every configuration either sacrifices a third of the line rate,
    pays heavy FEC overhead, or silently leaves receivers incomplete —
    and the sender cannot tell which happened.
    """
    from repro.baselines import UdpcastUnidirectional

    def sweep():
        rows = []
        for rate in (85e6, 105e6, 122e6):
            for fec in (0.05, 0.30):
                setup = SimSetup(
                    network=build_fat_tree(51),
                    head="node-1",
                    receivers=tuple(
                        order_by_hostname(build_fat_tree(51).host_names())[1:]
                    ),
                    size=2 * GB, include_startup=False,
                    rng=np.random.default_rng(1),
                )
                r = UdpcastUnidirectional(send_rate=rate,
                                          fec_overhead=fec).run(setup)
                rows.append((rate, fec, mbps(r.throughput),
                             len(r.completed), len(r.aborted)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nUDPCast unidirectional tuning surface (50 receivers, 2 GB):")
    print("  rate(MB/s)  FEC   goodput   complete  incomplete")
    for rate, fec, tput, done, lost in rows:
        print(f"  {rate / 1e6:9.0f}  {fec:4.2f}  {tput:7.1f}   "
              f"{done:8d}  {lost:10d}")

    by = {(r, f): (d, l) for r, f, _t, d, l in rows}
    # Conservative: reliable. Aggressive + lean FEC: silent losses.
    assert by[(85e6, 0.05)] == (50, 0)
    assert by[(122e6, 0.05)][1] > 0
    # Heavy FEC rescues reliability even near the line rate...
    assert by[(122e6, 0.30)][0] >= 45
    # ...but no aggressive configuration beats the *feedback* mode's
    # goodput without losing receivers — the mode is simply worse here.
