"""Real-runtime benchmarks: the byte-level protocol over loopback TCP.

These measure the actual Python implementation (threads + sockets +
framing), not the simulator — useful to track protocol-path regressions
and to show what a pure-Python Kascade moves on one machine.  Numbers
are loopback numbers; they say nothing about a 200-node fat tree (that
is the simulator's job) but everything about per-byte protocol cost.
"""

import pytest

from repro.core import KascadeConfig, NullSink, PatternSource
from repro.runtime import LocalBroadcast

SIZE = 32 * 1024 * 1024  # 32 MiB per run keeps rounds short


def _run(config, receivers=3):
    result = LocalBroadcast(
        PatternSource(SIZE, seed=1),
        [f"n{i}" for i in range(2, 2 + receivers)],
        config=config,
    ).run(timeout=120)
    assert result.ok
    return result


def test_loopback_pipeline_3_nodes(benchmark):
    config = KascadeConfig(chunk_size=1 << 20, buffer_chunks=8)
    result = benchmark.pedantic(
        lambda: _run(config), rounds=3, iterations=1,
    )
    rate = SIZE / result.duration / 2**20
    print(f"\n3-node loopback pipeline: {rate:.0f} MiB/s per node")


def test_loopback_small_chunks(benchmark):
    """4 KiB chunks: framing overhead dominates — the protocol-cost probe."""
    config = KascadeConfig(chunk_size=4096, buffer_chunks=64)
    result = benchmark.pedantic(
        lambda: _run(config, receivers=2), rounds=1, iterations=1,
    )
    rate = SIZE / result.duration / 2**20
    print(f"\n4 KiB-chunk loopback pipeline: {rate:.0f} MiB/s per node")


def test_loopback_with_digest(benchmark):
    """Integrity mode adds one SHA-256 pass per node."""
    config = KascadeConfig(chunk_size=1 << 20, buffer_chunks=8,
                           verify_digest=True)
    result = benchmark.pedantic(
        lambda: _run(config), rounds=3, iterations=1,
    )
    rate = SIZE / result.duration / 2**20
    print(f"\n3-node loopback with verify_digest: {rate:.0f} MiB/s per node")
