"""Cross-tier consistency: the fluid simulator and the protocol-exact
simulator agree on the paper's qualitative failure results.

The Fig. 15 headline — simultaneous failures pipeline their detection
and cost little, sequential failures pay one timeout each — must not be
an artifact of the fluid abstraction.  Here the *identical* time-based
failure schedule runs chunk-by-chunk through the complete protocol and
as fluid flows, and both orderings must reproduce.
"""

import pytest

from repro.baselines import KascadeSim, SimSetup
from repro.core import KascadeConfig, PatternSource, order_by_hostname
from repro.protosim import ProtoBroadcast, ProtoCrash
from repro.topology import build_fat_tree

SIZE = 48 * 1024 * 1024          # 48 MiB at ~119 MB/s ≈ 0.4 s clean
N = 12
CFG = KascadeConfig(
    chunk_size=256 * 1024, buffer_chunks=16,
    io_timeout=1.0, ping_timeout=0.5, connect_timeout=1.0,
    report_timeout=30.0,
)
#: One shared schedule: victims and their (simultaneous / staggered)
#: kill times, far enough apart that detections cannot overlap.
VICTIMS = ("n4", "n7", "n10")
T0 = 0.1
STAGGER = 2.5  # > io_timeout + recovery, so sequential truly serializes
SIM_SCHEDULE = tuple((T0, v) for v in VICTIMS)
SEQ_SCHEDULE = tuple((T0 + k * STAGGER, v) for k, v in enumerate(VICTIMS))


def proto_run(schedule):
    receivers = [f"n{i}" for i in range(2, N + 2)]
    crashes = tuple(
        ProtoCrash(v, at_time=t, mode="silent") for t, v in schedule
    )
    bc = ProtoBroadcast(
        PatternSource(SIZE, seed=3), receivers, config=CFG,
        crashes=crashes, bandwidth=125e6, latency=1e-4,
    )
    result = bc.run()
    survivors = [r for r in receivers
                 if r not in {v for _t, v in schedule}]
    assert result.ok, result.node_errors
    assert all(result.node_ok[s] for s in survivors)
    return result.sim_time


def fluid_run(schedule):
    net = build_fat_tree(N + 1)
    hosts = order_by_hostname(net.host_names())
    victims = {f"node-{int(v[1:])}" for _t, v in schedule}
    setup = SimSetup(
        network=net, head=hosts[0], receivers=tuple(hosts[1: N + 1]),
        size=SIZE,
        failures=tuple((t, f"node-{int(v[1:])}") for t, v in schedule),
        include_startup=False,
    )
    result = KascadeSim(config=CFG).run(setup)
    assert len(result.completed) == N - len(victims)
    return result.data_time


def test_tier_consistency_failure_costs(benchmark):
    def measure():
        return (
            (proto_run(()), proto_run(SIM_SCHEDULE), proto_run(SEQ_SCHEDULE)),
            (fluid_run(()), fluid_run(SIM_SCHEDULE), fluid_run(SEQ_SCHEDULE)),
        )

    (base_p, sim_p, seq_p), (base_f, sim_f, seq_f) = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    print(f"\nprotocol-exact: clean {base_p:6.2f}s  "
          f"3 simultaneous {sim_p:6.2f}s  3 sequential {seq_p:6.2f}s")
    print(f"fluid:          clean {base_f:6.2f}s  "
          f"3 simultaneous {sim_f:6.2f}s  3 sequential {seq_f:6.2f}s")

    # Both tiers: failures cost time, and the identical staggered
    # schedule costs strictly more than the simultaneous one (Fig. 15).
    for base, sim, seq in ((base_p, sim_p, seq_p), (base_f, sim_f, seq_f)):
        assert base < sim < seq

    # Clean transfers agree closely across tiers (same bandwidth and
    # chunking assumptions); failure scenarios agree on scale.
    assert base_p == pytest.approx(base_f, rel=0.15)
    assert sim_p == pytest.approx(sim_f, rel=0.6)
    assert seq_p == pytest.approx(seq_f, rel=0.6)
