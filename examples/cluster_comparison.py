#!/usr/bin/env python
"""Compare broadcast methods on a simulated 100-node GbE cluster.

A miniature of the paper's Fig. 7 experiment: distribute a 2 GB file to
100 clients on a fat-tree network and compare Kascade against TakTuk
(chain and tree), UDPCast, and MPI broadcast — including each tool's
startup cost.

Run:  python examples/cluster_comparison.py
"""

import numpy as np

from repro.baselines import (
    KascadeSim,
    MpiEthernet,
    SimSetup,
    TakTukChain,
    TakTukTree,
    UdpcastSim,
)
from repro.core import order_by_hostname
from repro.core.units import GB, mbps
from repro.topology import build_fat_tree

N_CLIENTS = 100
SIZE = 2 * GB


def run(method):
    net = build_fat_tree(N_CLIENTS + 1)  # 30 hosts per ToR switch, 10 Gb uplinks
    hosts = order_by_hostname(net.host_names())
    setup = SimSetup(
        network=net,
        head=hosts[0],
        receivers=tuple(hosts[1:]),
        size=SIZE,
        rng=np.random.default_rng(1),
    )
    return method.run(setup)


def main() -> None:
    print(f"2 GB broadcast to {N_CLIENTS} clients, 1 GbE fat tree "
          f"(line rate 125 MB/s):\n")
    print(f"{'method':14s} {'startup':>9s} {'transfer':>9s} "
          f"{'total':>8s} {'throughput':>11s}")
    rows = []
    for method in (KascadeSim(), MpiEthernet(), UdpcastSim(),
                   TakTukChain(), TakTukTree()):
        r = run(method)
        rows.append(r)
        print(f"{r.method:14s} {r.startup_time:8.2f}s {r.data_time:8.2f}s "
              f"{r.total_time:7.2f}s {mbps(r.throughput):8.1f} MB/s")

    best = max(rows, key=lambda r: r.throughput)
    print(f"\nWinner: {best.method} — the pipeline crosses every link "
          f"exactly once, so adding clients is nearly free.")


if __name__ == "__main__":
    main()
