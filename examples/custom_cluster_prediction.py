#!/usr/bin/env python
"""Predict broadcast performance for *your* cluster, before you run it.

Workflow a new user would follow:

1. describe the cluster as a topology JSON (here: two 1 GbE racks and
   one 10 GbE rack behind a core switch, with one rack on slow disks);
2. audit a proposed node order against the topology;
3. predict per-method broadcast time for the payload you care about;
4. check what a node failure would cost.

Run:  python examples/custom_cluster_prediction.py
"""

import numpy as np

from repro.baselines import KascadeSim, MpiEthernet, SimSetup, UdpcastSim
from repro.core.units import GB, mbps
from repro.topology import (
    audit_order,
    network_from_json,
    order_by_attachment,
)

TOPOLOGY = """
{
  "name": "acme-prod",
  "switches": ["rack-a", "rack-b", "rack-c", "core"],
  "hosts": [
    {"name": "a-01", "nic_rate": "1Gbit"}, {"name": "a-02", "nic_rate": "1Gbit"},
    {"name": "a-03", "nic_rate": "1Gbit"}, {"name": "a-04", "nic_rate": "1Gbit"},
    {"name": "b-01", "nic_rate": "1Gbit"}, {"name": "b-02", "nic_rate": "1Gbit"},
    {"name": "b-03", "nic_rate": "1Gbit"}, {"name": "b-04", "nic_rate": "1Gbit"},
    {"name": "c-01", "nic_rate": "10Gbit"}, {"name": "c-02", "nic_rate": "10Gbit"},
    {"name": "c-03", "nic_rate": "10Gbit"}, {"name": "c-04", "nic_rate": "10Gbit"}
  ],
  "links": [
    {"a": "a-01", "b": "rack-a", "capacity": "1Gbit"},
    {"a": "a-02", "b": "rack-a", "capacity": "1Gbit"},
    {"a": "a-03", "b": "rack-a", "capacity": "1Gbit"},
    {"a": "a-04", "b": "rack-a", "capacity": "1Gbit"},
    {"a": "b-01", "b": "rack-b", "capacity": "1Gbit"},
    {"a": "b-02", "b": "rack-b", "capacity": "1Gbit"},
    {"a": "b-03", "b": "rack-b", "capacity": "1Gbit"},
    {"a": "b-04", "b": "rack-b", "capacity": "1Gbit"},
    {"a": "c-01", "b": "rack-c", "capacity": "10Gbit"},
    {"a": "c-02", "b": "rack-c", "capacity": "10Gbit"},
    {"a": "c-03", "b": "rack-c", "capacity": "10Gbit"},
    {"a": "c-04", "b": "rack-c", "capacity": "10Gbit"},
    {"a": "rack-a", "b": "core", "capacity": "10Gbit"},
    {"a": "rack-b", "b": "core", "capacity": "10Gbit"},
    {"a": "rack-c", "b": "core", "capacity": "20Gbit"}
  ]
}
"""

SIZE = 8 * GB  # a container image bundle


def main() -> None:
    net = network_from_json(TOPOLOGY)
    print(f"cluster: {net}")

    # 2. order audit: a naive alphabetical order vs topology-derived.
    hosts = sorted(net.hosts)
    good_order = order_by_attachment(net, hosts)
    naive = [hosts[i] for i in
             np.random.default_rng(0).permutation(len(hosts))]
    print(f"\nproposed (shuffled) order: {audit_order(net, naive).summary()}")
    print(f"derived order:             "
          f"{audit_order(net, good_order).summary()}")

    head, receivers = good_order[0], tuple(good_order[1:])

    # 3. per-method prediction.
    print(f"\npredicted broadcast of {SIZE / GB:.0f} GB "
          f"to {len(receivers)} nodes:")
    for method in (KascadeSim(), MpiEthernet(), UdpcastSim()):
        setup = SimSetup(
            network=network_from_json(TOPOLOGY), head=head,
            receivers=receivers, size=SIZE,
        )
        r = method.run(setup)
        print(f"  {r.method:12s} {r.total_time:7.1f}s "
              f"({mbps(r.throughput):6.1f} MB/s)")

    # 4. what would a mid-chain node failure cost?
    clean = KascadeSim().run(SimSetup(
        network=network_from_json(TOPOLOGY), head=head,
        receivers=receivers, size=SIZE, include_startup=False,
    ))
    victim = receivers[len(receivers) // 2]
    failed = KascadeSim().run(SimSetup(
        network=network_from_json(TOPOLOGY), head=head,
        receivers=receivers, size=SIZE, include_startup=False,
        failures=((clean.data_time / 3, victim),),
    ))
    print(f"\nfailure drill: {victim} dies a third of the way in ->")
    print(f"  clean run {clean.data_time:.1f}s, with failure "
          f"{failed.data_time:.1f}s "
          f"(+{failed.data_time - clean.data_time:.1f}s), "
          f"{len(failed.completed)} of {len(receivers)} still complete")


if __name__ == "__main__":
    main()
