#!/usr/bin/env python
"""Fault tolerance demo: nodes die mid-transfer, the pipeline routes
around them (paper §III-D), and every survivor still gets a perfect copy.

Two failure modes are exercised over real TCP:

* ``close``  — the node's sockets reset (a crashed process);
* ``silent`` — the node hangs with sockets open: only the stalled-write
  timeout plus the unanswered liveness ping can detect it (§III-D1).

Run:  python examples/fault_tolerant_broadcast.py
"""

import hashlib

from repro import run_broadcast
from repro.core import HashingSink, KascadeConfig, PatternSource
from repro.runtime import CrashPlan

CONFIG = KascadeConfig(
    chunk_size=64 * 1024,
    buffer_chunks=8,
    io_timeout=0.3,
    ping_timeout=0.2,
    connect_timeout=0.5,
    report_timeout=8.0,
)

SIZE = 4 * 1024 * 1024


def run_scenario(title, crashes):
    source = PatternSource(SIZE, seed=3)
    expected = hashlib.sha256(source.expected_bytes(0, SIZE)).hexdigest()
    sinks = {}

    def sink_factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    receivers = [f"n{i}" for i in range(2, 9)]
    print(f"--- {title} ---")
    result = run_broadcast(
        source, receivers, sink_factory=sink_factory,
        config=CONFIG, crashes=crashes, trace=True, timeout=120,
    )

    print(f"  {result.report.summary()}")
    for record in result.report.failures:
        print(f"    {record.node} declared dead by {record.detected_by} "
              f"at offset {record.at_offset} ({record.reason})")
    # The structured trace tells the same story, machine-readably: the
    # stall -> ping -> failover chain, any hole fills, and who finished.
    for line in result.trace.failure_chronology().splitlines():
        print(f"  {line}")
    crashed = {c.node for c in crashes}
    for name in receivers:
        if name in crashed:
            continue
        assert sinks[name].hexdigest() == expected, f"{name} corrupted!"
    survivors = [n for n in receivers if n not in crashed]
    print(f"  all {len(survivors)} survivors verified byte-identical")
    assert result.ok
    print()


def main() -> None:
    run_scenario(
        "one node crashes (sockets reset)",
        [CrashPlan("n4", after_bytes=SIZE // 4)],
    )
    run_scenario(
        "two adjacent nodes crash simultaneously",
        [CrashPlan("n4", after_bytes=SIZE // 4),
         CrashPlan("n5", after_bytes=SIZE // 4)],
    )
    run_scenario(
        "a node hangs silently (detected via timeout + ping)",
        [CrashPlan("n6", after_bytes=SIZE // 3, mode="silent")],
    )
    print("All failure scenarios recovered correctly.")


if __name__ == "__main__":
    main()
