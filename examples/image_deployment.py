#!/usr/bin/env python
"""System-image deployment: stream-compressed input, on-the-fly unpack.

The use case that motivated Kascade (the Kadeploy cluster-provisioning
suite): push a compressed OS image to every node and decompress it on
arrival, without ever knowing the stream length in advance —

    dd if=/dev/sda2 | gzip | kascade -N n2,n3,n4 -O 'gunzip | dd of=...'

This example reproduces that pipeline with real processes: the head
reads a gzip stream (unknown length → StreamSource), every receiver
pipes the bytes into ``gunzip`` via a CommandSink, and the result is
checked against the original "partition image".

Run:  python examples/image_deployment.py
"""

import gzip
import hashlib
import io
import os
import tempfile

from repro.core import CommandSink, KascadeConfig, PatternSource, StreamSource
from repro.runtime import LocalBroadcast


def main() -> None:
    # A synthetic 8 MiB "partition image" with some compressible texture.
    image_size = 8 * 1024 * 1024
    image = PatternSource(image_size, seed=11).expected_bytes(0, image_size)
    image_digest = hashlib.sha256(image).hexdigest()
    compressed = gzip.compress(image, compresslevel=1)
    print(f"image: {image_size} bytes, compressed to {len(compressed)} "
          f"({100 * len(compressed) / image_size:.0f}%)")

    workdir = tempfile.mkdtemp(prefix="kascade-image-")
    receivers = [f"n{i}" for i in range(2, 6)]
    outputs = {name: os.path.join(workdir, f"{name}.img") for name in receivers}

    def sink_factory(name):
        # Paper Fig. 2: decompress on the fly on each node.
        return CommandSink(f"gunzip -c > {outputs[name]}")

    # StreamSource: the head cannot seek, exactly like reading from a pipe.
    source = StreamSource(io.BytesIO(compressed))
    config = KascadeConfig(chunk_size=128 * 1024, buffer_chunks=16)

    result = LocalBroadcast(
        source, receivers, sink_factory=sink_factory, config=config,
    ).run(timeout=120)
    assert result.ok, result.outcomes

    print(f"deployed to {len(receivers)} nodes in {result.duration:.2f}s")
    for name in receivers:
        data = open(outputs[name], "rb").read()
        ok = hashlib.sha256(data).hexdigest() == image_digest
        print(f"  {name}: unpacked {len(data)} bytes, "
              f"{'verified' if ok else 'CORRUPT'}")
        assert ok
        os.unlink(outputs[name])
    os.rmdir(workdir)
    print("Every node now holds the exact partition image.")


if __name__ == "__main__":
    main()
