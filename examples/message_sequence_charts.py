#!/usr/bin/env python
"""Regenerate the paper's protocol diagrams (Figs. 5 and 6) from runs.

The paper illustrates its protocol with two hand-drawn message sequence
charts: three nodes without errors (Fig. 5), and the same transfer with
``n2`` dying mid-stream and the pipeline routing around it (Fig. 6).
Because this repository's protocol-exact simulator executes the real
state machines, the charts below are *generated from actual protocol
runs* — every arrow is a message that really crossed a (simulated)
connection, with its timestamp.

Run:  python examples/message_sequence_charts.py
"""

from repro.core import KascadeConfig, PatternSource
from repro.protosim import ProtoBroadcast, ProtoCrash, render_msc

CFG = KascadeConfig(
    chunk_size=256 * 1024, buffer_chunks=8,
    io_timeout=0.5, ping_timeout=0.3, connect_timeout=1.0,
    report_timeout=10.0,
)
SIZE = 1024 * 1024  # 4 chunks: small enough for a readable chart


def fig5_clean_transfer() -> None:
    print("=" * 72)
    print("Fig. 5 equivalent: three nodes, no error")
    print("=" * 72)
    bc = ProtoBroadcast(PatternSource(SIZE, seed=1), ["n2", "n3"],
                        config=CFG)
    result = bc.run(trace=True)
    assert result.ok
    print(render_msc(result.message_log, ["n1", "n2", "n3"]))
    print()


def fig6_failure_and_recovery() -> None:
    print("=" * 72)
    print("Fig. 6 equivalent: n2 dies mid-stream; n1 reroutes to n3")
    print("=" * 72)
    bc = ProtoBroadcast(
        PatternSource(SIZE, seed=1), ["n2", "n3"], config=CFG,
        crashes=[ProtoCrash("n2", after_bytes=SIZE // 2)],
    )
    result = bc.run(trace=True)
    assert result.ok
    assert result.report.failed_nodes == ["n2"]
    # The crash happened just after the last message n2 ever sent.
    crash_time = max(t for t, src, _dst, _m, _p in result.message_log
                     if src == "n2")
    print(render_msc(
        result.message_log, ["n1", "n2", "n3"],
        annotations=[(crash_time + 1e-6, "n2 KILLED")],
    ))
    print()
    print(f"final report: {result.report.summary()}")


def main() -> None:
    fig5_clean_transfer()
    fig6_failure_and_recovery()
    print("\nEvery arrow above is a real protocol message from a real")
    print("(simulated) run — the charts regenerate themselves when the")
    print("protocol changes, unlike the paper's hand-drawn figures.")


if __name__ == "__main__":
    main()
