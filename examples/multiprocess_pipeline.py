#!/usr/bin/env python
"""Real OS processes, a real SIGKILL, and a live recovery.

The closest thing to the paper's deployment this side of a cluster: each
pipeline node runs as a *separate operating-system process* started
through the ``kascade`` CLI (``recv``/``send`` subcommands), connected
over real TCP sockets.  Mid-transfer, one receiver is killed with
SIGKILL — no cleanup, no goodbye — and the pipeline routes around it
exactly as §III-D describes: its predecessor detects the dead socket,
reconnects to the next node, replays the missing bytes from its ring
buffer (or has the orphan fetch them from the head via PGET), and the
final report names the victim.

Run:  python examples/multiprocess_pipeline.py
"""

import hashlib
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

N_RECEIVERS = 4
VICTIM = "n3"
SIZE = 64 * 1024 * 1024  # 64 MiB: long enough to kill someone mid-flight


def free_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="kascade-mp-"))
    payload = workdir / "payload.bin"
    # Deterministic, incompressible-ish payload.
    from repro.core import PatternSource
    data = PatternSource(SIZE, seed=21).expected_bytes(0, SIZE)
    payload.write_bytes(data)
    digest = hashlib.sha256(data).hexdigest()

    names = [f"n{i}" for i in range(1, N_RECEIVERS + 2)]
    registry = ",".join(f"{n}=127.0.0.1:{free_port()}" for n in names)
    # The head paces itself at 48 MiB/s so the transfer reliably outlives
    # the kill below, whatever else the machine is doing.
    common = ["--nodes", registry, "--chunk-size", str(256 * 1024),
              "--buffer-chunks", "32", "--timeout", "0.4", "--verify",
              "--bwlimit", str(48 * 1024 * 1024)]

    receivers = {}
    outputs = {}
    for name in names[1:]:
        out = workdir / f"{name}.copy"
        outputs[name] = out
        receivers[name] = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.kascade", "recv",
             "--name", name, "-o", str(out), *common],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
    print(f"started {N_RECEIVERS} receiver processes "
          f"(pids {[p.pid for p in receivers.values()]})")

    time.sleep(0.5)  # let every listener bind
    sender = subprocess.Popen(
        [sys.executable, "-m", "repro.cli.kascade", "send",
         "--name", "n1", "-i", str(payload), *common],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    print(f"sender started (pid {sender.pid}); "
          f"waiting for {VICTIM} to receive some data...")

    victim_out = outputs[VICTIM]
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if victim_out.exists() and victim_out.stat().st_size > SIZE // 6:
            break
        time.sleep(0.01)
    receivers[VICTIM].send_signal(signal.SIGKILL)
    print(f"SIGKILL -> {VICTIM} (pid {receivers[VICTIM].pid}) after it "
          f"stored {victim_out.stat().st_size} bytes")

    sender_out, _ = sender.communicate(timeout=120)
    print(f"sender finished (rc={sender.returncode}): "
          f"{sender_out.strip().splitlines()[-1]}")

    survivors = [n for n in names[1:] if n != VICTIM]
    for name in survivors:
        proc = receivers[name]
        out, _ = proc.communicate(timeout=60)
        got = hashlib.sha256(outputs[name].read_bytes()).hexdigest()
        status = "byte-identical" if got == digest else "CORRUPT"
        print(f"  {name} (rc={proc.returncode}): {status}")
        assert proc.returncode == 0 and got == digest, (name, out)
    receivers[VICTIM].wait(timeout=10)

    assert VICTIM in sender_out, "the report must name the victim"
    print(f"\nAll {len(survivors)} surviving processes verified; "
          f"the failure report correctly names {VICTIM}.")

    for f in workdir.iterdir():
        f.unlink()
    workdir.rmdir()


if __name__ == "__main__":
    main()
