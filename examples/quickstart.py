#!/usr/bin/env python
"""Quickstart: broadcast a file to several nodes over real TCP.

Every pipeline node runs as a thread with its own TCP listener, speaking
the full Kascade wire protocol (GET / DATA / END / REPORT / PASSED).
The example builds a 32 MB synthetic payload, broadcasts it to five
receivers, and verifies that every receiver got byte-identical data.

Run:  python examples/quickstart.py
"""

import hashlib
import time

from repro.core import HashingSink, KascadeConfig, PatternSource
from repro.runtime import LocalBroadcast


def main() -> None:
    size = 32 * 1024 * 1024
    source = PatternSource(size, seed=7)
    expected = hashlib.sha256(source.expected_bytes(0, size)).hexdigest()

    sinks = {}

    def sink_factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    config = KascadeConfig(chunk_size=256 * 1024, buffer_chunks=8)
    receivers = [f"n{i}" for i in range(2, 7)]

    print(f"Broadcasting {size // 2**20} MiB to {len(receivers)} nodes "
          f"over loopback TCP...")
    started = time.perf_counter()
    result = LocalBroadcast(
        source, receivers, sink_factory=sink_factory, config=config,
    ).run(timeout=120)
    elapsed = time.perf_counter() - started

    print(f"  done in {elapsed:.2f}s "
          f"({size * len(receivers) / elapsed / 2**20:.0f} MiB/s aggregate)")
    print(f"  head report: {result.report.summary()}")
    for name in receivers:
        ok = sinks[name].hexdigest() == expected
        print(f"  {name}: {sinks[name].bytes_written} bytes, "
              f"digest {'OK' if ok else 'MISMATCH'}")
        assert ok, f"{name} received corrupted data"
    assert result.ok
    print("All receivers hold byte-identical copies.")


if __name__ == "__main__":
    main()
