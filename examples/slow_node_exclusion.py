#!/usr/bin/env python
"""Slow-node detection and exclusion — the paper's future work, built.

§V: "Kascade does not currently defend very well against one specific
scenario: the case where the network or disk performance of one specific
node is slowing down the whole process.  Kascade could be further
improved to detect malfunctioning nodes (by measuring their performance
during the transfer) and exclude them from the transfer if their
performance is lower than a specific threshold."

This example builds a 30-node gigabit cluster where one node can only
relay at ~15 MB/s (a dying disk, a flapping NIC), then broadcasts 2 GB:

* without the policy, *every* node downstream of the laggard receives at
  the laggard's pace — the whole broadcast runs 8x slower;
* with the policy, the laggard's upstream notices that it has data
  queued but the neighbour will not absorb it, excludes the node, and
  re-serves its successor at full speed.

The attribution detail matters: nodes *after* the laggard also receive
slowly, but they are starved, not broken — only a sender with a backlog
may blame its receiver, so exactly one node is excluded.

Run:  python examples/slow_node_exclusion.py
"""

from repro.baselines import KascadeSim, SimSetup, SlowNodePolicy
from repro.core import order_by_hostname
from repro.core.units import GB, mbps
from repro.topology import build_fat_tree

LAGGARD = "node-15"


def run(policy):
    net = build_fat_tree(31)
    net.host(LAGGARD).copy_limit = 30e6   # relays at ~15 MB/s
    hosts = order_by_hostname(net.host_names())
    setup = SimSetup(network=net, head=hosts[0], receivers=tuple(hosts[1:]),
                     size=2 * GB, include_startup=False)
    return KascadeSim(slow_policy=policy).run(setup)


def main() -> None:
    print(f"30-node GbE pipeline; {LAGGARD} can only relay ~15 MB/s\n")

    dragged = run(None)
    print("Without exclusion:")
    print(f"  throughput {mbps(dragged.throughput):6.1f} MB/s — one sick "
          f"node slows down all {len(dragged.completed)} receivers")

    policy = SlowNodePolicy(threshold=40e6, grace=3.0, check_interval=1.0)
    healed = run(policy)
    print(f"\nWith SlowNodePolicy(threshold=40 MB/s, grace=3 s):")
    print(f"  throughput {mbps(healed.throughput):6.1f} MB/s")
    print(f"  excluded: {healed.excluded} (and only it — starved "
          f"successors are not blamed)")
    print(f"  completed: {len(healed.completed)} of 30 receivers")

    speedup = healed.throughput / dragged.throughput
    print(f"\n{speedup:.1f}x faster once the malfunctioning node is "
          f"excluded from the transfer.")
    assert healed.excluded == [LAGGARD]


if __name__ == "__main__":
    main()
