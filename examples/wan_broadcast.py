#!/usr/bin/env python
"""Broadcast across geographically distant sites (paper §IV-E).

Builds the Grid'5000-like WAN of Fig. 12 — sites behind a 10 Gb backbone
with ~16 ms inter-site RTT — and pushes a 1 GB file along the paper's
deliberately poor site order, showing how often each backbone link is
crossed and when each site finishes.

Run:  python examples/wan_broadcast.py
"""

from repro.baselines import KascadeSim, MpiEthernet, SimSetup, TakTukChain
from repro.core.units import GB, MB, mbps
from repro.topology import build_multisite, experiment_chain, link_usage

N_SITES = 6


def main() -> None:
    net = build_multisite(N_SITES)
    chain = experiment_chain(N_SITES)

    print("Pipeline over sites:", " -> ".join(chain))
    print("\nBackbone link usage (each hop follows the site order):")
    for link, count in sorted(link_usage(net, chain).items(),
                              key=lambda kv: -kv[1]):
        print(f"  {link:22s} crossed {count}x")

    print("\n1 GB broadcast (MPI: 100 MB, as in the paper):")
    for method in (KascadeSim(), TakTukChain(), MpiEthernet()):
        size = 100 * MB if method.name == "MPI/Eth" else 1 * GB
        setup = SimSetup(
            network=build_multisite(N_SITES), head=chain[0],
            receivers=tuple(chain[1:]), size=size,
        )
        r = method.run(setup)
        print(f"\n  {r.method}: {mbps(r.throughput):.1f} MB/s overall")
        for node in chain[1:]:
            t = r.finish_times.get(node)
            site = node.rsplit("-", 1)[0]
            print(f"    {site:12s} complete at t={t:7.2f}s")

    print("\nKascade's large per-hop TCP window keeps WAN hops efficient; "
          "MPI pays one RTT per segment and falls below TakTuk.")


if __name__ == "__main__":
    main()
