#!/usr/bin/env python
"""Run the loopback data-plane benchmarks and record a perf trajectory.

Runs the same scenarios as ``benchmarks/test_runtime_loopback.py`` without
pytest, printing per-scenario MiB/s and writing ``BENCH_loopback.json`` so
future PRs can compare against the numbers this PR measured.

Usage::

    PYTHONPATH=src python scripts/bench_loopback.py [--out BENCH_loopback.json]
        [--label current] [--rounds 3] [--size MIB] [--merge existing.json]

``--merge`` loads an existing JSON file and adds/replaces this run under
``--label``, preserving other labels (e.g. a pre-PR ``baseline``).

``--compare LABEL`` turns the run into a regression gate: after measuring,
exit non-zero if any scenario is more than ``--max-regression`` percent
(default 5) slower than the numbers stored under LABEL.  CI uses this to
verify the tracing-disabled hot path stays free::

    PYTHONPATH=src python scripts/bench_loopback.py --label ci \
        --compare pr1-zero-copy --max-regression 5

The ``file_sink_*`` scenarios model a ~256 MiB/s *synchronous* storage
device (per-write service time around a real file) so the
async-writeback vs. synchronous-sink comparison measures pipeline
overlap, not the host's page-cache speed.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Tuple

from repro.core import (
    FileSink,
    FileSource,
    KascadeConfig,
    PatternSource,
    Sink,
    Source,
    ThrottledSink,
)
from repro.runtime import LocalBroadcast

#: Modelled storage device rate for the disk-bound scenarios.  Slower
#: than loopback (so storage is the bottleneck the overlap must hide)
#: but fast enough that a 32 MiB round stays well under a second.
MODEL_DISK_RATE = 256 * 2**20


@dataclass
class Scenario:
    """One benchmark entry: config + topology + optional I/O setup."""

    config: KascadeConfig
    receivers: int
    description: str
    #: Per-round context manager yielding ``(source, sink_factory)``;
    #: ``None`` = in-memory PatternSource into NullSinks (pure network).
    setup: Optional[Callable[[int], "contextlib.AbstractContextManager"]] = None
    #: "local" = real loopback TCP; "simnet" = the discrete-event
    #: simulator, whose MiB/s is bytes over *simulated* seconds — the
    #: per-link bandwidth model, independent of the runner's core count
    #: (which is what makes the k-stripe speedup measurable on a
    #: single-core CI box where k CPU-bound loopback chains just share
    #: one core); "daemon" = real agent-process fleet via DaemonServer.
    backend: str = "local"
    #: For ``backend="daemon"``: "cold_vs_warm" measures a warm-session
    #: submit (launch paid once, before the session) against the cold
    #: first session; "repeat_cached" re-submits the same artifact so
    #: receivers replay their chunk cache instead of touching upstream.
    daemon_mode: Optional[str] = None
    #: Kill the head this fraction of the way into the stream and let
    #: the failover machinery promote a survivor; the scenario records
    #: election-to-first-chunk recovery latency alongside throughput.
    head_crash: Optional[float] = None


@contextlib.contextmanager
def _throttled_file_sinks(size: int) -> Iterator[Tuple[Source, Callable[[str], Sink]]]:
    """PatternSource head; receivers write real files via a model disk."""
    tmpdir = tempfile.mkdtemp(prefix="kascade-bench-")
    try:
        def sink_factory(name: str) -> Sink:
            return ThrottledSink(
                FileSink(Path(tmpdir) / f"{name}.bin", expected_size=size),
                MODEL_DISK_RATE,
            )
        yield PatternSource(size, seed=1), sink_factory
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


@contextlib.contextmanager
def _file_to_file(size: int) -> Iterator[Tuple[Source, Callable[[str], Sink]]]:
    """File-backed head (read-ahead path) into per-receiver file sinks."""
    tmpdir = tempfile.mkdtemp(prefix="kascade-bench-")
    try:
        src_path = Path(tmpdir) / "stream.bin"
        src_path.write_bytes(PatternSource(size, seed=1).expected_bytes(0, size))

        def sink_factory(name: str) -> Sink:
            return FileSink(Path(tmpdir) / f"{name}.bin", expected_size=size)

        yield FileSource(src_path), sink_factory
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


@contextlib.contextmanager
def _file_source_null_sinks(size: int) -> Iterator[Tuple[Source, None]]:
    """File-backed head into null sinks — striped runs split the source
    into per-stripe views, which needs random access to the file."""
    tmpdir = tempfile.mkdtemp(prefix="kascade-bench-")
    try:
        src_path = Path(tmpdir) / "stream.bin"
        src_path.write_bytes(PatternSource(size, seed=1).expected_bytes(0, size))
        yield FileSource(src_path), None
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def build_catalogue() -> dict:
    return {
        "pipeline_1mib_3nodes": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8), 3,
            "pure network relay: 1 MiB chunks, 3 receivers, null sinks"),
        "pipeline_1mib_6nodes": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8), 5,
            "deeper chain: 5 receivers so per-hop relay cost dominates; "
            "pipelining predicts throughput ~independent of chain length"),
        "small_chunks_4k": Scenario(
            KascadeConfig(chunk_size=4096, buffer_chunks=64), 2,
            "syscall/batching stress: 4 KiB chunks, 2 receivers"),
        "digest_1mib_3nodes": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8,
                          verify_digest=True), 3,
            "end-to-end SHA-256 verification on top of the relay"),
        # The writeback-vs-sync pair: identical except for the off switch.
        # One receiver + digest keeps the relay thread's per-chunk CPU
        # work close to the device's 4 ms/chunk service time, which is
        # where overlap matters most (and where the numbers are stable
        # on a single-core runner).
        "file_sink_1mib": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8,
                          verify_digest=True), 1,
            "disk-bound: ~256 MiB/s synchronous model disk, digest on, "
            "background writeback overlaps device and relay time",
            setup=_throttled_file_sinks),
        "file_sink_1mib_sync": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8,
                          verify_digest=True, sink_writeback_depth=0), 1,
            "same model disk, synchronous writes (writeback disabled): "
            "device service time adds to relay time",
            setup=_throttled_file_sinks),
        "file_to_file_pipeline": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8), 2,
            "file head (read-ahead) into real file sinks, page-cache speed",
            setup=_file_to_file),
        # The striped variant of the reference pipeline: 4 interleaved
        # chains over loopback.  On a single-core host the 4 chains
        # share one CPU, so this measures striping's *overhead* there;
        # the simnet pair below measures its aggregate-bandwidth win.
        "pipeline_1mib_3nodes_k4": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8, stripes=4), 3,
            "4-stripe relay: 4 interleaved chains, 3 receivers, file "
            "head (stripe views need random access), null sinks",
            setup=_file_source_null_sinks),
        # DES pair for the k-way aggregate-throughput claim: identical
        # 8-receiver broadcasts, single chain vs 4 stripes, on modelled
        # 125 MB/s links.  Simulated seconds, so the ratio is the
        # protocol's, not the runner's.
        "simnet_pipeline_8nodes": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8), 8,
            "DES reference: single chain, 8 receivers, 125 MB/s links",
            setup=_file_source_null_sinks, backend="simnet"),
        "simnet_pipeline_8nodes_k4": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8, stripes=4), 8,
            "DES striped: 4 interleaved chains, 8 receivers — aggregate "
            "throughput should approach 4x the single chain",
            setup=_file_source_null_sinks, backend="simnet"),
        # Head failover: SIGKILL-equivalent head death a quarter of the
        # way in, in-process election of the most-complete survivor,
        # chain re-rooted onto it.  Throughput includes the outage;
        # the recorded ``failover.recovery_s`` is the election-to-
        # first-chunk latency — the number the control plane owns.
        "head_kill_recovery": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8), 3,
            "head killed at 25%: elect most-complete survivor, re-root "
            "the chain, measure time to the first post-election chunk",
            setup=_file_source_null_sinks, head_crash=0.25),
        # The daemon pair: one warm fleet, many sessions.  Rates are
        # per-*session* (launch excluded — the whole point is that warm
        # submits never pay it), with the one-time launch and the
        # cache-hit accounting recorded alongside.
        "daemon_cold_vs_warm": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8), 3,
            "persistent fleet: cold first session vs warm submits of "
            "fresh artifacts — warm submits skip the windowed launch",
            backend="daemon", daemon_mode="cold_vs_warm"),
        "repeat_broadcast_cached": Scenario(
            KascadeConfig(chunk_size=1 << 20, buffer_chunks=8), 3,
            "persistent fleet: re-submit of an identical artifact is "
            "served from each receiver's chunk cache, zero upstream",
            backend="daemon", daemon_mode="repeat_cached"),
    }


#: Counters recorded per scenario — the syscall/copy shape of the run,
#: so a bench entry shows *how* the bytes moved, not just how fast.
_RECORDED_COUNTERS = (
    "syscalls_recv", "syscalls_send", "syscalls_sendfile",
    "splice_syscalls", "splice_bytes", "payload_copy_events",
    "payload_bytes_copied", "reactor_wakeups",
)


def run_daemon_scenario(name: str, spec: Scenario, *, size: int,
                        rounds: int) -> dict:
    """One warm fleet, ``rounds`` timed warm sessions after a cold one.

    The reported rate is the best *warm-session* rate — the windowed
    launch was paid once, before any of the timed sessions, so warm
    submits carry no launch report (recorded explicitly as ``None``).
    ``repeat_cached`` re-submits the identical artifact, so the bytes
    arrive from each receiver's chunk cache instead of the wire.
    """
    import dataclasses

    from repro.daemon import DaemonServer

    receivers = [f"n{i}" for i in range(2, 2 + spec.receivers)]
    config = dataclasses.replace(spec.config,
                                 cache_bytes=max(2 * size, 64 * 2**20))
    tmpdir = tempfile.mkdtemp(prefix="kascade-bench-daemon-")
    try:
        def artifact(tag: str, seed: int) -> FileSource:
            path = Path(tmpdir) / f"{tag}.bin"
            if not path.exists():
                path.write_bytes(
                    PatternSource(size, seed=seed).expected_bytes(0, size))
            return FileSource(path)

        with DaemonServer(["n1", *receivers], config=config,
                          startup_timeout=60.0) as server:
            launch_s = server.launch_report.total_s
            cold = server.submit(artifact("cold", 1), receivers, timeout=300)
            if not cold.ok:
                raise SystemExit(f"scenario {name!r} cold session failed")
            best = None
            best_result = cold
            for i in range(rounds):
                if spec.daemon_mode == "repeat_cached":
                    source = artifact("cold", 1)       # identical artifact
                else:
                    source = artifact(f"warm{i}", i + 2)  # fresh content
                warm = server.submit(source, receivers, timeout=300)
                if not warm.ok:
                    raise SystemExit(
                        f"scenario {name!r} warm session failed")
                if warm.launch is not None:
                    raise SystemExit(
                        f"scenario {name!r}: warm submit paid a launch")
                if best is None or warm.duration < best:
                    best, best_result = warm.duration, warm
            upstream = sum(best_result.outcomes[n].bytes_received
                           for n in receivers)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    delivered = size * len(receivers)
    from_cache = best_result.perfstats.get("bytes_from_cache", 0)
    rate = size / best / 2**20
    print(f"  {name:24s} {rate:8.1f} MiB/s  ({best:.3f} s warm vs "
          f"{cold.duration:.3f} s cold, launch {launch_s:.3f} s once, "
          f"{from_cache / 2**20:.0f} MiB from cache)")
    return {
        "mib_per_s": round(rate, 1),
        "duration_s": round(best, 4),
        "bytes": size,
        "receivers": spec.receivers,
        "chunk_size": config.chunk_size,
        "data_plane": config.data_plane,
        "stripes": config.stripes,
        "backend": "daemon",
        "daemon": {
            "mode": spec.daemon_mode,
            "fleet_launch_s": round(launch_s, 4),
            # Warm submits never pay a launch: BroadcastResult.launch is
            # None for every daemon session, recorded here as evidence.
            "warm_launch_report": None,
            "cold_duration_s": round(cold.duration, 4),
            "launch_amortized_s": round(
                best_result.perfstats.get("launch_amortized_s", 0.0), 4),
            "bytes_from_cache": from_cache,
            "cache_fraction": (round(from_cache / delivered, 3)
                               if delivered else 0.0),
            "upstream_bytes": upstream,
        },
        "perfstats": {k: best_result.perfstats.get(k, 0)
                      for k in _RECORDED_COUNTERS},
    }


def _failover_latency(trace) -> Optional[dict]:
    """Election-to-first-chunk recovery metrics from a run's trace."""
    from repro.core.tracing import CHUNK, ELECTION

    elections = trace.of_type(ELECTION)
    if not elections:
        return None
    elect = elections[0]
    resumed = [e.t for e in trace.of_type(CHUNK) if e.t > elect.t]
    return {
        "promoted": elect.peer,
        "watermark": elect.offset,
        "recovery_s": round(min(resumed) - elect.t, 4) if resumed else None,
    }


def run_scenario(name: str, spec: Scenario, *, size: int, rounds: int) -> dict:
    """Run one broadcast ``rounds`` times; report the best rate."""
    if spec.backend == "daemon":
        return run_daemon_scenario(name, spec, size=size, rounds=rounds)
    best = None
    best_stats: dict = {}
    best_failover: Optional[dict] = None
    receivers = [f"n{i}" for i in range(2, 2 + spec.receivers)]
    for _ in range(rounds):
        if spec.setup is not None:
            ctx = spec.setup(size)
        else:
            ctx = contextlib.nullcontext((PatternSource(size, seed=1), None))
        with ctx as (source, sink_factory):
            if spec.backend == "simnet":
                from repro.protosim.broadcast import ProtoBroadcast

                proto = ProtoBroadcast(source, receivers,
                                       sink_factory=sink_factory,
                                       config=spec.config).run()
                ok, duration = proto.ok, proto.sim_time
                summary = proto.report.summary()
                stats: dict = {}
                failover = None
            else:
                extra = {}
                if spec.head_crash is not None:
                    from repro.core.tracing import TraceCollector
                    from repro.runtime import CrashPlan

                    extra = dict(
                        crashes=[CrashPlan("n1",
                                           int(size * spec.head_crash))],
                        allow_head_chaos=True,
                        tracer=TraceCollector(),
                    )
                result = LocalBroadcast(
                    source, receivers,
                    sink_factory=sink_factory,
                    config=spec.config,
                    **extra,
                ).run(timeout=120)
                ok, duration = result.ok, result.duration
                summary = result.report.summary()
                stats = result.perfstats
                failover = (_failover_latency(result.trace)
                            if spec.head_crash is not None else None)
        if not ok:
            raise SystemExit(f"scenario {name!r} failed: {summary}")
        if best is None or duration < best:
            best = duration
            best_stats = stats
            best_failover = failover
    rate = size / best / 2**20
    unit = "MiB/sim-s" if spec.backend == "simnet" else "MiB/s"
    tail = ""
    if best_failover is not None:
        tail = (f", promoted {best_failover['promoted']}, recovery "
                f"{best_failover['recovery_s']} s")
    print(f"  {name:24s} {rate:8.1f} {unit}  ({best:.3f} s, "
          f"{spec.receivers} receivers, chunk {spec.config.chunk_size} B, "
          f"stripes {spec.config.stripes}{tail})")
    entry = {
        "mib_per_s": round(rate, 1),
        "duration_s": round(best, 4),
        "bytes": size,
        "receivers": spec.receivers,
        "chunk_size": spec.config.chunk_size,
        "data_plane": spec.config.data_plane,
        "stripes": spec.config.stripes,
        "backend": spec.backend,
        "perfstats": {k: best_stats.get(k, 0) for k in _RECORDED_COUNTERS},
    }
    if best_failover is not None:
        entry["failover"] = best_failover
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_loopback.json")
    parser.add_argument("--label", default="current")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--size", type=int, default=32,
                        help="stream size in MiB (default 32)")
    parser.add_argument("--merge", default=None,
                        help="existing JSON to merge this run into "
                             "(defaults to --out when it exists)")
    parser.add_argument("--compare", default=None, metavar="LABEL",
                        help="gate mode: fail if a scenario regresses vs "
                             "the run stored under LABEL in --out")
    parser.add_argument("--max-regression", type=float, default=5.0,
                        metavar="PCT",
                        help="allowed slowdown for --compare (default 5%%)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="run (and gate) only these scenarios "
                             "(repeatable; default: all)")
    parser.add_argument("--data-plane", default="threaded",
                        choices=("threaded", "evloop"),
                        help="run every scenario on this data plane "
                             "(default: threaded)")
    parser.add_argument("--coordinator-replicas", type=int, default=0,
                        metavar="N",
                        help="control-plane replica count to stamp into "
                             "this label's metadata (0 = the in-process "
                             "election the local failover scenario uses)")
    args = parser.parse_args(argv)

    catalogue = build_catalogue()
    if args.data_plane != "threaded":
        import dataclasses
        for spec in catalogue.values():
            if spec.backend == "local":  # the DES has no real I/O engine
                spec.config = dataclasses.replace(spec.config,
                                                  data_plane=args.data_plane)
    wanted = args.scenario or list(catalogue)
    unknown = [s for s in wanted if s not in catalogue]
    if unknown:
        print(f"unknown scenario(s): {', '.join(sorted(unknown))}\n",
              file=sys.stderr)
        print("known scenarios:", file=sys.stderr)
        for name, spec in catalogue.items():
            print(f"  {name:24s} {spec.description}", file=sys.stderr)
        return 2

    size = args.size * 2**20
    print(f"loopback benchmarks: {args.size} MiB stream, "
          f"best of {args.rounds} rounds, label {args.label!r}, "
          f"data plane {args.data_plane}")
    scenarios = {
        name: run_scenario(name, catalogue[name], size=size,
                           rounds=args.rounds)
        for name in wanted
    }

    merge_path = args.merge or (args.out if Path(args.out).exists() else None)
    doc = {}
    if merge_path and Path(merge_path).exists():
        doc = json.loads(Path(merge_path).read_text())
    doc.setdefault("meta", {})
    doc["meta"].update({
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Chain-length scaling (3 vs 6 nodes) is only meaningful
        # relative to the core count: on a single-core host every
        # hop's kernel copies serialise onto one CPU.
        "host_cpus": os.cpu_count(),
        "stream_mib": args.size,
        "rounds": args.rounds,
    })
    doc.setdefault("runs", {})[args.label] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # Per-label environment: failover recovery latency only means
        # anything relative to the core count the survivors shared and
        # the control-plane quorum size the election ran against.
        "host_cpus": os.cpu_count(),
        "coordinator_replicas": args.coordinator_replicas,
        "scenarios": scenarios,
    }
    Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.compare is not None:
        return gate(doc, baseline_label=args.compare, current=scenarios,
                    max_regression=args.max_regression)
    return 0


def gate(doc: dict, *, baseline_label: str, current: dict,
         max_regression: float) -> int:
    """Compare ``current`` scenario rates against a stored run; non-zero
    exit when any shared scenario slowed by more than ``max_regression``%."""
    baseline = doc.get("runs", {}).get(baseline_label)
    if baseline is None:
        print(f"gate: no run labelled {baseline_label!r} in the results file",
              file=sys.stderr)
        return 2
    failed = False
    for name, now in sorted(current.items()):
        then = baseline["scenarios"].get(name)
        if then is None:
            print(f"  gate {name:24s} (not in baseline, skipped)")
            continue
        delta = (now["mib_per_s"] - then["mib_per_s"]) / then["mib_per_s"] * 100
        verdict = "ok" if delta >= -max_regression else "REGRESSION"
        failed = failed or delta < -max_regression
        print(f"  gate {name:24s} {then['mib_per_s']:8.1f} -> "
              f"{now['mib_per_s']:8.1f} MiB/s  ({delta:+.1f}%)  {verdict}")
    if failed:
        print(f"gate: regression beyond {max_regression:.1f}% vs "
              f"{baseline_label!r}", file=sys.stderr)
        return 1
    print(f"gate: within {max_regression:.1f}% of {baseline_label!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
