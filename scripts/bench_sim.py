#!/usr/bin/env python
"""Benchmark the simulation kernel and record a perf trajectory.

Measures the two simulators' hot paths — the protocol-exact DES
(engine + channels, the ``simnet`` session backend) and the fluid
fabric (max–min solver) — reporting, per scenario:

* ``events_per_s``    — engine dispatches per wall-clock second (the
  kernel's raw speed; the headline metric for the protocol-exact path),
* ``gib_per_wall_s``  — simulated GiB delivered per wall second
  (receivers × stream size over wall time; the "how long does a big
  study take" metric, and the regression-gate score),
* ``sim_time`` and the engine/solver perfstats counters.

History accumulates in ``BENCH_sim.json`` keyed by ``--label`` so future
PRs can compare against the numbers this PR measured.

Usage::

    PYTHONPATH=src python scripts/bench_sim.py [--out BENCH_sim.json]
        [--label current] [--rounds 3] [--scenario NAME ...]
        [--compare LABEL [--max-regression PCT]] [--profile [PATH]]

``--compare LABEL`` turns the run into a regression gate (exit non-zero
when ``gib_per_wall_s`` drops more than ``--max-regression`` percent vs
the stored LABEL).  ``--profile`` wraps every scenario in cProfile and
prints the top functions by cumulative time; with a PATH argument the
raw stats are dumped there for ``pstats``/``snakeviz``.

The ``*_10k`` scenarios are scale smokes (10k simulated nodes) and are
excluded from the default set — name them explicitly via ``--scenario``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core import KascadeConfig, PatternSource
from repro.core.perfstats import get_stats, reset_stats

#: Counters recorded per scenario — the dispatch/solve shape of the run,
#: so a bench entry shows *what the kernel did*, not just how fast.
_RECORDED_COUNTERS = (
    "sim_events_processed", "sim_heap_peak", "sim_cancelled_skips",
    "solver_rounds", "solver_full_rebuilds",
)


@dataclass
class Scenario:
    """One kernel benchmark entry."""

    kind: str                 # "proto" (protocol-exact DES) | "fluid"
    receivers: int
    size: int                 # stream bytes (simulated payload)
    description: str
    config: KascadeConfig = field(default_factory=KascadeConfig)
    topology: str = "switch"  # fluid only: "switch" | "fat_tree"
    sim_horizon: float = 3600.0
    default: bool = True      # excluded from the default set when False


def build_catalogue() -> dict:
    # Small chunks on purpose: the kernel cost is per *message*, so a
    # dense chunk stream measures the engine/channel hot path rather
    # than the per-run setup (which a handful of big chunks would).
    proto_cfg = KascadeConfig(chunk_size=8 * 1024, buffer_chunks=8,
                              io_timeout=0.5, ping_timeout=0.25,
                              connect_timeout=1.0, report_timeout=10.0)
    smoke_cfg = proto_cfg.with_(chunk_size=64 * 1024)
    return {
        # The acceptance scenario for the kernel refactor: a paper-scale
        # protocol-exact chain (the paper's testbed runs ~200 nodes),
        # dispatching ~400k engine events.  Depth matters: the legacy
        # kernel's per-receive timer churn grows with the number of
        # concurrently blocked receivers, which is exactly the regime
        # this PR targets.
        "proto_chain": Scenario(
            "proto", 200, 8 << 20,
            "protocol-exact chain: 200 receivers, 8 MiB, 8 KiB chunks",
            config=proto_cfg),
        "proto_chain_short": Scenario(
            "proto", 8, 32 << 20,
            "protocol-exact chain: 8 receivers, 32 MiB, 8 KiB chunks",
            config=proto_cfg),
        "proto_striped_k4": Scenario(
            "proto", 8, 32 << 20,
            "protocol-exact striped: 4 interleaved chains, 8 receivers",
            config=proto_cfg.with_(stripes=4)),
        "proto_chain_10k": Scenario(
            "proto", 10_000, 1 << 20,
            "scale smoke: 10k-receiver protocol-exact chain, 1 MiB stream",
            config=smoke_cfg, default=False),
        "fluid_chain_200": Scenario(
            "fluid", 200, 2_000_000_000,
            "fluid solver, paper scale: 200 clients, one switch, 2 GB"),
        "fluid_fat_tree_512": Scenario(
            "fluid", 511, 2_000_000_000,
            "fluid solver: 512-host fat tree (30/switch), 2 GB",
            topology="fat_tree"),
        "fluid_fat_tree_2000": Scenario(
            "fluid", 2000, 2_000_000_000,
            "10x paper scale: 2000 clients on a fat tree, 2 GB",
            topology="fat_tree", default=False),
        # 10k *coupled fluid* streams pay O(n^2 log n) solver work (each
        # of ~n rate events re-solves n flows) — a half-hour run by
        # construction, so it never joins the default set or CI.
        "fluid_fat_tree_10k": Scenario(
            "fluid", 10_000, 2_000_000_000,
            "scale soak: 10k clients on a fat tree, 2 GB (slow: ~30 min)",
            topology="fat_tree", default=False),
    }


def _prepare_proto(spec: Scenario):
    """Build everything that is setup, not kernel: outside the clock."""
    return (PatternSource(spec.size, seed=1),)


def _run_proto_once(spec: Scenario, source) -> float:
    from repro.protosim.broadcast import ProtoBroadcast

    receivers = [f"n{i}" for i in range(2, 2 + spec.receivers)]
    result = ProtoBroadcast(
        source, receivers, config=spec.config,
    ).run(sim_horizon=spec.sim_horizon)
    if not result.ok:
        raise SystemExit(f"proto scenario failed: {result.node_errors}")
    return result.sim_time


def _prepare_fluid(spec: Scenario):
    from repro.baselines.base import SimSetup
    from repro.topology import build_fat_tree, build_single_switch

    n = spec.receivers
    if spec.topology == "fat_tree":
        net = build_fat_tree(n + 1)
    else:
        net = build_single_switch(n + 1)
    setup = SimSetup(
        network=net, head="node-1",
        receivers=tuple(f"node-{i}" for i in range(2, n + 2)),
        size=float(spec.size), include_startup=False, rng=None,
    )
    return (setup,)


def _run_fluid_once(spec: Scenario, setup) -> float:
    from repro.baselines import KascadeSim

    n = spec.receivers
    result = KascadeSim().run(setup)
    if len(result.completed) != n:
        raise SystemExit(
            f"fluid scenario incomplete: {len(result.completed)}/{n} done")
    return result.data_time


def run_scenario(name: str, spec: Scenario, *, rounds: int,
                 profile: Optional[str] = None) -> dict:
    """Run one scenario ``rounds`` times; report the best wall time.

    Sources and topologies are built *outside* the timed region — this
    benchmark measures the simulation kernel, not scenario setup.
    """
    if spec.kind == "proto":
        prepare, runner = _prepare_proto, _run_proto_once
    else:
        prepare, runner = _prepare_fluid, _run_fluid_once
    best = None
    best_stats: dict = {}
    sim_time = 0.0
    for round_no in range(rounds):
        args = prepare(spec)
        reset_stats()
        prof = None
        if profile is not None and round_no == 0:
            import cProfile
            prof = cProfile.Profile()
            prof.enable()
        t0 = time.perf_counter()
        sim_time = runner(spec, *args)
        wall = time.perf_counter() - t0
        if prof is not None:
            prof.disable()
            _report_profile(name, prof, profile)
        stats = get_stats().snapshot()
        if best is None or wall < best:
            best = wall
            best_stats = stats
    events = best_stats.get("sim_events_processed", 0)
    delivered_gib = spec.size * spec.receivers / 2**30
    events_per_s = events / best if best > 0 else 0.0
    gib_per_s = delivered_gib / best if best > 0 else 0.0
    print(f"  {name:22s} {events_per_s:12,.0f} ev/s  "
          f"{gib_per_s:8.2f} GiB/wall-s  "
          f"(wall {best:.3f} s, sim {sim_time:.3f} s, {events:,} events)")
    return {
        "kind": spec.kind,
        "receivers": spec.receivers,
        "bytes": spec.size,
        "wall_s": round(best, 4),
        "sim_time": round(sim_time, 6),
        "events": events,
        "events_per_s": round(events_per_s, 1),
        "gib_per_wall_s": round(gib_per_s, 4),
        "perfstats": {k: best_stats.get(k, 0) for k in _RECORDED_COUNTERS},
    }


def _report_profile(name: str, prof, path: str) -> None:
    import pstats

    print(f"  --- cProfile top 15 (cumulative) for {name} ---")
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(15)
    if path:
        out = Path(path)
        if len(build_catalogue()) > 1:
            out = out.with_name(f"{out.stem}-{name}{out.suffix or '.prof'}")
        prof.dump_stats(out)
        print(f"  profile dumped to {out}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument("--label", default="current")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--merge", default=None,
                        help="existing JSON to merge this run into "
                             "(defaults to --out when it exists)")
    parser.add_argument("--compare", default=None, metavar="LABEL",
                        help="gate mode: fail if a scenario regresses vs "
                             "the run stored under LABEL")
    parser.add_argument("--max-regression", type=float, default=10.0,
                        metavar="PCT",
                        help="allowed slowdown for --compare (default 10%%)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="run (and gate) only these scenarios "
                             "(repeatable; default: all non-smoke)")
    parser.add_argument("--profile", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="cProfile each scenario's first round; print "
                             "top-15 and optionally dump stats to PATH")
    args = parser.parse_args(argv)

    catalogue = build_catalogue()
    wanted = args.scenario or [n for n, s in catalogue.items() if s.default]
    unknown = [s for s in wanted if s not in catalogue]
    if unknown:
        print(f"unknown scenario(s): {', '.join(sorted(unknown))}\n",
              file=sys.stderr)
        print("known scenarios:", file=sys.stderr)
        for name, spec in catalogue.items():
            smoke = "" if spec.default else "  [smoke, opt-in]"
            print(f"  {name:22s} {spec.description}{smoke}", file=sys.stderr)
        return 2

    print(f"simulation-kernel benchmarks: best of {args.rounds} rounds, "
          f"label {args.label!r}")
    scenarios = {
        name: run_scenario(name, catalogue[name], rounds=args.rounds,
                           profile=args.profile)
        for name in wanted
    }

    merge_path = args.merge or (args.out if Path(args.out).exists() else None)
    doc = {}
    if merge_path and Path(merge_path).exists():
        doc = json.loads(Path(merge_path).read_text())
    doc.setdefault("meta", {})
    doc["meta"].update({
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpus": os.cpu_count(),
        "rounds": args.rounds,
    })
    doc.setdefault("runs", {})[args.label] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": scenarios,
    }
    Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.compare is not None:
        return gate(doc, baseline_label=args.compare, current=scenarios,
                    max_regression=args.max_regression)
    return 0


def gate(doc: dict, *, baseline_label: str, current: dict,
         max_regression: float) -> int:
    """Exit non-zero when any shared scenario's simulated-GiB-per-wall-
    second dropped by more than ``max_regression``% vs the stored run."""
    baseline = doc.get("runs", {}).get(baseline_label)
    if baseline is None:
        print(f"gate: no run labelled {baseline_label!r} in the results file",
              file=sys.stderr)
        return 2
    failed = False
    for name, now in sorted(current.items()):
        then = baseline["scenarios"].get(name)
        if then is None:
            print(f"  gate {name:22s} (not in baseline, skipped)")
            continue
        delta = ((now["gib_per_wall_s"] - then["gib_per_wall_s"])
                 / then["gib_per_wall_s"] * 100)
        verdict = "ok" if delta >= -max_regression else "REGRESSION"
        failed = failed or delta < -max_regression
        print(f"  gate {name:22s} {then['gib_per_wall_s']:8.2f} -> "
              f"{now['gib_per_wall_s']:8.2f} GiB/wall-s  "
              f"({delta:+.1f}%)  {verdict}")
    if failed:
        print(f"gate: regression beyond {max_regression:.1f}% vs "
              f"{baseline_label!r}", file=sys.stderr)
        return 1
    print(f"gate: within {max_regression:.1f}% of {baseline_label!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
