"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(the sandbox lacks the `wheel` package needed for PEP 660 editables).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
