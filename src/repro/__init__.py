"""Reproduction of "Scalable and Reliable Data Broadcast with Kascade"
(Martin et al., HPDIC workshop @ IEEE IPDPS 2014).

The package provides:

* :mod:`repro.core` — the Kascade protocol: chunked pipelined broadcast
  with the GET/PGET/FORGET/DATA/END/QUIT/REPORT/PASSED message set and the
  failure-recovery decision logic;
* :mod:`repro.runtime` — a real TCP implementation runnable on localhost;
* :mod:`repro.simnet` — a fluid-flow discrete-event network simulator that
  stands in for the Grid'5000 testbed of the paper's evaluation;
* :mod:`repro.topology` — fat-tree / multi-switch / multi-site topologies;
* :mod:`repro.baselines` — the compared methods (TakTuk chain/tree,
  UDPCast, MPI broadcast) modelled on the simulator;
* :mod:`repro.launch` — startup-time models (TakTuk, ClusterShell, SSH);
* :mod:`repro.deploy` — windowed multi-process deployment: one OS
  process per node, a supervising coordinator, and real-signal chaos;
* :mod:`repro.distem` — the failure-injection emulator of §IV-G;
* :mod:`repro.bench` — the experiment harness regenerating every figure
  of the evaluation section.
"""

from .core import (
    DEFAULT_CONFIG,
    ChunkRingBuffer,
    FailureRecord,
    KascadeConfig,
    KascadeError,
    PipelinePlan,
    TraceCollector,
    TraceEvent,
    TransferReport,
)
from .runtime.cluster import BroadcastResult, CrashPlan
from .session import BACKENDS, BroadcastSession, run_broadcast

__version__ = "0.1.0"

__all__ = [
    "BACKENDS",
    "DEFAULT_CONFIG",
    "KascadeConfig",
    "ChunkRingBuffer",
    "PipelinePlan",
    "TransferReport",
    "FailureRecord",
    "KascadeError",
    "TraceCollector",
    "TraceEvent",
    "BroadcastResult",
    "CrashPlan",
    "BroadcastSession",
    "run_broadcast",
    "__version__",
]
