"""Simulated broadcast methods: Kascade and the baselines the paper
compares against (TakTuk chain/tree, UDPCast, MPI broadcast)."""

from .base import BroadcastMethod, MethodResult, RunState, SimSetup
from .kascade_sim import KascadeSim, SlowNodeExcluded, SlowNodePolicy
from .related import BitTorrentSwarm, DollyChain
from .trees import (
    MpiEthernet,
    MpiInfiniband,
    TakTukChain,
    TakTukTree,
    TreeBroadcast,
)
from .udpcast import UdpcastSim, UdpcastUnidirectional

__all__ = [
    "BroadcastMethod",
    "MethodResult",
    "SimSetup",
    "RunState",
    "KascadeSim",
    "SlowNodePolicy",
    "SlowNodeExcluded",
    "BitTorrentSwarm",
    "DollyChain",
    "TreeBroadcast",
    "TakTukChain",
    "TakTukTree",
    "MpiEthernet",
    "MpiInfiniband",
    "UdpcastSim",
    "UdpcastUnidirectional",
]
