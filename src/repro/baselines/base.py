"""Common infrastructure for simulated broadcast methods.

Every method of the paper's evaluation — Kascade, TakTuk (chain/tree),
UDPCast, MPI broadcast — implements :class:`BroadcastMethod.execute` as a
set of controller processes over the fluid fabric.  This module holds the
shared setup/result plumbing so a method only describes its *data
movement structure* and its implementation constants.

Implementation constants (the "who wins" knobs, each tied to a mechanism
named in the paper):

* ``copy_bw`` — per-host byte-shuffling budget of the implementation.
  Relays pay it twice (receive + send), which is why Kascade saturates
  1 GbE but plateaus near 2 Gb/s on 10 GbE (§IV-B, "the bottleneck is the
  memory"); a C implementation (MPI) gets a larger budget than a Ruby or
  Perl one (Kascade, TakTuk).
* ``protocol_window`` — bytes in flight per hop before the protocol
  waits for an acknowledgment round trip.  Big for plain TCP streaming
  (Kascade), one segment for MPI's rendezvous pipeline, small for
  TakTuk's command channel.  Sets the latency sensitivity of §IV-E.
* ``hop_cap`` — flat per-hop throughput ceiling from per-byte protocol
  work (TakTuk's Perl serialization keeps it near a third of GbE,
  Fig. 7).
* ``disk_seq_efficiency`` — fraction of raw disk bandwidth achieved by
  the method's write pattern (§II-A1: sequential streaming writes beat
  bursty ones).
* ``launcher`` — the startup model (§III-B / Fig. 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import KascadeError
from ..core.units import mbps
from ..launch import InstantLauncher, Launcher
from ..simnet import Engine, Fabric
from ..topology.graph import DiskSpec, Network


@dataclass
class SimSetup:
    """One broadcast experiment instance.

    ``receivers`` is already in final pipeline/rank order — ordering
    policy (sorted / random) is the harness's job, mirroring how the
    paper feeds each tool a host list.
    """

    network: Network
    head: str
    receivers: Tuple[str, ...]
    size: float
    sink: str = "null"            # "null" (RAM/dev-null) or "disk"
    failures: Tuple[Tuple[float, str], ...] = ()   # (time, node)
    include_startup: bool = True
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise KascadeError("negative transfer size")
        if self.head in self.receivers:
            raise KascadeError("head cannot be a receiver")
        missing = [
            h for h in (self.head, *self.receivers)
            if h not in self.network.hosts
        ]
        if missing:
            raise KascadeError(f"hosts not in topology: {missing}")
        if self.sink not in ("null", "disk"):
            raise KascadeError(f"unknown sink {self.sink!r}")

    @property
    def chain(self) -> Tuple[str, ...]:
        return (self.head, *self.receivers)

    @property
    def n_clients(self) -> int:
        return len(self.receivers)


@dataclass
class MethodResult:
    """Outcome of one simulated broadcast."""

    method: str
    n_clients: int
    size: float
    startup_time: float
    data_time: float
    completed: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)    # crashed nodes
    aborted: List[str] = field(default_factory=list)   # gave up (FORGET)
    excluded: List[str] = field(default_factory=list)  # too slow (§V)
    finish_times: Dict[str, float] = field(default_factory=dict)
    #: Attached when run(trace=True): a FabricTracer with the full rate
    #: history and bottleneck attribution of the simulated transfer.
    trace: Optional[object] = None
    #: Attached when run(trace=True): the structured TraceCollector the
    #: method's controller processes emitted into (FAILOVER/PGET/FORGET/
    #: QUIT/DONE events on simulated time).
    events: Optional[object] = None

    @property
    def total_time(self) -> float:
        return self.startup_time + self.data_time

    @property
    def throughput(self) -> float:
        """The paper's metric: file size / time to finish transmission."""
        if self.total_time <= 0:
            return math.inf
        return self.size / self.total_time

    @property
    def throughput_mbs(self) -> float:
        return mbps(self.throughput)

    def __repr__(self) -> str:
        return (
            f"<{self.method}: n={self.n_clients} "
            f"{self.throughput_mbs:.1f} MB/s "
            f"(startup {self.startup_time:.2f}s, data {self.data_time:.2f}s)>"
        )


class BroadcastMethod:
    """Base class for simulated broadcast implementations."""

    #: Display name, matching the paper's figure legends.
    name: str = "abstract"
    #: Per-host implementation copy budget (bytes/s); ``inf`` = never CPU
    #: bound (not true of any real tool — subclasses must set it).
    copy_bw: float = math.inf
    #: Per-hop in-flight window (bytes) before an ack round trip is paid.
    protocol_window: float = math.inf
    #: Flat per-hop throughput ceiling (protocol per-byte work).
    hop_cap: float = math.inf
    #: Fraction of raw disk write bandwidth this method's pattern achieves.
    disk_seq_efficiency: float = 0.7
    #: Run-to-run variability of the implementation's copy budget
    #: (relative sigma of a lognormal factor).  Models OS jitter, page
    #: cache state, and protocol adaptivity — the source of the paper's
    #: confidence intervals; large for MPI, whose 10 GbE results "peaked
    #: at approximately 5 Gbit/s but usually stay around 3" (§IV-B).
    jitter: float = 0.03
    #: Run-to-run variability of per-hop goodput (TCP retransmits, cross
    #: traffic, interrupt coalescing...).  Applied as one lognormal factor
    #: per run on every hop limit, so even link-bound platforms show the
    #: paper's repetition variance.
    goodput_jitter: float = 0.012
    #: Startup model.
    launcher: Launcher = InstantLauncher()
    #: Whether the method works over routed (multi-site) networks.
    supports_routed: bool = True
    #: Whether the method survives node failures.
    fault_tolerant: bool = False

    # ------------------------------------------------------------------

    def hop_limit(self, rtt: float, line_rate: float) -> float:
        """Per-hop rate ceiling from protocol windowing + per-byte work.

        A hop that keeps ``protocol_window`` bytes in flight and then
        waits one RTT achieves ``window / (window/line + rtt)`` — the
        standard stop-and-wait throughput bound.  The flat ``hop_cap``
        is applied on top.
        """
        cap = self.hop_cap
        if math.isfinite(self.protocol_window) and line_rate > 0:
            w = self.protocol_window
            cap = min(cap, w / (w / line_rate + rtt))
        if math.isfinite(line_rate):
            cap = min(cap, line_rate)
        return cap * getattr(self, "run_goodput", 1.0)

    def run(self, setup: SimSetup, *, trace: bool = False) -> MethodResult:
        """Simulate one broadcast; returns the measured result.

        ``trace=True`` attaches a
        :class:`~repro.simnet.trace.FabricTracer` to the result for rate
        timelines and bottleneck attribution.
        """
        if setup.failures and not self.fault_tolerant:
            raise KascadeError(
                f"{self.name} has no fault tolerance; cannot inject failures"
            )
        self._apply_host_model(setup)
        self.run_goodput = 1.0
        if setup.rng is not None and self.goodput_jitter > 0:
            # Draw once per run: goodput moves together across hops.
            self.run_goodput = float(
                np.exp(setup.rng.normal(0.0, self.goodput_jitter))
            )
        engine = Engine()
        fabric = Fabric(engine, setup.network)
        tracer = None
        if trace:
            from ..core.tracing import TraceCollector
            from ..simnet.trace import FabricTracer
            engine.tracer = TraceCollector(clock=lambda: engine.now, zero=0.0)
            tracer = FabricTracer(fabric, events=engine.tracer)
        state = self.execute(engine, fabric, setup)
        engine.run()
        result = self._collect(setup, state)
        result.trace = tracer
        result.events = engine.tracer if trace else None
        return result

    # -- hooks ----------------------------------------------------------

    def execute(self, engine: Engine, fabric: Fabric, setup: SimSetup):
        """Spawn the method's controller processes; return opaque state
        handed back to :meth:`collect` after the simulation drains."""
        raise NotImplementedError

    def _collect(self, setup: SimSetup, state) -> MethodResult:
        """Assemble the result; ``state`` must provide ``finish_times``
        (dict node -> sim time), ``failed`` and ``aborted`` sets."""
        finish = dict(state.finish_times)
        failed = sorted(state.failed)
        aborted = sorted(state.aborted)
        excluded = sorted(getattr(state, "excluded", ()))
        out = set(state.failed) | set(state.aborted) | set(excluded)
        completed = [
            r for r in setup.receivers if r in finish and r not in out
        ]
        # When nobody completed, the transfer still *took* time — methods
        # may record it via ``data_end`` (e.g. a unidirectional sender
        # that never learns its receivers failed).
        data_time = (max(finish.values()) if finish
                     else getattr(state, "data_end", 0.0))
        rtt = (
            setup.network.rtt(setup.head, setup.receivers[0])
            if setup.receivers else 1e-4
        )
        startup = (
            self.launcher.startup_time(setup.n_clients, rtt)
            if setup.include_startup else 0.0
        )
        return MethodResult(
            method=self.name,
            n_clients=setup.n_clients,
            size=setup.size,
            startup_time=startup,
            data_time=data_time,
            completed=completed,
            failed=failed,
            aborted=aborted,
            excluded=excluded,
            finish_times=finish,
        )

    # -- helpers ----------------------------------------------------------

    def _apply_host_model(self, setup: SimSetup) -> None:
        """Stamp this implementation's performance model onto the hosts.

        The topology owns *hardware* parameters (NIC rate, raw disk
        bandwidth); the method owns *implementation* parameters (copy
        budget, write-pattern efficiency).  The harness builds a fresh
        topology per run, so mutating hosts here is safe.
        """
        rng = setup.rng
        # One draw per run: an implementation's throughput moves as a
        # whole (page-cache state, adaptivity), not independently per
        # host — per-host draws would make the chain's *minimum* the
        # typical value at scale, which is not what testbeds show.
        factor = 1.0
        disk_factor = 1.0
        if rng is not None:
            if self.jitter > 0:
                factor = float(np.exp(rng.normal(0.0, self.jitter)))
            # Disk throughput varies mildly run to run (cache state,
            # remapped sectors); keeps Fig. 11's intervals non-degenerate.
            disk_factor = float(np.exp(rng.normal(0.0, 0.02)))
        for host in setup.network.hosts.values():
            # The jitter multiplies the *effective* budget: an emulated
            # platform's folding ceiling (copy_limit) wobbles with the
            # same run-to-run effects as the implementation itself.
            host.copy_bw = min(self.copy_bw, host.copy_limit) * factor
            if host.disk is not None:
                host.disk = DiskSpec(
                    write_bw=host.disk.write_bw,
                    seq_efficiency=self.disk_seq_efficiency * disk_factor,
                )

    def line_rate(self, setup: SimSetup, a: str, b: str) -> float:
        """Narrowest link capacity on the route ``a`` → ``b``."""
        route = setup.network.route(a, b)
        return min((l.capacity for l in route), default=math.inf)


class RunState:
    """Mutable bookkeeping shared by a method's controller processes."""

    def __init__(self) -> None:
        self.finish_times: Dict[str, float] = {}
        self.failed: set[str] = set()
        self.aborted: set[str] = set()
        self.excluded: set[str] = set()

    def mark_finished(self, node: str, when: float) -> None:
        # The last stream to complete a node's reception wins.
        self.finish_times[node] = max(self.finish_times.get(node, 0.0), when)
