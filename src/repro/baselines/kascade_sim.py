"""Kascade on the fluid simulator: topology-aware pipeline with the
paper's fault-tolerance semantics (§III, §IV-G).

Each *sending* node (head and every relay) runs one controller process:

1. wait until the node holds one chunk (pipeline fill, §III-A);
2. connect to the next alive node in the original order and read its
   ``GET(offset)`` — here: its :class:`NodeRx` position;
3. if the offset predates the sender's ring-buffer window, either have
   the replacement fetch the hole from the head (``PGET``, file-backed
   source) or abort the orphaned suffix (``FORGET``, stream source);
4. stream the remainder as a chain-coupled fluid flow;
5. on downstream death (detected after ``io_timeout`` + a ping RTT,
   §III-D1), mark it failed and loop back to 2.

Failure injection kills the host in the fabric (its streams fail), kills
its controller, and — when its upstream had already finished serving it —
re-arms the nearest alive predecessor, mirroring how the real runtime
detects a death during the report exchange.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from dataclasses import dataclass

from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.pipeline import PipelinePlan
from ..core.recovery import SourceKind, next_alive
from ..core.units import MiB
from ..core import tracing
from ..launch import TakTukWindowed
from ..simnet import (
    Engine,
    Fabric,
    HeadRx,
    HostDied,
    NodeRx,
    StreamCancelled,
    Timeout,
)
from ..simnet.engine import Process
from .base import BroadcastMethod, RunState, SimSetup

_BYTES_EPS = 0.5


class SlowNodeExcluded(KascadeError):
    """A downstream node was excluded for sustained low throughput."""

    def __init__(self, node: str, rate: float) -> None:
        super().__init__(f"{node} excluded: {rate / 1e6:.1f} MB/s sustained")
        self.node = node
        self.rate = rate


@dataclass(frozen=True)
class SlowNodePolicy:
    """The paper's future-work feature (§V): measure each neighbour's
    throughput during the transfer and exclude it when it stays below
    ``threshold`` bytes/s for longer than ``grace`` seconds.

    Without this, "the network or disk performance of one specific node
    [slows] down the whole process" — every node after the laggard
    receives at the laggard's rate.
    """

    threshold: float           # bytes/s considered malfunctioning
    grace: float = 3.0         # sustained slowness before exclusion
    check_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.threshold <= 0 or self.grace <= 0 or self.check_interval <= 0:
            raise KascadeError("slow-node policy values must be positive")


class _KascadeRun(RunState):
    """State of one simulated Kascade broadcast."""

    def __init__(
        self,
        method: "KascadeSim",
        engine: Engine,
        fabric: Fabric,
        setup: SimSetup,
    ) -> None:
        super().__init__()
        self.method = method
        self.engine = engine
        self.fabric = fabric
        self.setup = setup
        self.net = setup.network
        self.size = setup.size
        self.plan = PipelinePlan(head=setup.head, receivers=setup.receivers)
        self.dead: set[str] = set()
        self.rx: Dict[str, NodeRx] = {}
        self.procs: Dict[str, Process] = {}
        #: Recovery processes acting for a node; killed with it.
        self.aux_procs: Dict[str, list] = {}
        self.rx[setup.head] = HeadRx(engine, setup.head, setup.size)
        for r in setup.receivers:
            self.rx[r] = NodeRx(engine, r)
        # Consumption trackers for bounded-buffer backpressure: a node's
        # "tx" supply follows its outbound stream; the tail's is infinite
        # (it consumes into its sink).
        from ..simnet import StreamSupply
        self.tx: Dict[str, StreamSupply] = {
            r: StreamSupply() for r in setup.receivers
        }

    # ------------------------------------------------------------------

    def start(self) -> None:
        for node in self.plan.chain:
            self.procs[node] = self.engine.spawn(
                self.sender(node), name=f"kascade:{node}"
            )
        for when, node in self.setup.failures:
            self.engine.call_at(when, lambda n=node: self.kill(n))

    def kill(self, node: str) -> None:
        """Failure injection: ``node`` dies right now."""
        upstream_active = (
            self.rx[node].stream is not None and self.rx[node].stream.active
        )
        self.failed.add(node)
        self.finish_times.pop(node, None)
        proc = self.procs.get(node)
        if proc is not None:
            proc.kill()
        self.fabric.kill_host(node)
        self.rx[node].attach(None)
        for aux in self.aux_procs.pop(node, []):
            aux.kill()
        if not upstream_active:
            # Its server already finished serving it: nobody is watching
            # this death, so re-arm the nearest alive predecessor (the
            # real runtime notices during the PASSED wait).
            pred = self._nearest_alive_predecessor(node)
            if pred is not None:
                proc = self.engine.spawn(
                    self._reconnect_after_detection(pred, node),
                    name=f"kascade:recover:{pred}",
                )
                # Recovery processes act on the predecessor's behalf and
                # must die with it (a zombie server would misattribute
                # its own death to whatever target it serves next).
                self.aux_procs.setdefault(pred, []).append(proc)

    def _nearest_alive_predecessor(self, node: str) -> Optional[str]:
        idx = self.plan.index_of(node)
        for candidate in reversed(self.plan.chain[:idx]):
            if candidate not in self.failed and candidate not in self.aborted:
                return candidate
        return None

    def _reconnect_after_detection(self, pred: str, dead_node: str):
        yield Timeout(self.method.config.io_timeout
                      + self.net.rtt(pred, dead_node))
        self.dead.add(dead_node)
        yield from self._serve_loop(pred)

    # ------------------------------------------------------------------

    def sender(self, me: str):
        """Controller process for the sending side of node ``me``."""
        yield from self._serve_loop(me)

    def _serve_loop(self, me: str):
        myrx = self.rx[me]
        cfg = self.method.config
        while True:
            if myrx.aborted or me in self.failed:
                return
            target = next_alive(self.plan, me, self.dead | self.aborted)
            if target is None:
                # Effective tail: consumption is sink-bound, so anyone
                # backpressure-coupled to this node must see no bound.
                if me in self.tx:
                    self.tx[me].mark_unbounded()
                return
            rtt = self.net.rtt(me, target)
            # TCP connect + GET handshake.  Connections are established as
            # soon as the tool starts everywhere (§III-B), so this happens
            # in parallel across hops — only the *chunk* wait below is part
            # of the serial pipeline-fill path.
            yield Timeout(self.method.connect_cost + rtt)
            if self.fabric.is_dead(target):
                self._mark_dead(target, by=me)
                continue
            # Store-and-forward granularity: a relay forwards nothing until
            # it holds one full chunk (§III-C), which is what makes the
            # pipeline fill cost one chunk-time per hop.
            yield from myrx.wait_for(min(self.method.sim_chunk, self.size))
            if myrx.aborted or me in self.failed:
                return
            if self.fabric.is_dead(target):
                self._mark_dead(target, by=me)
                continue
            start = self.rx[target].position()
            window_min = self._window_min(me)
            if start < window_min - 0.5:
                self.engine.trace(tracing.PGET, target, peer=self.plan.head,
                                  offset=int(start),
                                  detail=f"until={int(window_min)}")
                outcome = yield from self._fill_hole(me, target, start, window_min)
                if myrx.aborted or me in self.failed:
                    return  # we died or aborted while the hole filled
                if outcome == "target-died":
                    self._mark_dead(target, by=me,
                                    reason="died during hole fill")
                    continue
                if outcome == "forget":
                    self.engine.trace(tracing.FORGET, me, peer=target,
                                      offset=int(window_min), detail="sent")
                    self._abort_suffix(me)
                    return  # this node is the effective tail now
                start = window_min
            supply = None if isinstance(myrx, HeadRx) else myrx.supply
            line = self.method.line_rate(self.setup, me, target)
            bp_supply = None
            if (
                self.method.model_backpressure
                and next_alive(self.plan, target, self.dead | self.aborted)
                is not None
            ):
                bp_supply = self.tx[target]
            try:
                stream = self.fabric.open_stream(
                    me, target, self.size - start,
                    offset0=start,
                    supply=supply,
                    depth=self.plan.index_of(me),
                    limit=self.method.hop_limit(rtt, line),
                    disk_weight=1.0 if self.setup.sink == "disk" else 0.0,
                    bp_supply=bp_supply,
                    bp_capacity=self.method.bp_capacity,
                )
            except HostDied as exc:
                if exc.host == me:
                    return  # we are the dead one, not the target
                self._mark_dead(target, by=me)
                continue
            self.rx[target].attach(stream)
            if me in self.tx:
                self.tx[me].attach(stream)
            if self.method.slow_policy is not None:
                self.engine.spawn(
                    self._slow_monitor(stream, target),
                    name=f"kascade:slowmon:{target}",
                )
            try:
                yield stream.completed
                self.mark_finished(target, self.engine.now)
                self.engine.trace(tracing.DONE, target,
                                  offset=int(self.size), detail="ok")
                return
            except HostDied as exc:
                if exc.host == me:
                    return  # we died mid-send (the injector killed us)
                # Detection: stalled write, then an unanswered ping.
                self.rx[target].attach(None)
                yield Timeout(cfg.io_timeout + rtt)
                self._mark_dead(target, by=me,
                                reason="write-stalled, ping unanswered")
            except SlowNodeExcluded as exc:
                # §V future work: the laggard is dropped from the chain,
                # its successors get re-served at full speed.
                self.engine.trace(tracing.QUIT, target, peer=me,
                                  detail=f"excluded: {exc}")
                self.rx[target].attach(None)
                self.excluded.add(target)
                self.dead.add(target)
                self.finish_times.pop(target, None)
                self._teardown_excluded(target)
            except StreamCancelled:
                return

    def _teardown_excluded(self, target: str) -> None:
        """Stop the excluded node's own serving side.

        Its inbound stream was just failed; its *outbound* stream would
        otherwise idle forever (supply frozen), keeping its monitor — and
        the simulation — alive.  The successor it was serving gets
        re-served by us after the exclusion.
        """
        proc = self.procs.get(target)
        if proc is not None:
            proc.kill()
        for aux in self.aux_procs.pop(target, []):
            aux.kill()
        for rx in self.rx.values():
            st = rx.stream
            if st is not None and st.active and st.src == target:
                st.cancel()
                rx.attach(None)

    def _slow_monitor(self, stream, target: str):
        """Measure a neighbour's reception rate; exclude it if it stays
        below the policy threshold for the grace period (§V).

        Crucially, a sender only blames its receiver when it *has data
        waiting* (non-empty backlog): a starved sender is downstream of
        the real culprit and must not cascade exclusions through the
        whole suffix of the chain.
        """
        policy = self.method.slow_policy
        slow_since = None
        last_pos = stream.head
        while stream.active:
            yield Timeout(policy.check_interval)
            if not stream.active:
                return
            pos = stream.head
            rate = (pos - last_pos) / policy.check_interval
            last_pos = pos
            if stream.supply is not None:
                backlog = stream.supply.available() - pos
            else:
                backlog = math.inf  # the head always has data ready
            receiver_limited = (
                rate < policy.threshold
                and backlog > policy.threshold * policy.check_interval
                and pos + _BYTES_EPS < self.size
            )
            if receiver_limited:
                if slow_since is None:
                    slow_since = self.engine.now
                elif self.engine.now - slow_since >= policy.grace:
                    stream.fail(SlowNodeExcluded(target, rate))
                    return
            else:
                slow_since = None

    def _window_min(self, me: str) -> float:
        """Oldest stream byte node ``me`` can still re-send (FORGET floor).

        Relays keep the last ``buffer_bytes`` of what they *received*.
        The head's window depends on its source: a seekable file can be
        re-read from any offset; a stream-fed head only holds its ring
        buffer behind its read position, approximated by the farthest
        receiver (the head reads only as fast as it sends).
        """
        if me != self.plan.head:
            return max(0.0, self.rx[me].position() - self.method.buffer_bytes)
        if self.method.source_kind is SourceKind.SEEKABLE_FILE:
            return 0.0
        head_read = max(
            (self.rx[r].position() for r in self.plan.receivers
             if r not in self.failed and r not in self.aborted),
            default=0.0,
        )
        return max(0.0, head_read - self.method.buffer_bytes)

    def _fill_hole(self, me: str, target: str, start: float, until: float):
        """Replacement receiver fetches [start, until) from the head.

        Returns ``"ok"``, ``"target-died"``, or ``"forget"`` (stream
        source: bytes unrecoverable, suffix must abort)."""
        if self.method.source_kind is not SourceKind.SEEKABLE_FILE:
            return "forget"
        head = self.plan.head
        try:
            hole = self.fabric.open_stream(
                head, target, until - start,
                offset0=start,
                depth=self.plan.index_of(head),
                disk_weight=1.0 if self.setup.sink == "disk" else 0.0,
            )
        except HostDied:
            return "target-died"
        try:
            yield hole.completed
        except HostDied as exc:
            if exc.host == target:
                return "target-died"
            return "forget"  # head died: nothing more to fetch from
        except StreamCancelled:
            return "target-died"
        # Account the hole bytes in the receiver's position.
        self.rx[target].supply.attach(hole)
        self.rx[target].supply.attach(None)
        return "ok"

    def _mark_dead(self, node: str, *, by: Optional[str] = None,
                   reason: str = "connect-failed: host dead") -> None:
        if node not in self.dead:
            self.engine.trace(tracing.FAILOVER, by or self.plan.head,
                              peer=node, detail=reason,
                              detector=tracing.classify_detector(reason))
        self.dead.add(node)
        self.failed.add(node)
        self.finish_times.pop(node, None)

    def _abort_suffix(self, me: str) -> None:
        """FORGET with a stream source: every node after ``me`` quits."""
        for node in self.plan.successors_after(me):
            if node in self.dead or node in self.failed:
                continue
            self.aborted.add(node)
            self.finish_times.pop(node, None)
            proc = self.procs.get(node)
            if proc is not None:
                proc.kill()
            for aux in self.aux_procs.pop(node, []):
                aux.kill()
            rx = self.rx[node]
            if rx.stream is not None and rx.stream.active:
                rx.stream.cancel()
            rx.abort()


class KascadeSim(BroadcastMethod):
    """The paper's tool on the simulator.

    Constants: Kascade is a Ruby process copying through userspace —
    its per-host copy budget is what pins it slightly above 2 Gbit/s on
    10 GbE while still saturating 1 GbE (§IV-B).  TCP with standard
    buffers gives it a large per-hop window, so WAN hops stay efficient
    (§IV-E).  Startup rides on TakTuk windowed mode (§III-B).
    """

    name = "Kascade"
    copy_bw = 560e6           # Ruby userspace relay: rx + tx share this
    protocol_window = 4 * MiB  # TCP autotuned buffers, paper-era kernels
    disk_seq_efficiency = 0.58  # sequential streaming writes (§II-A1)
    jitter = 0.04
    launcher = TakTukWindowed()
    fault_tolerant = True

    def __init__(
        self,
        config: KascadeConfig = DEFAULT_CONFIG,
        *,
        source_kind: SourceKind = SourceKind.SEEKABLE_FILE,
        sim_chunk: float = 256 * 1024,
        connect_cost: float = 2e-3,
        slow_policy: "SlowNodePolicy | None" = None,
        model_backpressure: bool = False,
        bp_capacity: Optional[float] = None,
    ) -> None:
        self.config = config
        self.source_kind = source_kind
        #: Pipeline-fill granularity: what a relay buffers before its first
        #: forward.  Smaller than the protocol chunk because a relay
        #: forwards socket-read-sized pieces as they land, not whole DATA
        #: frames.
        self.sim_chunk = sim_chunk
        #: TCP connection establishment + tool accept cost, on top of RTT.
        self.connect_cost = connect_cost
        #: Optional slow-node detection/exclusion (§V future work).
        self.slow_policy = slow_policy
        #: Bounded-buffer backpressure: when enabled, a sender can run at
        #: most ``bp_capacity`` bytes ahead of its receiver's forwarding
        #: position (ring buffer + socket buffers), so one slow node
        #: throttles the *whole* pipeline, not just its suffix — the
        #: honest model of §V's problem statement.  Off by default: it
        #: does not change completion times in the paper's experiments
        #: (the bottleneck hop still gates every downstream node).
        self.model_backpressure = model_backpressure
        self.bp_capacity = (
            bp_capacity if bp_capacity is not None
            else self.buffer_bytes + 4 * MiB
        )

    @property
    def buffer_bytes(self) -> float:
        return float(self.config.buffer_bytes)

    def execute(self, engine: Engine, fabric: Fabric, setup: SimSetup):
        run = _KascadeRun(self, engine, fabric, setup)
        run.start()
        return run
