"""Related-work methods from §II-B: BitTorrent broadcast and Dolly.

The paper's related-work section quantifies two more approaches:

* **BitTorrent-based broadcast** — "[Dichev & Lastovetsky] conclude that
  BitTorrent performs better in heterogeneous networks ... However, in
  their experiments, BitTorrent only achieves a maximum throughput of
  about 12 MB/s, which is very disappointing as the bottleneck link in
  the experiment was a 1 Gbit/s link.  Our own experiments with
  BitTorrent showed that its verbose protocol and its complex
  mechanisms (such as tit-for-tat) incur a strong performance penalty
  on high-performance networks."
* **Dolly** — the pipelined disk-cloning ancestor: "(1) Dolly and Dolly+
  were not evaluated at large scale (at most ten nodes); ... (3) Dolly
  and Ka do not provide any fault-tolerance mechanism."

Both are modelled so the §II-B claims can be *measured* instead of
cited (see ``benchmarks/test_related_work.py``).
"""

from __future__ import annotations

from ..core.units import KiB, MiB
from ..launch import Launcher, SSHSequential
from ..simnet import Engine, Fabric
from .base import SimSetup
from .trees import TreeBroadcast


class BitTorrentSwarm(TreeBroadcast):
    """BitTorrent-style swarm broadcast, steady-state approximation.

    In a homogeneous LAN swarm every peer both uploads and downloads at
    the *client's* effective rate, which protocol verbosity (per-piece
    have/request/piece chatter, hashing) and tit-for-tat choking rounds
    pin far below the NIC — the cited experiments measured ~12 MB/s on
    gigabit.  At steady state each peer re-uploads what it downloads, so
    the swarm behaves like a pipeline running at the client-efficiency
    rate; we model exactly that: a chain over a *randomized* peer order
    (BitTorrent neither knows nor cares about rack topology) with every
    hop capped at the client rate.

    This deliberately abstracts piece selection and swarm churn — on a
    LAN where every peer can reach every peer, piece availability is not
    the binding constraint; the client's per-byte protocol work is.
    """

    name = "BitTorrent"
    arity = 1
    #: Effective per-peer application throughput: the §II-B observation.
    hop_cap = 13e6
    copy_bw = 200e6           # hashing + protocol chatter per byte
    protocol_window = 1 * MiB  # pipelined piece requests
    fill_quantum = 256 * KiB   # one piece before re-uploading
    disk_seq_efficiency = 0.40  # random piece order: seeky writes
    launcher = Launcher(base_cost=2.0)  # tracker + handshakes + unchoke
    jitter = 0.10

    def execute(self, engine: Engine, fabric: Fabric, setup: SimSetup):
        # The swarm's internal structure ignores the operator's careful
        # node ordering: shuffle deterministically from the run's RNG.
        if setup.rng is not None and len(setup.receivers) > 1:
            order = list(setup.receivers)
            perm = setup.rng.permutation(len(order))
            setup = SimSetup(
                network=setup.network,
                head=setup.head,
                receivers=tuple(order[i] for i in perm),
                size=setup.size,
                sink=setup.sink,
                failures=setup.failures,
                include_startup=setup.include_startup,
                rng=setup.rng,
            )
        return super().execute(engine, fabric, setup)


class DollyChain(TreeBroadcast):
    """Dolly, the pipelined disk-cloning ancestor (Rauch et al. 2002).

    A compiled chain broadcast with none of Kascade's machinery: no
    fault tolerance (a single node failure kills the clone), no
    streaming input, startup over sequential rsh/ssh.  On a healthy
    cluster it matches Kascade's throughput — the pipeline idea is the
    same — which is exactly why the paper positions Kascade as "chain
    broadcast, but reliable".
    """

    name = "Dolly"
    arity = 1
    copy_bw = 900e6            # C implementation: near memcpy speed
    protocol_window = 4 * MiB  # plain TCP streaming
    fill_quantum = 1 * MiB     # fixed transfer block
    disk_seq_efficiency = 0.58  # sequential writes, like Kascade
    launcher = SSHSequential()  # dolly spawns its chain one rsh at a time
    jitter = 0.04
