"""Tree-structured store-and-forward broadcasts: TakTuk and MPI.

One generic engine covers every non-fault-tolerant method of the
evaluation whose data movement is "each node forwards the stream to its
``arity`` children in host order":

* **TakTuk/chain** — arity 1: the degenerate tree the paper evaluates;
* **TakTuk/tree** — arity 2;
* **MPI broadcast (Ethernet)** — Open MPI's large-message *pipeline*
  algorithm is a segmented chain over ranks in hostfile order (arity 1);
* **MPI broadcast (InfiniBand)** — modelled as a segmented binary tree,
  whose cross-switch edges are what saturate the inter-switch link past
  one switch's worth of ranks (Fig. 9).

Children of chain position ``i`` are positions ``arity*i + 1 + k``
(heap layout).  Every edge is a chain-coupled fluid stream capped by the
method's per-hop protocol limit; each child's completion is recorded by
a dedicated watcher so finish times are exact.
"""

from __future__ import annotations

from typing import List

from ..core.units import KiB, MiB
from ..launch import MpirunLauncher, TakTukAdaptiveTree
from ..simnet import Engine, Fabric, HeadRx, HostDied, NodeRx, StreamCancelled, Timeout
from .base import BroadcastMethod, RunState, SimSetup


class _TreeRun(RunState):
    def __init__(self, method: "TreeBroadcast", engine: Engine,
                 fabric: Fabric, setup: SimSetup) -> None:
        super().__init__()
        self.method = method
        self.engine = engine
        self.fabric = fabric
        self.setup = setup
        self.chain = setup.chain
        self.rx: dict[str, NodeRx] = {
            setup.head: HeadRx(engine, setup.head, setup.size)
        }
        for r in setup.receivers:
            self.rx[r] = NodeRx(engine, r)
        self._children: dict[int, List[int]] = {}
        self._depth: dict[int, int] = {0: 0}
        if method.layout == "contiguous":
            self._split_contiguous(0, 1, len(self.chain))
        else:
            self._build_heap()

    def _split_contiguous(self, parent: int, lo: int, hi: int) -> None:
        """TakTuk-style layout: the parent splits the remaining *contiguous*
        node range among its children, so subtrees stay on their switches
        when the order is topology-sorted.

        Explicit work stack, not recursion: a chain (arity 1) nests one
        level per node, which for the 10k-node scale experiments is far
        past the interpreter's recursion limit."""
        arity = self.method.arity
        stack = [(parent, lo, hi)]
        while stack:
            parent, lo, hi = stack.pop()
            if lo >= hi:
                self._children.setdefault(parent, [])
                continue
            span = hi - lo
            n_blocks = min(arity, span)
            base, extra = divmod(span, n_blocks)
            kids = []
            start = lo
            for b in range(n_blocks):
                size = base + (1 if b < extra else 0)
                child = start
                kids.append(child)
                self._depth[child] = self._depth[parent] + 1
                stack.append((child, start + 1, start + size))
                start += size
            self._children[parent] = kids

    def _build_heap(self) -> None:
        """Heap layout (children of i are a·i+1..a·i+a): rank-stride edges
        ignore the topology, like a communicator's fixed tree shape."""
        arity = self.method.arity
        n = len(self.chain)
        for idx in range(n):
            lo = arity * idx + 1
            kids = [c for c in range(lo, lo + arity) if c < n]
            self._children[idx] = kids
            for c in kids:
                self._depth[c] = self._depth[idx] + 1

    def children_of(self, idx: int) -> List[int]:
        return self._children.get(idx, [])

    def depth_of(self, idx: int) -> int:
        return self._depth[idx]

    def start(self) -> None:
        for idx, node in enumerate(self.chain):
            if self.children_of(idx):
                self.engine.spawn(
                    self.forwarder(idx), name=f"{self.method.name}:{node}"
                )

    def forwarder(self, idx: int):
        me = self.chain[idx]
        myrx = self.rx[me]
        setup = self.setup
        children = self.children_of(idx)
        # Connections (to all children concurrently) are established when
        # the tool starts, before any data exists — off the fill path.
        worst_rtt = max(self.setup.network.rtt(me, self.chain[c])
                        for c in children)
        yield Timeout(self.method.connect_cost + worst_rtt)
        yield from myrx.wait_for(min(self.method.fill_quantum, setup.size))
        supply = None if isinstance(myrx, HeadRx) else myrx.supply
        streams = []
        for c in children:
            child = self.chain[c]
            rtt = setup.network.rtt(me, child)
            line = self.method.line_rate(setup, me, child)
            stream = self.fabric.open_stream(
                me, child, setup.size,
                supply=supply,
                depth=self.depth_of(idx),
                limit=self.method.hop_limit(rtt, line),
                disk_weight=1.0 if setup.sink == "disk" else 0.0,
            )
            self.rx[child].attach(stream)
            streams.append((child, stream))
            self.engine.spawn(
                self._watch(child, stream), name=f"watch:{child}"
            )
        for _child, stream in streams:
            try:
                yield stream.completed
            except (HostDied, StreamCancelled):  # pragma: no cover
                return

    def _watch(self, child: str, stream):
        try:
            yield stream.completed
            self.mark_finished(child, self.engine.now)
        except (HostDied, StreamCancelled):  # pragma: no cover
            self.failed.add(child)


class TreeBroadcast(BroadcastMethod):
    """Generic arity-k store-and-forward broadcast (no fault tolerance)."""

    arity: int = 1
    connect_cost: float = 2e-3
    #: Bytes a node must hold before it starts forwarding.
    fill_quantum: float = 1.0 * MiB
    #: Tree layout over the ordered node list: ``"contiguous"`` splits the
    #: list recursively (TakTuk's deployment), keeping subtrees on their
    #: switches; ``"heap"`` uses fixed rank strides (an MPI communicator's
    #: tree), oblivious to topology.
    layout: str = "contiguous"

    def execute(self, engine: Engine, fabric: Fabric, setup: SimSetup):
        run = _TreeRun(self, engine, fabric, setup)
        run.start()
        if not setup.receivers:
            pass
        return run


class TakTukChain(TreeBroadcast):
    """TakTuk data distribution degraded into a chain (arity 1).

    TakTuk moves file data through its Perl command channel: every byte
    is read, re-framed, and written by the interpreter, capping each hop
    at roughly a third of GbE regardless of scale — the flat low curves
    of Fig. 7.  Its windowed command protocol keeps little data in
    flight, so high-latency hops degrade further (Fig. 13).
    """

    name = "TakTuk/chain"
    arity = 1
    copy_bw = 120e6             # Perl relay: rx + tx share this
    jitter = 0.04
    hop_cap = 42e6              # per-byte interpreter work ceiling
    protocol_window = 512 * KiB
    fill_quantum = 256 * KiB
    disk_seq_efficiency = 0.50
    launcher = TakTukAdaptiveTree()


class TakTukTree(TakTukChain):
    """TakTuk with a binary distribution tree (arity 2).

    The paper finds both TakTuk variants "perform equally bad": the
    interpreter ceiling binds before any structural difference can help,
    and an inner node now pays the copy cost three times (1 in, 2 out).
    """

    name = "TakTuk/tree"
    arity = 2


class MpiEthernet(TreeBroadcast):
    """Home-made MPI broadcast over TCP (the paper's MPI/Eth).

    The 1 MB application fragments are broadcast with Open MPI's tuned
    collective, which for large messages and large communicators is the
    *pipeline* algorithm: a segmented chain over ranks in hostfile order.
    A compiled implementation moves bytes at memory speed (high copy
    budget → line rate on GbE, ~3–5 Gb/s on 10 GbE), but the segment
    rendezvous makes every hop pay one RTT per ~128 KiB in flight —
    harmless on a LAN, crippling between sites (Fig. 13).
    """

    name = "MPI/Eth"
    arity = 1
    copy_bw = 820e6
    jitter = 0.22
    protocol_window = 256 * KiB
    fill_quantum = 128 * KiB
    disk_seq_efficiency = 0.45   # bursty segment writes, not streaming
    launcher = MpirunLauncher()


class MpiInfiniband(TreeBroadcast):
    """MPI broadcast over native InfiniBand verbs (the paper's MPI/IB).

    Modelled as a segmented binary tree: very fast while every rank sits
    on one switch (native IB moves ~2 GB/s per host), but the tree's
    long-stride edges cross the inter-switch trunk once the reservation
    spills onto the second switch, and the trunk collapses under dozens
    of full-rate copies (Fig. 9: "with 160 nodes shows a very low
    performance similar to TakTuk").
    """

    name = "MPI/IB"
    arity = 2
    layout = "heap"
    copy_bw = 2.9e9
    jitter = 0.25
    protocol_window = 1 * MiB
    fill_quantum = 256 * KiB
    disk_seq_efficiency = 0.45
    launcher = MpirunLauncher()
