"""UDPCast on the simulator: IP-multicast with slice synchronisation.

UDPCast (in its default bidirectional mode, the one the paper could run
reliably) sends the file as *slices* over UDP multicast; after each slice
the sender collects per-receiver acknowledgments and retransmits lost
blocks before moving on.  One multicast transmission crosses each
network link once however many receivers there are — which is why it
matches the pipeline methods up to ~100 clients on GbE (Fig. 7).

The cost is the synchronisation round: every receiver answers every
slice, and the sender must process all answers — "the costly
synchronization between the sender and its clients" to which the paper
attributes the rapid degradation past 100 nodes.  We model the round as

    sync(n) = RTT + ack_cost·n + congestion·n²

where the linear term is per-ack processing and the quadratic one the
retransmit/ack-collision regime that sets in at scale (the ACK-implosion
phenomenon cited in §II-B).  Multicast does not cross routers, so the
method is excluded from multi-site runs, as in the paper.
"""

from __future__ import annotations

from ..core.units import MiB
from ..launch import Launcher
from ..simnet import Engine, Fabric, HostDied, Timeout
from .base import BroadcastMethod, RunState, SimSetup


class _UdpcastRun(RunState):
    def __init__(self, method: "UdpcastSim", engine: Engine,
                 fabric: Fabric, setup: SimSetup) -> None:
        super().__init__()
        self.method = method
        self.engine = engine
        self.fabric = fabric
        self.setup = setup

    def start(self) -> None:
        self.engine.spawn(self.sender(), name="udpcast:sender")

    def sender(self):
        setup = self.setup
        method = self.method
        receivers = list(setup.receivers)
        n = len(receivers)
        rtt = max(
            (setup.network.rtt(setup.head, r) for r in receivers),
            default=1e-4,
        )
        line = min(
            (method.line_rate(setup, setup.head, r) for r in receivers),
            default=float("inf"),
        )
        sent = 0.0
        while sent < setup.size and receivers:
            slice_len = min(method.slice_size, setup.size - sent)
            stream = self.fabric.open_stream(
                setup.head, receivers, slice_len,
                offset0=sent,
                limit=method.hop_limit(rtt, line),
                disk_weight=1.0 if setup.sink == "disk" else 0.0,
            )
            try:
                yield stream.completed
            except HostDied:  # pragma: no cover - no failures injected
                receivers = [r for r in receivers if not self.fabric.is_dead(r)]
                continue
            sent += slice_len
            yield Timeout(method.sync_time(n, rtt))
        for r in receivers:
            self.mark_finished(r, self.engine.now)


class _UnidirectionalRun(RunState):
    def __init__(self, method: "UdpcastUnidirectional", engine: Engine,
                 fabric: Fabric, setup: SimSetup) -> None:
        super().__init__()
        self.method = method
        self.engine = engine
        self.fabric = fabric
        self.setup = setup

    def start(self) -> None:
        self.engine.spawn(self.sender(), name="udpcast-uni:sender")

    def sender(self):
        setup = self.setup
        m = self.method
        receivers = list(setup.receivers)
        net = setup.network
        # The "tuning": the operator picks a send rate; receivers drop
        # packets in proportion to how hard the rate pushes past what
        # they can absorb.
        decode_ok = {r: True for r in receivers}
        sent = 0.0
        while sent < setup.size:
            slice_len = min(m.slice_size, setup.size - sent)
            wire_len = slice_len * (1.0 + m.fec_overhead)
            yield Timeout(wire_len / m.send_rate)
            sent += slice_len
            rng = setup.rng
            margin = m.fec_overhead / (1.0 + m.fec_overhead)
            for r in receivers:
                if not decode_ok[r]:
                    continue
                capacity = min(
                    net.host(r).copy_bw,
                    m.line_rate(setup, setup.head, r),
                )
                # A receiver's momentary absorption rate dips below its
                # nominal capacity (scheduling, NIC ring overruns); any
                # overrun during this slice is lost on the floor.  One
                # dip draw per receiver per slice.
                dip = (float(rng.exponential(m.dip_scale))
                       if rng is not None else 0.0)
                effective = capacity * max(0.0, 1.0 - dip)
                lost_fraction = (
                    max(0.0, m.send_rate - effective) / m.send_rate
                    + m.base_loss
                )
                if lost_fraction > margin:
                    decode_ok[r] = False
        now = self.engine.now
        self.data_end = now
        for r in receivers:
            if decode_ok[r]:
                self.mark_finished(r, now)
            else:
                # No return channel: the sender never learns, the
                # receiver simply ends up with an incomplete file.
                self.aborted.add(r)


class UdpcastUnidirectional(BroadcastMethod):
    """UDPCast's unidirectional (no-return-channel) mode, §II-B.

    The sender blasts FEC-protected slices at a configured rate and
    never hears back: "the unidirectional mode relies on FEC packets to
    work-around congestion, but still requires a lot of tuning (sending
    throughput and amount of additional FEC packets to send) ... we were
    unable to get it to work reliably.  Also, in that mode the sender is
    not able to know if the receivers have correctly received the data."

    The model makes that tuning dilemma measurable: pushing ``send_rate``
    toward the line rate raises per-packet loss beyond the FEC margin
    and receivers silently end up with holes; backing off (or paying
    more FEC overhead) restores reliability at the cost of throughput.
    See ``benchmarks/test_related_work.py``.
    """

    name = "UDPCast/uni"
    copy_bw = 340e6
    jitter = 0.0          # the interesting randomness is packet loss
    disk_seq_efficiency = 0.50
    launcher = Launcher(base_cost=0.8)
    supports_routed = False

    def __init__(
        self,
        *,
        send_rate: float = 110e6,
        fec_overhead: float = 0.10,
        slice_size: float = 4.0 * MiB,
        base_loss: float = 1e-4,
        dip_scale: float = 0.02,
    ) -> None:
        self.send_rate = send_rate
        self.fec_overhead = fec_overhead
        self.slice_size = slice_size
        #: Ambient per-packet loss even with ample headroom.
        self.base_loss = base_loss
        #: Scale of the exponential dips in a receiver's momentary
        #: absorption rate (~2 % mean: OS jitter on a busy node).
        self.dip_scale = dip_scale

    def execute(self, engine: Engine, fabric: Fabric, setup: SimSetup):
        run = _UnidirectionalRun(self, engine, fabric, setup)
        run.start()
        return run


class UdpcastSim(BroadcastMethod):
    """UDPCast 2012-04-24, bidirectional (feedback) mode."""

    name = "UDPCast"
    #: Receiver-side UDP + FEC/checksum processing budget.  Receivers only
    #: receive (no relaying), so this is paid once per byte — UDPCast
    #: tops the relay-based methods on 10 GbE (Fig. 8) despite a smaller
    #: budget than MPI's.
    copy_bw = 340e6
    jitter = 0.18
    disk_seq_efficiency = 0.50
    launcher = Launcher(base_cost=0.8)  # parallel starter, flat cost
    supports_routed = False             # multicast stays inside the LAN

    def __init__(
        self,
        *,
        slice_size: float = 4.0 * MiB,
        ack_cost: float = 45e-6,
        congestion_cost: float = 1.1e-6,
    ) -> None:
        self.slice_size = slice_size
        self.ack_cost = ack_cost
        self.congestion_cost = congestion_cost

    def sync_time(self, n_receivers: int, rtt: float) -> float:
        """Per-slice synchronisation round (see module docstring)."""
        return (
            rtt
            + self.ack_cost * n_receivers
            + self.congestion_cost * n_receivers * n_receivers
        )

    def execute(self, engine: Engine, fabric: Fabric, setup: SimSetup):
        run = _UdpcastRun(self, engine, fabric, setup)
        run.start()
        return run
