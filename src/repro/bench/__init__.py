"""Experiment harness regenerating the paper's evaluation figures."""

from .figures import (
    FIGURES,
    FigureResult,
    fig07_scalability,
    fig07_scalability_10x,
    fig08_10gbe,
    fig09_infiniband,
    fig10_random_order,
    fig11_disk,
    fig12_site_map,
    fig13_multisite,
    fig14_small_file,
    fig15_fault_tolerance,
)
from .compare import DiffReport, PointDiff, diff_results, diff_stores
from .export import ascii_plot, flatten, to_csv, to_json
from .store import FigureStore, figure_result_from_json
from .runner import ExperimentRunner, Measurement
from .stats import ConfidenceInterval, t_confidence

__all__ = [
    "FIGURES",
    "FigureResult",
    "ExperimentRunner",
    "ascii_plot",
    "to_csv",
    "to_json",
    "flatten",
    "FigureStore",
    "figure_result_from_json",
    "DiffReport",
    "PointDiff",
    "diff_results",
    "diff_stores",
    "Measurement",
    "ConfidenceInterval",
    "t_confidence",
    "fig07_scalability",
    "fig07_scalability_10x",
    "fig08_10gbe",
    "fig09_infiniband",
    "fig10_random_order",
    "fig11_disk",
    "fig12_site_map",
    "fig13_multisite",
    "fig14_small_file",
    "fig15_fault_tolerance",
]
