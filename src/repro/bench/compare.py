"""Compare two stored figure-result sets (regression tracking).

``kascade-sim diff old/ new/`` reports, per figure and series point, the
relative change between two cached runs (see
:class:`~repro.bench.store.FigureStore`), flagging moves that exceed the
combined confidence intervals — the tool to run after touching any model
constant or simulator mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .figures import FigureResult
from .store import FigureStore


@dataclass(frozen=True)
class PointDiff:
    """One compared series point."""

    figure: str
    method: str
    x: object
    old_mean: float
    new_mean: float
    old_hw: float
    new_hw: float

    @property
    def rel_change(self) -> float:
        if self.old_mean == 0:
            return float("inf") if self.new_mean else 0.0
        return (self.new_mean - self.old_mean) / self.old_mean

    @property
    def significant(self) -> bool:
        """Outside the union of both confidence intervals."""
        return abs(self.new_mean - self.old_mean) > (self.old_hw + self.new_hw)


@dataclass
class DiffReport:
    """Comparison of two stored result sets."""

    diffs: List[PointDiff]
    only_old: List[str]
    only_new: List[str]

    @property
    def significant(self) -> List[PointDiff]:
        return [d for d in self.diffs if d.significant]

    @property
    def clean(self) -> bool:
        return not self.significant and not self.only_old

    def format(self, *, all_points: bool = False) -> str:
        lines = []
        if self.only_old:
            lines.append(f"missing from new run: {', '.join(self.only_old)}")
        if self.only_new:
            lines.append(f"new figures: {', '.join(self.only_new)}")
        shown = self.diffs if all_points else self.significant
        if not shown:
            lines.append(
                f"{len(self.diffs)} point(s) compared, all within "
                f"confidence intervals"
            )
        else:
            lines.append(
                f"{len(self.significant)} significant change(s) out of "
                f"{len(self.diffs)} compared point(s):"
            )
            for d in sorted(shown, key=lambda d: -abs(d.rel_change)):
                marker = "!" if d.significant else " "
                lines.append(
                    f" {marker} {d.figure:8s} {d.method:14s} x={d.x!s:>10s}  "
                    f"{d.old_mean:7.1f} -> {d.new_mean:7.1f} MB/s "
                    f"({d.rel_change:+.1%})"
                )
        return "\n".join(lines)


def diff_results(old: FigureResult, new: FigureResult) -> List[PointDiff]:
    """Point-by-point comparison of two runs of the same figure."""
    out: List[PointDiff] = []
    for method, old_points in old.series.items():
        new_points = new.series.get(method)
        if new_points is None:
            continue
        new_by_x = {p.x: p for p in new_points}
        for p in old_points:
            q = new_by_x.get(p.x)
            if q is None:
                continue
            out.append(PointDiff(
                figure=old.figure, method=method, x=p.x,
                old_mean=p.ci.mean, new_mean=q.ci.mean,
                old_hw=p.ci.half_width, new_hw=q.ci.half_width,
            ))
    return out


def diff_stores(old_dir: str, new_dir: str) -> DiffReport:
    """Compare every figure present in both stores."""
    old_store = FigureStore(old_dir)
    new_store = FigureStore(new_dir)
    old_keys = set(old_store.keys())
    new_keys = set(new_store.keys())
    diffs: List[PointDiff] = []
    for key in sorted(old_keys & new_keys):
        old = old_store.load(key)
        new = new_store.load(key)
        if old is not None and new is not None:
            diffs.extend(diff_results(old, new))
    return DiffReport(
        diffs=diffs,
        only_old=sorted(old_keys - new_keys),
        only_new=sorted(new_keys - old_keys),
    )
