"""Export and terminal plotting of regenerated figures.

A reproduction is only useful if its numbers can leave the process:
:func:`to_csv` / :func:`to_json` serialize a
:class:`~repro.bench.figures.FigureResult` with full precision (means,
confidence half-widths, repetition counts), and :func:`ascii_plot`
renders the series as a terminal chart so `kascade-sim run fig07 --plot`
shows the *shape* the paper plots without any plotting dependency.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from .figures import FigureResult

#: Series marker characters, assigned in insertion order.
_MARKERS = "ox+*#@%&"


def to_csv(result: FigureResult) -> str:
    """Serialize one figure's series to CSV (long format).

    Columns: figure, method, x, mean_mbs, ci_half_width, repetitions.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["figure", "method", "x", "mean_mbs", "ci_half_width", "repetitions"]
    )
    for method, points in result.series.items():
        for p in points:
            writer.writerow(
                [result.figure, method, p.x,
                 f"{p.ci.mean:.6g}", f"{p.ci.half_width:.6g}", p.ci.n]
            )
    return buf.getvalue()


def to_json(result: FigureResult) -> str:
    """Serialize one figure to a JSON document."""
    doc = {
        "figure": result.figure,
        "title": result.title,
        "x_label": result.x_label,
        "notes": result.notes,
        "unit": "MB/s",
        "series": {
            method: [
                {
                    "x": p.x,
                    "mean": p.ci.mean,
                    "ci_half_width": p.ci.half_width,
                    "repetitions": p.ci.n,
                }
                for p in points
            ]
            for method, points in result.series.items()
        },
    }
    return json.dumps(doc, indent=2)


def ascii_plot(result: FigureResult, width: int = 72, height: int = 20) -> str:
    """Render the figure as a terminal chart.

    X positions are categorical (one column block per x value, like the
    paper's evenly spaced sample points); Y is throughput in MB/s.  Each
    series gets a marker; collisions show the later series' marker.
    """
    series = result.series
    if not series:
        return f"{result.figure}: (no data)"
    any_points = next(iter(series.values()))
    xs = [p.x for p in any_points]
    n_x = len(xs)
    if n_x == 0:
        return f"{result.figure}: (no data)"

    y_max = max(p.ci.mean for pts in series.values() for p in pts)
    y_max = max(y_max * 1.08, 1e-9)
    plot_w = max(width - 10, n_x)
    grid: List[List[str]] = [[" "] * plot_w for _ in range(height)]

    def col(i: int) -> int:
        if n_x == 1:
            return plot_w // 2
        return round(i * (plot_w - 1) / (n_x - 1))

    def row(value: float) -> int:
        frac = min(max(value / y_max, 0.0), 1.0)
        return (height - 1) - round(frac * (height - 1))

    legend = []
    for marker, (method, points) in zip(_MARKERS, series.items()):
        legend.append(f"{marker} {method}")
        for i, p in enumerate(points):
            grid[row(p.ci.mean)][col(i)] = marker

    lines = [f"{result.figure}: {result.title}  [MB/s]"]
    for r_idx, row_chars in enumerate(grid):
        value = y_max * (height - 1 - r_idx) / (height - 1)
        label = f"{value:7.1f} |" if r_idx % 4 == 0 or r_idx == height - 1 else "        |"
        lines.append(label + "".join(row_chars))
    lines.append("        +" + "-" * plot_w)
    # X tick labels: first, middle, last (categorical).
    tick_line = [" "] * plot_w
    for i in (0, n_x // 2, n_x - 1):
        text = str(xs[i])
        start = min(col(i), plot_w - len(text))
        for j, ch in enumerate(text):
            tick_line[start + j] = ch
    lines.append("         " + "".join(tick_line))
    lines.append(f"         ({result.x_label})   " + "   ".join(legend))
    return "\n".join(lines)


def flatten(result: FigureResult) -> List[Dict]:
    """Long-format rows (dicts), convenient for DataFrame construction."""
    rows = []
    for method, points in result.series.items():
        for p in points:
            rows.append(
                {
                    "figure": result.figure,
                    "method": method,
                    "x": p.x,
                    "mean_mbs": p.ci.mean,
                    "ci_half_width": p.ci.half_width,
                    "repetitions": p.ci.n,
                }
            )
    return rows
