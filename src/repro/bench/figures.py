"""Experiment definitions regenerating every figure of the evaluation.

Each ``figXX_*`` function reproduces one figure of §IV: it builds the
platform the paper used (substituted by the simulator), sweeps the same
x-axis, runs every compared method with repetitions, and returns a
:class:`FigureResult` whose ``format_table()`` prints the series the
paper plots (mean ± 95 % CI throughput in MB/s).

The ``quick`` flag trades x-resolution and repetitions for speed; shapes
are preserved.  See EXPERIMENTS.md for paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines import (
    KascadeSim,
    MpiEthernet,
    MpiInfiniband,
    SimSetup,
    TakTukChain,
    TakTukTree,
    UdpcastSim,
)
from ..core.pipeline import order_by_hostname, order_randomly
from ..core.units import GB, MB
from ..distem import build_distem_platform, paper_scenarios
from ..topology import (
    build_fat_tree,
    build_multisite,
    build_single_switch,
    build_two_switch,
    experiment_chain,
    link_usage,
)
from ..topology.graph import DiskSpec
from .runner import ExperimentRunner, Measurement


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure: str
    title: str
    x_label: str
    series: Dict[str, List[Measurement]] = field(default_factory=dict)
    notes: str = ""

    def means(self, method: str) -> List[float]:
        return [m.mean_mbs for m in self.series[method]]

    def xs(self, method: str) -> List[object]:
        return [m.x for m in self.series[method]]

    def format_table(self) -> str:
        """Paper-style text table: one row per method, one column per x."""
        lines = [f"{self.figure}: {self.title}"]
        if self.notes:
            lines.append(f"  ({self.notes})")
        any_series = next(iter(self.series.values()))
        header = f"{self.x_label:>16s} | " + " | ".join(
            f"{str(m.x):>14s}" for m in any_series
        )
        lines.append(header)
        lines.append("-" * len(header))
        for method, points in self.series.items():
            row = f"{method:>16s} | " + " | ".join(
                f"{p.ci.mean:6.1f} ±{p.ci.half_width:5.1f}" for p in points
            )
            lines.append(row)
        lines.append("  (throughput, MB/s, mean ± 95% CI)")
        return "\n".join(lines)


#: Default client grid of the 200-node experiments.
FULL_CLIENTS = (1, 25, 50, 75, 100, 125, 150, 175, 200)
QUICK_CLIENTS = (1, 50, 100, 200)

#: Method factories per figure legend name.
ALL_LAN_METHODS: Tuple[Callable, ...] = (
    KascadeSim, TakTukChain, TakTukTree, UdpcastSim, MpiEthernet,
)


def _grid(quick: bool, full=FULL_CLIENTS, small=QUICK_CLIENTS):
    return small if quick else full


def _reps(quick: bool, full: int) -> int:
    return min(3, full) if quick else full


def _sweep(
    result: FigureResult,
    runner: ExperimentRunner,
    method_factory: Callable,
    points: Sequence[Tuple[object, Callable]],
    label: Optional[str] = None,
) -> None:
    measurements = runner.sweep(method_factory, points)
    name = label or measurements[0].method
    result.series[name] = measurements


# ---------------------------------------------------------------------------
# Figure 7 — raw performance and scalability on 1 GbE
# ---------------------------------------------------------------------------

def fig07_scalability(quick: bool = False, repetitions: int = 5) -> FigureResult:
    """2 GB file, RAM → /dev/null, 1 GbE fat tree, up to 200 clients."""
    result = FigureResult(
        figure="Fig. 7",
        title="Performance and scalability, 1 Gbit/s Ethernet, 2 GB file",
        x_label="clients",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    for method_factory in ALL_LAN_METHODS:
        points = []
        for n in _grid(quick):
            def factory(rng, n=n):
                net = build_fat_tree(n + 1)
                hosts = order_by_hostname(net.host_names())
                return SimSetup(network=net, head=hosts[0],
                                receivers=tuple(hosts[1: n + 1]), size=2 * GB)
            points.append((n, factory))
        _sweep(result, runner, method_factory, points)
    return result


def fig07_scalability_10x(quick: bool = False,
                          repetitions: int = 1) -> FigureResult:
    """Beyond the paper: the Fig. 7 sweep pushed to 10× the testbed.

    The paper stops at 200 clients — the size of the Grid'5000 slice it
    ran on.  This extension re-runs the chain-structured contenders on
    fat trees up to 2000 hosts, the regime the simulation-kernel
    overhaul targets.  Two things are being measured at once: that the
    *simulated* rankings extrapolate (pipelines beat the flat TakTuk
    chain; per-hop fill time, not bandwidth, is what erodes a deep
    unsegmented chain), and that the kernel itself sustains 10× scale
    in minutes of wall clock.  One repetition by default — the fluid
    model is deterministic per seed, and each 2000-host point costs
    ~1 min of simulation.
    """
    result = FigureResult(
        figure="Fig. 7 (10x)",
        title="Scalability beyond the testbed, 1 Gbit/s Ethernet, 2 GB file",
        x_label="clients",
        notes="extension — not a figure of the paper",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    grid = (2000,) if quick else (500, 1000, 2000)
    for method_factory in (KascadeSim, TakTukChain, MpiEthernet):
        points = []
        for n in grid:
            def factory(rng, n=n):
                net = build_fat_tree(n + 1)
                hosts = order_by_hostname(net.host_names())
                return SimSetup(network=net, head=hosts[0],
                                receivers=tuple(hosts[1: n + 1]), size=2 * GB)
            points.append((n, factory))
        _sweep(result, runner, method_factory, points)
    return result


# ---------------------------------------------------------------------------
# Figure 8 — 10 GbE cluster
# ---------------------------------------------------------------------------

def fig08_10gbe(quick: bool = False, repetitions: int = 5) -> FigureResult:
    """5 GB file on the 14-node 10 GbE cluster."""
    result = FigureResult(
        figure="Fig. 8",
        title="10 Gbit/s Ethernet, 14 nodes, 5 GB file",
        x_label="clients",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    grid = (1, 5, 9, 13) if quick else (1, 3, 5, 7, 9, 11, 13)
    for method_factory in ALL_LAN_METHODS:
        points = []
        for n in grid:
            def factory(rng, n=n):
                net = build_single_switch(14)
                hosts = order_by_hostname(net.host_names())
                return SimSetup(network=net, head=hosts[0],
                                receivers=tuple(hosts[1: n + 1]), size=5 * GB)
            points.append((n, factory))
        _sweep(result, runner, method_factory, points)
    return result


# ---------------------------------------------------------------------------
# Figure 9 — IP over InfiniBand, two switches
# ---------------------------------------------------------------------------

def fig09_infiniband(quick: bool = False, repetitions: int = 5) -> FigureResult:
    """5 GB file over the 20 Gb IPoIB fabric (MPI uses native IB);
    reservations beyond 120 nodes span the second switch."""
    result = FigureResult(
        figure="Fig. 9",
        title="IP over InfiniBand (20 Gbit/s), 5 GB file",
        x_label="clients",
        notes="MPI/IB collapses once ranks span both switches (>120)",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    grid = (10, 80, 160, 200) if quick else (10, 40, 80, 120, 160, 200)
    for method_factory in (KascadeSim, TakTukChain, TakTukTree, MpiInfiniband):
        points = []
        for n in grid:
            def factory(rng, n=n):
                net = build_two_switch(n + 1)
                hosts = order_by_hostname(net.host_names())
                return SimSetup(network=net, head=hosts[0],
                                receivers=tuple(hosts[1: n + 1]), size=5 * GB)
            points.append((n, factory))
        _sweep(result, runner, method_factory, points)
    return result


# ---------------------------------------------------------------------------
# Figure 10 — randomized node ordering
# ---------------------------------------------------------------------------

def fig10_random_order(quick: bool = False, repetitions: int = 5) -> FigureResult:
    """Like Fig. 7 but the node order is randomized; includes the
    Kascade/ordered reference curve."""
    result = FigureResult(
        figure="Fig. 10",
        title="Randomized node ordering, 1 Gbit/s Ethernet, 2 GB file",
        x_label="clients",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))

    def random_factory(n):
        def factory(rng, n=n):
            net = build_fat_tree(n + 1)
            hosts = order_by_hostname(net.host_names())
            receivers = tuple(order_randomly(hosts[1: n + 1], rng))
            return SimSetup(network=net, head=hosts[0],
                            receivers=receivers, size=2 * GB, rng=rng)
        return factory

    def ordered_factory(n):
        def factory(rng, n=n):
            net = build_fat_tree(n + 1)
            hosts = order_by_hostname(net.host_names())
            return SimSetup(network=net, head=hosts[0],
                            receivers=tuple(hosts[1: n + 1]), size=2 * GB)
        return factory

    for method_factory in (KascadeSim, TakTukChain, TakTukTree, MpiEthernet):
        points = [(n, random_factory(n)) for n in _grid(quick)]
        _sweep(result, runner, method_factory, points)
    points = [(n, ordered_factory(n)) for n in _grid(quick)]
    _sweep(result, runner, KascadeSim, points, label="Kascade/ordered")
    return result


# ---------------------------------------------------------------------------
# Figure 11 — writing to disk
# ---------------------------------------------------------------------------

def fig11_disk(quick: bool = False, repetitions: int = 5) -> FigureResult:
    """2 GB file written to 83.5 MB/s disks, up to 30 clients."""
    result = FigureResult(
        figure="Fig. 11",
        title="1 Gbit/s Ethernet, 2 GB file written to disk",
        x_label="clients",
        notes="Hitachi 7K1000.C: ~83.5 MB/s raw sequential write",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    grid = (1, 10, 30) if quick else (1, 5, 10, 15, 20, 25, 30)
    for method_factory in ALL_LAN_METHODS:
        points = []
        for n in grid:
            def factory(rng, n=n):
                net = build_fat_tree(n + 1, disk=DiskSpec(write_bw=83.5e6))
                hosts = order_by_hostname(net.host_names())
                return SimSetup(network=net, head=hosts[0],
                                receivers=tuple(hosts[1: n + 1]),
                                size=2 * GB, sink="disk")
            points.append((n, factory))
        _sweep(result, runner, method_factory, points)
    return result


# ---------------------------------------------------------------------------
# Figure 12 — the multi-site map (input of Fig. 13)
# ---------------------------------------------------------------------------

def fig12_site_map() -> str:
    """Describe the WAN topology and reproduce the caption's observation
    that the Paris–Lyon link is used five times by the Fig. 13 chain."""
    net = build_multisite(6)
    chain = experiment_chain(6)
    usage = link_usage(net, chain)
    lines = [
        "Fig. 12: Grid'5000 multi-site topology",
        f"  sites in experiment order: {' -> '.join(chain)}",
        "  backbone link usage by the pipeline:",
    ]
    for link, count in sorted(usage.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {link:24s} used {count}x")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 13 — multi-site, routed, high-latency
# ---------------------------------------------------------------------------

def fig13_multisite(quick: bool = False, repetitions: int = 5) -> FigureResult:
    """1 GB file across 1–6 geographically distant sites (MPI: 100 MB,
    as in the paper; UDPCast excluded — multicast does not route)."""
    result = FigureResult(
        figure="Fig. 13",
        title="Multi-site routed transfer (10 Gb backbone, ~16 ms RTT)",
        x_label="sites",
        notes="MPI/Eth measured with a 100 MB file, as in the paper",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    # Point 0 is the paper's intra-site baseline: two nodes at the home
    # site ("we reserved 2 more nodes on another site so that the first
    # point in each plot represents intra-site distribution").
    grid = (0, 3, 6) if quick else (0, 1, 2, 3, 4, 5, 6)
    for method_factory in (KascadeSim, TakTukChain, TakTukTree, MpiEthernet):
        points = []
        for n_sites in grid:
            size = 100 * MB if method_factory is MpiEthernet else 1 * GB
            def factory(rng, n_sites=n_sites, size=size):
                net = build_multisite(n_sites)
                chain = experiment_chain(n_sites)
                return SimSetup(network=net, head=chain[0],
                                receivers=tuple(chain[1:]), size=size)
            points.append((n_sites, factory))
        _sweep(result, runner, method_factory, points)
    return result


# ---------------------------------------------------------------------------
# Figure 14 — small file (startup overhead)
# ---------------------------------------------------------------------------

def fig14_small_file(quick: bool = False, repetitions: int = 5) -> FigureResult:
    """50 MB file on the Fig. 7 platform: startup time dominates."""
    result = FigureResult(
        figure="Fig. 14",
        title="Small file (50 MB), 1 Gbit/s Ethernet",
        x_label="clients",
        notes="methods with efficient startup (MPI, UDPCast) win",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    for method_factory in ALL_LAN_METHODS:
        points = []
        for n in _grid(quick):
            def factory(rng, n=n):
                net = build_fat_tree(n + 1)
                hosts = order_by_hostname(net.host_names())
                return SimSetup(network=net, head=hosts[0],
                                receivers=tuple(hosts[1: n + 1]), size=50 * MB)
            points.append((n, factory))
        _sweep(result, runner, method_factory, points)
    return result


# ---------------------------------------------------------------------------
# Figure 15 — fault tolerance under Distem
# ---------------------------------------------------------------------------

def fig15_fault_tolerance(quick: bool = False, repetitions: int = 10) -> FigureResult:
    """5 GB broadcast to 99 vnodes (100 folded on 20 pnodes) under the
    paper's seven failure scenarios.  The paper repeats 50×; default 10
    repetitions already give tight intervals."""
    result = FigureResult(
        figure="Fig. 15",
        title="Kascade under injected failures (Distem, 100 vnodes)",
        x_label="scenario",
        notes="simultaneous failures pipeline their detection timeouts",
    )
    runner = ExperimentRunner(repetitions=_reps(quick, repetitions))
    points = []
    for scenario in paper_scenarios():
        def factory(rng, scenario=scenario):
            plat = build_distem_platform()
            return SimSetup(
                network=plat.network, head=plat.vnodes[0],
                receivers=plat.vnodes[1:], size=5 * GB,
                failures=scenario.events, include_startup=False,
            )
        points.append((scenario.name, factory))
    _sweep(result, runner, KascadeSim, points)
    return result


#: Registry for the CLI and the benchmark suite.
FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig07": fig07_scalability,
    "fig07_10x": fig07_scalability_10x,
    "fig08": fig08_10gbe,
    "fig09": fig09_infiniband,
    "fig10": fig10_random_order,
    "fig11": fig11_disk,
    "fig13": fig13_multisite,
    "fig14": fig14_small_file,
    "fig15": fig15_fault_tolerance,
}
