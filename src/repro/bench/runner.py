"""Experiment runner: repeated simulated broadcasts with seeded variance.

One *experiment point* is (method, x-value); it is measured by running
the simulation ``repetitions`` times with distinct seeded RNGs (the RNG
feeds the per-host jitter that models run-to-run variance on the real
testbed) and aggregating the throughputs into a Student-t confidence
interval, exactly as the paper plots its error bars.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from ..baselines.base import BroadcastMethod, MethodResult, SimSetup
from ..core.units import mbps
from .stats import ConfidenceInterval, t_confidence

#: Builds a fresh setup for one repetition.  A *fresh* topology matters:
#: methods stamp their host model onto it.
SetupFactory = Callable[[np.random.Generator], SimSetup]


@dataclass
class Measurement:
    """Aggregated result of one experiment point."""

    method: str
    x: object                      # client count, site count, scenario name…
    ci: ConfidenceInterval         # throughput in MB/s
    results: List[MethodResult] = field(default_factory=list)

    @property
    def mean_mbs(self) -> float:
        return self.ci.mean


class ExperimentRunner:
    """Runs repeated simulations with deterministic seeding."""

    def __init__(self, repetitions: int = 5, base_seed: int = 20140519) -> None:
        # Base seed: the workshop date, for no reason other than tradition.
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        self.repetitions = repetitions
        self.base_seed = base_seed

    def measure(
        self,
        method_factory: Callable[[], BroadcastMethod],
        setup_factory: SetupFactory,
        *,
        x: object,
    ) -> Measurement:
        """Measure one experiment point."""
        results: List[MethodResult] = []
        # crc32, not hash(): str hashing is salted per process and would
        # make "deterministic given base_seed" a lie across invocations.
        x_tag = zlib.crc32(str(x).encode()) & 0xFFFF
        for rep in range(self.repetitions):
            rng = np.random.default_rng((self.base_seed, x_tag, rep))
            setup = setup_factory(rng)
            if setup.rng is None:
                setup.rng = rng
            method = method_factory()
            results.append(method.run(setup))
        ci = t_confidence([mbps(r.throughput) for r in results])
        return Measurement(
            method=results[0].method, x=x, ci=ci, results=results
        )

    def sweep(
        self,
        method_factory: Callable[[], BroadcastMethod],
        setup_factories: Sequence[tuple],
    ) -> List[Measurement]:
        """Measure a series: ``setup_factories`` is ``[(x, factory), ...]``."""
        return [
            self.measure(method_factory, factory, x=x)
            for x, factory in setup_factories
        ]
