"""Statistics for experiment results.

The paper reports averages with 95 % confidence intervals from the
Student t-distribution (§IV): so do we.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int
    level: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.half_width:.1f}"


def t_confidence(values: Sequence[float], level: float = 0.95) -> ConfidenceInterval:
    """Mean ± t-based confidence half-width of ``values``.

    A single sample yields a zero-width interval (no variance estimate),
    matching how a single repetition would be plotted.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    mean = float(arr.mean())
    if arr.size == 1:
        return ConfidenceInterval(mean, 0.0, 1, level)
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    t_crit = float(sps.t.ppf(0.5 + level / 2.0, df=arr.size - 1))
    return ConfidenceInterval(mean, t_crit * sem, int(arr.size), level)
