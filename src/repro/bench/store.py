"""On-disk figure store: resumable regeneration of the evaluation.

The paper ran its campaign under the XPFlow workflow engine precisely
because multi-hour sweeps die halfway; this is the equivalent comfort
for `kascade-sim all --cache DIR` — every finished figure is persisted
as JSON and skipped on the next invocation.

Cached results round-trip the *aggregates* (means, confidence interval
half-widths, repetition counts); the per-repetition ``MethodResult``
objects are not persisted, so a loaded figure can be printed, plotted,
and exported, but not re-inspected run by run.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .figures import FigureResult
from .runner import Measurement
from .stats import ConfidenceInterval


def figure_result_from_json(text: str) -> FigureResult:
    """Reconstruct a :class:`FigureResult` from :func:`to_json` output."""
    doc = json.loads(text)
    result = FigureResult(
        figure=doc["figure"],
        title=doc["title"],
        x_label=doc["x_label"],
        notes=doc.get("notes", ""),
    )
    for method, points in doc["series"].items():
        result.series[method] = [
            Measurement(
                method=method,
                x=p["x"],
                ci=ConfidenceInterval(
                    mean=p["mean"],
                    half_width=p["ci_half_width"],
                    n=p["repetitions"],
                ),
            )
            for p in points
        ]
    return result


class FigureStore:
    """Directory of ``<key>.json`` figure results."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def has(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def load(self, key: str) -> Optional[FigureResult]:
        """Load a cached figure, or None if absent or unreadable."""
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as f:
                return figure_result_from_json(f.read())
        except (OSError, ValueError, KeyError):
            return None  # treat a corrupt cache entry as a miss

    def save(self, key: str, result: FigureResult) -> str:
        """Persist atomically (write + rename); returns the path."""
        from .export import to_json

        path = self._path(key)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            f.write(to_json(result))
        os.replace(tmp, path)
        return path

    def keys(self):
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".json"):
                yield name[: -len(".json")]
