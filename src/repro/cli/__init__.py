"""Command-line interfaces: ``kascade`` (real TCP broadcast, Fig. 2) and
``kascade-sim`` (regenerate the paper's evaluation figures)."""
