"""``kascade`` — pipelined fault-tolerant broadcast over real TCP.

Mirrors the paper's Fig. 2 interface:

* ``kascade demo -n 5 -i myfile.tgz -o /tmp/out-{node}`` — run a whole
  pipeline locally (one thread per node) — the zero-setup showcase;
* ``kascade recv --name n2 --nodes <registry> [-o FILE | -O CMD]`` — run
  one receiving node (start one per machine/port);
* ``kascade send --name n1 --nodes <registry> [-i FILE]`` — run the head
  node; reads stdin when ``-i`` is omitted or ``-``, exactly like
  ``dd if=/dev/sda2 | gzip | kascade ... -O 'gunzip | dd of=/dev/sda2'``;
* ``kascade deploy -n 8 -i myfile.tgz`` — windowed multi-process
  deployment: one OS process per node, launched ``--window`` at a time,
  supervised by a coordinator (the §III-B startup phase for real);
* ``kascade agent --coordinator HOST:PORT --name n3`` — one deployed
  node process; normally spawned by ``deploy``, not by hand.

The ``--nodes`` registry is ``name=host:port`` pairs, comma separated,
in pipeline order, the head first:
``--nodes n1=10.0.0.1:3640,n2=10.0.0.2:3640,n3=10.0.0.3:3640``.

``--stripes N`` (any command) splits the stream into N interleaved
chains.  For ``send``/``recv`` the registry names one address per node
and stripe ``j`` listens on that port + ``j`` (consecutive ports), so
the same ``--nodes`` spec — with the same ``--stripes`` — must be given
to every node.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Tuple

from ..core import DEFAULT_CONFIG, KascadeConfig
from ..core.plan import ChainPlan
from ..core.recovery import SourceKind
from ..core.report import TransferReport
from ..core.sinks import open_sink
from ..core.sources import open_source
from ..core.stripes import StripeMergeSink, StripeSource
from ..core.tracing import NULL_TRACER, TraceCollector
from ..runtime import HeadNode, Listener, ReceiverNode, Registry
from ..runtime.transport import Address


def make_tracer(args: argparse.Namespace):
    """``(tracer, finish)`` pair for ``--trace PATH``: a collector when
    tracing is on (``finish()`` writes the JSONL file), else the no-op."""
    if not args.trace:
        return NULL_TRACER, lambda: None
    tracer = TraceCollector()

    def finish() -> None:
        tracer.to_jsonl(args.trace)

    return tracer, finish


def parse_registry(spec: str) -> Tuple[List[str], Dict[str, Address]]:
    """Parse ``name=host:port,...`` into (ordered names, address map)."""
    names: List[str] = []
    addrs: Dict[str, Address] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        try:
            name, hostport = item.split("=", 1)
            host, port = hostport.rsplit(":", 1)
            addrs[name] = Address(host, int(port))
            names.append(name)
        except ValueError:
            raise SystemExit(f"bad --nodes entry: {item!r} "
                             f"(expected name=host:port)")
    if len(names) < 2:
        raise SystemExit("--nodes needs the head plus at least one receiver")
    return names, addrs


def build_config(args: argparse.Namespace) -> KascadeConfig:
    from ..core.units import parse_size

    bwlimit = None
    if args.bwlimit is not None:
        bwlimit = float(parse_size(args.bwlimit))
    return DEFAULT_CONFIG.with_(
        chunk_size=args.chunk_size,
        buffer_chunks=args.buffer_chunks,
        io_timeout=args.timeout,
        verify_digest=args.verify,
        bandwidth_limit=bwlimit,
        sink_writeback_depth=args.writeback_depth,
        sink_writeback_budget=int(parse_size(args.writeback_budget)),
        readahead_chunks=args.readahead,
        stripes=args.stripes,
        data_plane=args.data_plane,
    )


def add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CONFIG.chunk_size,
                        help="DATA chunk size in bytes")
    parser.add_argument("--buffer-chunks", type=int,
                        default=DEFAULT_CONFIG.buffer_chunks,
                        help="chunks kept for failure recovery")
    parser.add_argument("--timeout", type=float, default=DEFAULT_CONFIG.io_timeout,
                        help="I/O stall timeout (seconds) before the liveness ping")
    parser.add_argument("--verify", action="store_true",
                        help="end-to-end SHA-256 verification: the head ships "
                             "its digest in the report, every receiver checks "
                             "its stored copy")
    parser.add_argument("--bwlimit", default=None,
                        help="cap the head's send rate, e.g. 40MB (per "
                             "second); useful next to production traffic")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL timeline of structured "
                             "broadcast events (connect/chunk/stall/ping/"
                             "failover/...) to PATH")
    parser.add_argument("--writeback-depth", type=int,
                        default=DEFAULT_CONFIG.sink_writeback_depth,
                        help="chunks queued for the background sink writer "
                             "(0 = write synchronously on the relay thread)")
    parser.add_argument("--writeback-budget", default=str(
                            DEFAULT_CONFIG.sink_writeback_budget),
                        help="pinned-byte ceiling for the writeback queue, "
                             "e.g. 32MiB; past it chunks are copied")
    parser.add_argument("--readahead", type=int,
                        default=DEFAULT_CONFIG.readahead_chunks,
                        help="chunks the head prefetches from a file/pipe "
                             "source (0 = no read-ahead)")
    parser.add_argument("--stripes", type=int, default=DEFAULT_CONFIG.stripes,
                        metavar="N",
                        help="split the stream into N interleaved chains "
                             "(default 1 = classic single chain); for "
                             "send/recv, stripe j listens on the registry "
                             "port + j")
    from ..core.config import DATA_PLANES
    parser.add_argument("--data-plane", choices=DATA_PLANES,
                        default=DEFAULT_CONFIG.data_plane,
                        help="I/O engine: 'threaded' (two threads per node, "
                             "the conformance reference) or 'evloop' (one "
                             "reactor per process; pure relays forward "
                             "payloads in-kernel via splice/sendfile)")


def cmd_demo(args: argparse.Namespace) -> int:
    """Whole pipeline in one process: threads + loopback TCP."""
    config = build_config(args)
    receivers = [f"n{i}" for i in range(2, args.nodes + 2)]
    source = open_source(args.input)

    def sink_factory(name: str):
        if args.output_command:
            from ..core.sinks import CommandSink
            return CommandSink(args.output_command.replace("{node}", name))
        if args.output:
            from ..core.sinks import FileSink
            # A file-backed head knows the stream length: pre-size the
            # outputs so an out-of-space disk fails the run up front.
            return FileSink(args.output.replace("{node}", name),
                            expected_size=getattr(source, "size", None))
        from ..core.sinks import NullSink
        return NullSink()

    from ..session import run_broadcast

    result = run_broadcast(source, receivers, sink_factory=sink_factory,
                           config=config, trace=args.trace,
                           timeout=args.run_timeout)
    delivered = [n for n in result.completed_nodes if n != "n1"]
    print(f"{result.total_bytes} bytes to {len(delivered)} node(s) "
          f"in {result.duration:.2f}s "
          f"({result.throughput / 1e6:.1f} MB/s)")
    print(result.report.summary())
    for name, outcome in sorted(result.outcomes.items()):
        status = "ok" if outcome.ok else f"FAILED ({outcome.error})"
        print(f"  {name}: {outcome.bytes_received} bytes, {status}")
    if args.trace and result.trace is not None:
        print(result.trace.failure_chronology())
        print(f"trace: {result.trace.summary()} -> {args.trace}")
    return 0 if result.ok else 1


def parse_chaos(specs: List[str], head: str | None = None):
    """Parse ``--chaos NODE:BYTES[:SIG]`` items into ChaosPlans.

    ``head`` lets the user write the role instead of the node name:
    ``--chaos head:4MiB`` targets whatever node is the head (requires
    ``--allow-head-chaos`` plus coordinator replicas to survive).
    ``replica:<i>`` names pass through — they target control-plane
    replica processes, not broadcast nodes.
    """
    from ..core.units import parse_size
    from ..deploy.chaos import ChaosPlan

    plans = []
    for spec in specs or []:
        parts = spec.split(":")
        # "replica:0:1MiB[:SIG]" — the target name itself has a colon.
        if parts[0] == "replica" and len(parts) in (3, 4):
            parts = [f"replica:{parts[1]}"] + parts[2:]
        if len(parts) not in (2, 3):
            raise SystemExit(f"bad --chaos entry: {spec!r} "
                             f"(expected NODE:BYTES[:kill|stop])")
        node, size = parts[0], parts[1]
        if node == "head" and head is not None:
            node = head
        sig = parts[2] if len(parts) == 3 else "kill"
        try:
            plans.append(ChaosPlan(node, after_bytes=int(parse_size(size)),
                                   sig=sig))
        except Exception as exc:
            raise SystemExit(f"bad --chaos entry: {spec!r} ({exc})")
    return plans


def cmd_deploy(args: argparse.Namespace) -> int:
    """Windowed multi-process deployment: real processes, real signals."""
    config = build_config(args)
    receivers = [f"n{i}" for i in range(2, args.nodes + 2)]
    source = open_source(args.input)

    from ..session import run_broadcast

    result = run_broadcast(
        source, receivers,
        backend="procs",
        config=config,
        trace=args.trace,
        timeout=args.run_timeout,
        crashes=parse_chaos(args.chaos, head="n1"),
        window=args.window,
        spawn_retries=args.spawn_retries,
        startup_timeout=args.startup_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        output_template=args.output,
        stderr_dir=args.stderr_dir,
        coordinator_replicas=args.coordinator_replicas,
        allow_head_chaos=args.allow_head_chaos,
    )
    delivered = [n for n in result.completed_nodes if n != "n1"]
    print(f"{result.total_bytes} bytes to {len(delivered)} node(s) "
          f"in {result.duration:.2f}s "
          f"({result.throughput / 1e6:.1f} MB/s)")
    if result.launch is not None:
        print(f"launch: {result.launch.summary()}")
        print(result.launch.compare().render())
    print(result.report.summary())
    for name, outcome in sorted(result.outcomes.items()):
        status = "ok" if outcome.ok else f"FAILED ({outcome.error})"
        digest = f", sha256={outcome.digest[:12]}…" if outcome.digest else ""
        print(f"  {name}: {outcome.bytes_received} bytes, {status}{digest}")
    if args.trace and result.trace is not None:
        print(result.trace.failure_chronology())
        print(f"trace: {result.trace.summary()} -> {args.trace}")
    return 0 if result.ok else 1


def cmd_replica(args: argparse.Namespace) -> int:
    """One control-plane quorum replica (normally spawned by deploy)."""
    from ..control.replica import main as replica_main

    argv = ["--bind", args.bind, "--port", str(args.port),
            "--name", args.name]
    return replica_main(argv)


def cmd_agent(args: argparse.Namespace) -> int:
    """One deployed node process (normally spawned by ``deploy``)."""
    try:
        host, port = args.coordinator.rsplit(":", 1)
        coordinator = (host, int(port))
    except ValueError:
        raise SystemExit(f"bad --coordinator {args.coordinator!r} "
                         f"(expected HOST:PORT)")
    if args.fleet:
        from ..daemon.agent import run_fleet_agent

        return run_fleet_agent(
            coordinator, args.name,
            bind=args.bind,
            advertise=args.advertise,
            start_timeout=args.start_timeout,
            cache_bytes=args.cache_bytes,
        )
    from ..deploy.agent import run_agent

    return run_agent(
        coordinator, args.name,
        bind=args.bind,
        advertise=args.advertise,
        start_timeout=args.start_timeout,
        die_on_start=args.die_on_start,
        stripes=args.stripes,
    )


def _parse_hostport(spec: str, what: str) -> Tuple[str, int]:
    try:
        host, port = spec.rsplit(":", 1)
        return host, int(port)
    except ValueError:
        raise SystemExit(f"bad {what} {spec!r} (expected HOST:PORT)")


def cmd_serve(args: argparse.Namespace) -> int:
    """Launch a persistent agent fleet and serve broadcast sessions."""
    from ..daemon import DaemonServer, serve_clients

    config = build_config(args)
    if args.names:
        names = [n.strip() for n in args.names.split(",") if n.strip()]
    else:
        names = [f"n{i}" for i in range(1, args.fleet + 1)]
    host, port = _parse_hostport(args.listen, "--listen")
    server = DaemonServer(
        names,
        config=config,
        cache_bytes=args.cache_bytes,
        window=args.window,
        spawn_retries=args.spawn_retries,
        startup_timeout=args.startup_timeout,
        stderr_dir=args.stderr_dir,
        coordinator_replicas=args.coordinator_replicas,
    )
    server.start()
    assert server.launch_report is not None
    print(f"fleet up: {len(server.registered)}/{len(names)} agents in "
          f"{server.launch_report.total_s:.2f}s "
          f"(cache {args.cache_bytes} bytes/agent)", flush=True)
    try:
        serve_clients(
            server, host, port,
            on_bound=lambda h, p: print(f"listening on {h}:{p}", flush=True))
    except KeyboardInterrupt:
        server.shutdown()
    print(f"served {server.sessions_completed} session(s); fleet down",
          flush=True)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one broadcast session to a running ``kascade serve``."""
    from ..daemon.client import DaemonClient

    host, port = _parse_hostport(args.server, "--server")
    client = DaemonClient(host, port)
    if args.shutdown:
        client.shutdown()
        print("server shutting down")
        return 0
    if args.ping:
        info = client.ping()
        print(f"fleet: {','.join(info['registered'])} "
              f"({info['sessions_completed']} session(s) served)")
        return 0
    if not args.input:
        raise SystemExit("submit needs -i FILE (or --ping/--shutdown)")
    late = []
    for spec in args.late_join or []:
        from ..core.units import parse_size
        try:
            node, size = spec.split(":", 1)
            late.append((node, int(parse_size(size))))
        except ValueError:
            raise SystemExit(f"bad --late-join entry: {spec!r} "
                             f"(expected NODE:BYTES)")
    receivers = ([n.strip() for n in args.receivers.split(",") if n.strip()]
                 if args.receivers else None)
    reply = client.submit(
        args.input, receivers,
        head=args.head,
        output_template=args.output,
        late_join=late,
        session=args.session,
        timeout=args.run_timeout,
    )
    if "error" in reply:
        print(f"submit FAILED: {reply['error']}", file=sys.stderr)
        return 1
    stats = reply.get("perfstats") or {}
    cached = stats.get("bytes_from_cache", 0)
    print(f"{reply['bytes']} bytes in {reply['duration']:.2f}s "
          f"({cached} from cache)")
    for name, digest in sorted((reply.get("digests") or {}).items()):
        print(f"  {name}: sha256={digest[:12]}…")
    if reply.get("failed"):
        print(f"failed: {','.join(reply['failed'])}", file=sys.stderr)
    return 0 if reply.get("ok") else 1


def _stripe_registries(addrs: Dict[str, Address], stripes: int):
    """One registry per stripe: stripe ``j`` of every node listens on
    its registry port + ``j`` (the consecutive-port convention, so one
    ``--nodes`` spec describes all k chains)."""
    return [
        Registry({name: Address(a.host, a.port + j)
                  for name, a in addrs.items()})
        for j in range(stripes)
    ]


def cmd_recv(args: argparse.Namespace) -> int:
    """One receiving node, listening on its registry address.

    With ``--stripes N`` the node runs one chain instance per stripe,
    listening on registry port + stripe index, and merges the stripes
    back into the single output in order.
    """
    names, addrs = parse_registry(args.nodes)
    if args.name not in addrs:
        raise SystemExit(f"--name {args.name!r} not present in --nodes")
    config = build_config(args)
    k = config.stripes
    chain_plan = ChainPlan.build(names[0], tuple(names[1:]),
                                 stripes=k, order="given")
    me = addrs[args.name]
    listeners = [Listener(host=me.host, port=me.port + j) for j in range(k)]
    registries = _stripe_registries(addrs, k)
    sink = open_sink(args.output, args.output_command)
    if k == 1:
        stripe_sinks = [sink]
    else:
        merger = StripeMergeSink(sink, k, config.chunk_size)
        stripe_sinks = [merger.port(j) for j in range(k)]
    tracer, finish_trace = make_tracer(args)
    if config.data_plane == "evloop":
        from ..runtime.evloop import EvReceiverNode, run_nodes
        nodes = [EvReceiverNode(args.name, chain_plan.stripe(j),
                                registries[j], listeners[j], config,
                                stripe_sinks[j], tracer=tracer)
                 for j in range(k)]
        run_nodes(nodes)
    else:
        nodes = [ReceiverNode(args.name, chain_plan.stripe(j),
                              registries[j], listeners[j], config,
                              stripe_sinks[j], tracer=tracer)
                 for j in range(k)]
        for node in nodes:
            node.start()
        for node in nodes:
            node.join()
    finish_trace()
    ok = all(node.outcome.ok for node in nodes)
    if ok:
        total = sum(node.outcome.bytes_received for node in nodes)
        print(f"{args.name}: received {total} bytes")
        return 0
    error = next((n.outcome.error for n in nodes if n.outcome.error),
                 "unknown error")
    print(f"{args.name}: FAILED: {error}", file=sys.stderr)
    return 1


def cmd_send(args: argparse.Namespace) -> int:
    """The head node: streams the input down the pipeline.

    With ``--stripes N`` the input is split into N interleaved chains
    (chunk i goes to stripe i mod N); every node's stripe ``j`` endpoint
    is its registry port + ``j``.  Striping needs random access to the
    input, so stdin cannot be striped.
    """
    names, addrs = parse_registry(args.nodes)
    if args.name != names[0]:
        raise SystemExit("the sending node must be first in --nodes")
    config = build_config(args)
    k = config.stripes
    chain_plan = ChainPlan.build(names[0], tuple(names[1:]),
                                 stripes=k, order="given")
    me = addrs[args.name]
    source = open_source(args.input)
    if k > 1 and source.kind is not SourceKind.SEEKABLE_FILE:
        raise SystemExit("--stripes needs a seekable input file; "
                         "stdin cannot be striped (give -i FILE)")
    sources = ([source] if k == 1 else
               [StripeSource(source, j, k, config.chunk_size)
                for j in range(k)])
    listeners = [Listener(host=me.host, port=me.port + j) for j in range(k)]
    registries = _stripe_registries(addrs, k)
    tracer, finish_trace = make_tracer(args)
    if config.data_plane == "evloop":
        from ..runtime.evloop import EvHeadNode, Reactor
        nodes = [EvHeadNode(args.name, chain_plan.stripe(j), registries[j],
                            listeners[j], config, sources[j], tracer=tracer)
                 for j in range(k)]
        reactor = Reactor()
        for node in nodes:
            node.attach(reactor)
            node.start()
        try:
            reactor.run(stop_when=lambda: all(n.finished for n in nodes))
        except KeyboardInterrupt:
            # ^C → QUIT path: resume the same reactor so the report
            # exchange can still complete (bounded by report_timeout).
            import time as _time
            for node in nodes:
                node.request_quit()
            reactor.run(stop_when=lambda: all(n.finished for n in nodes),
                        deadline=_time.monotonic() + config.report_timeout * 2)
    else:
        nodes = [HeadNode(args.name, chain_plan.stripe(j), registries[j],
                          listeners[j], config, sources[j], tracer=tracer)
                 for j in range(k)]
        for node in nodes:
            node.start()
        try:
            for node in nodes:
                node.join()
        except KeyboardInterrupt:
            for node in nodes:
                node.request_quit()
            for node in nodes:
                node.join()
    finish_trace()
    if k == 1:
        report = nodes[0].final_report
    else:
        # Pool the per-stripe ring-closure reports for the summary.
        report = TransferReport()
        for node in nodes:
            if node.final_report is not None:
                report.extend(node.final_report.failures)
    if report is not None:
        print(report.summary())
    return 0 if all(node.outcome.ok for node in nodes) else 1


def main(argv: List[str] | None = None) -> int:
    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="kascade",
        description="Scalable and reliable pipelined data broadcast "
                    "(reproduction of Martin et al., IPDPS workshops 2014)",
    )
    parser.add_argument("--version", action="version",
                        version=f"kascade {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a full pipeline locally (threads)")
    demo.add_argument("-n", "--nodes", type=int, default=3,
                      help="number of receiving nodes")
    demo.add_argument("-i", "--input", required=True,
                      help="input file, or '-' for stdin")
    demo.add_argument("-o", "--output", default=None,
                      help="output path; '{node}' expands to the node name")
    demo.add_argument("-O", "--output-command", default=None,
                      help="pipe output into this shell command")
    demo.add_argument("--run-timeout", type=float, default=3600.0)
    add_common(demo)
    demo.set_defaults(fn=cmd_demo)

    deploy = sub.add_parser(
        "deploy",
        help="run a pipeline as one OS process per node (windowed launch)")
    deploy.add_argument("-n", "--nodes", type=int, default=3,
                        help="number of receiving nodes")
    deploy.add_argument("-i", "--input", required=True,
                        help="input file, or '-' for stdin (spooled)")
    deploy.add_argument("-o", "--output", default=None,
                        help="per-node output path; '{node}' expands to "
                             "the node name (default: discard, digest only)")
    deploy.add_argument("--window", type=int, default=8,
                        help="max agent launches in flight (§III-B)")
    deploy.add_argument("--spawn-retries", type=int, default=1,
                        help="extra spawn attempts per node")
    deploy.add_argument("--startup-timeout", type=float, default=15.0,
                        help="seconds one spawn may take to register")
    deploy.add_argument("--chaos", action="append", default=None,
                        metavar="NODE:BYTES[:SIG]",
                        help="send a real signal (kill|stop, default kill) "
                             "to NODE once it received BYTES; repeatable")
    deploy.add_argument("--stderr-dir", default=None,
                        help="capture each agent's stderr under this dir")
    deploy.add_argument("--run-timeout", type=float, default=3600.0)
    deploy.add_argument("--heartbeat-timeout", type=float, default=None,
                        help="seconds of control-plane silence before the "
                             "coordinator declares an agent dead (default "
                             "2.0; raise on oversubscribed hosts where "
                             "many agents share few cores)")
    deploy.add_argument("--coordinator-replicas", type=int, default=0,
                        metavar="N",
                        help="replicate coordinator state (registrations, "
                             "plan, watermarks) across N quorum replicas; "
                             "a minority of them can die mid-transfer "
                             "without interrupting it (3 recommended)")
    deploy.add_argument("--allow-head-chaos", action="store_true",
                        help="permit --chaos to target the head: on head "
                             "death the quorum elects the most-complete "
                             "receiver and re-roots the chain onto it "
                             "(needs --coordinator-replicas >= 1)")
    add_common(deploy)
    deploy.set_defaults(fn=cmd_deploy)

    replica = sub.add_parser(
        "replica",
        help="run one control-plane quorum replica (spawned by deploy)")
    replica.add_argument("--bind", default="127.0.0.1",
                         help="address to listen on")
    replica.add_argument("--port", type=int, default=0,
                         help="port to listen on (default: ephemeral, "
                              "announced on stdout)")
    replica.add_argument("--name", default="replica")
    replica.set_defaults(fn=cmd_replica)

    agent = sub.add_parser(
        "agent", help="run one deployed node process (spawned by deploy)")
    agent.add_argument("--coordinator", required=True, metavar="HOST:PORT",
                       help="control socket of the deploy coordinator")
    agent.add_argument("--name", required=True)
    agent.add_argument("--bind", default="127.0.0.1",
                       help="address to bind the data-plane port on")
    agent.add_argument("--advertise", default=None,
                       help="host peers should dial (default: bind address)")
    agent.add_argument("--start-timeout", type=float, default=60.0,
                       help="seconds to wait for the coordinator's start")
    agent.add_argument("--stripes", type=int, default=1, metavar="N",
                       help="data-plane listeners to bind (one per stripe; "
                            "set by deploy to match its --stripes)")
    agent.add_argument("--die-on-start", action="store_true",
                       help=argparse.SUPPRESS)  # test hook: exit before registering
    agent.add_argument("--fleet", action="store_true",
                       help="run as a persistent fleet agent (spawned by "
                            "serve): many sessions, one process")
    agent.add_argument("--cache-bytes", type=int, default=0,
                       help="fleet mode: byte budget for the cross-session "
                            "chunk cache (0 = no cache)")
    agent.set_defaults(fn=cmd_agent)

    serve = sub.add_parser(
        "serve",
        help="launch a persistent agent fleet and serve broadcast sessions")
    serve.add_argument("-n", "--fleet", type=int, default=4,
                       help="fleet size (names n1..nN) when --names is "
                            "not given")
    serve.add_argument("--names", default=None,
                       help="explicit fleet names, comma separated "
                            "(overrides -n)")
    serve.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="submit socket to listen on (port 0 = pick one, "
                            "printed at startup)")
    serve.add_argument("--cache-bytes", type=int,
                       default=DEFAULT_CONFIG.cache_bytes,
                       help="per-agent chunk-cache budget in bytes "
                            "(0 disables re-broadcast short-circuiting)")
    serve.add_argument("--window", type=int, default=8,
                       help="max agent launches in flight (§III-B)")
    serve.add_argument("--spawn-retries", type=int, default=1,
                       help="extra spawn attempts per fleet agent")
    serve.add_argument("--startup-timeout", type=float, default=15.0,
                       help="seconds one spawn may take to register")
    serve.add_argument("--stderr-dir", default=None,
                       help="capture each agent's stderr under this dir")
    serve.add_argument("--coordinator-replicas", type=int, default=0,
                       metavar="N",
                       help="replicate fleet/session state over N control-"
                            "plane replicas (kascade replica processes); "
                            "open sessions ride out a minority of replica "
                            "deaths (0 = no replication)")
    add_common(serve)
    serve.set_defaults(fn=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one broadcast session to a running serve")
    submit.add_argument("--server", required=True, metavar="HOST:PORT",
                        help="submit socket of the kascade serve")
    submit.add_argument("-i", "--input", default=None,
                        help="file to broadcast (must be readable by the "
                             "server process)")
    submit.add_argument("-o", "--output", default=None,
                        help="per-node output path; '{node}' expands to "
                             "the node name (default: discard, digest only)")
    submit.add_argument("--head", default=None,
                        help="sending fleet member (default: first in fleet)")
    submit.add_argument("--receivers", default=None,
                        help="receiving fleet members, comma separated "
                             "(default: whole fleet minus the head)")
    submit.add_argument("--late-join", action="append", default=None,
                        metavar="NODE:BYTES",
                        help="register NODE into the session once the push "
                             "moved BYTES; it pulls the missing prefix from "
                             "cache-warm peers; repeatable")
    submit.add_argument("--session", default=None,
                        help="session name (default: server-assigned)")
    submit.add_argument("--run-timeout", type=float, default=600.0)
    submit.add_argument("--ping", action="store_true",
                        help="just check the server is alive")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the server to drain and exit")
    submit.set_defaults(fn=cmd_submit)

    recv = sub.add_parser("recv", help="run one receiving node")
    recv.add_argument("--name", required=True)
    recv.add_argument("--nodes", required=True,
                      help="registry: name=host:port,... (head first)")
    recv.add_argument("-o", "--output", default=None)
    recv.add_argument("-O", "--output-command", default=None)
    add_common(recv)
    recv.set_defaults(fn=cmd_recv)

    send = sub.add_parser("send", help="run the sending (head) node")
    send.add_argument("--name", required=True)
    send.add_argument("--nodes", required=True,
                      help="registry: name=host:port,... (head first)")
    send.add_argument("-i", "--input", default="-",
                      help="input file, or '-' for stdin (default)")
    add_common(send)
    send.set_defaults(fn=cmd_send)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
