"""``kascade-sim`` — regenerate the paper's evaluation figures.

Examples::

    kascade-sim list                 # what can be regenerated
    kascade-sim run fig07 --quick    # Fig. 7 with the reduced grid
    kascade-sim run fig15 --reps 50  # Fig. 15 with the paper's 50 reps
    kascade-sim map                  # Fig. 12's topology + link usage
    kascade-sim all --quick          # everything, quick grids
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

import os

from ..bench import FIGURES, ascii_plot, fig12_site_map, to_csv, to_json

_METHODS = None


def _method_registry():
    """Name -> factory for every simulated method (built lazily)."""
    global _METHODS
    if _METHODS is None:
        from ..baselines import (
            BitTorrentSwarm, DollyChain, KascadeSim, MpiEthernet,
            MpiInfiniband, TakTukChain, TakTukTree, UdpcastSim,
            UdpcastUnidirectional,
        )
        _METHODS = {
            m.name: m for m in (
                KascadeSim, TakTukChain, TakTukTree, UdpcastSim,
                UdpcastUnidirectional, MpiEthernet, MpiInfiniband,
                DollyChain, BitTorrentSwarm,
            )
        }
    return _METHODS

_DESCRIPTIONS = {
    "fig07": "raw performance & scalability, 1 GbE, 2 GB file, <=200 clients",
    "fig07_10x": "extension beyond the paper: the fig07 sweep at 10x scale "
                 "(<=2000 clients, ~3 min)",
    "fig08": "10 GbE cluster, 14 nodes, 5 GB file",
    "fig09": "IP over InfiniBand (20 Gb), two switches, 5 GB file",
    "fig10": "randomized node ordering vs Kascade/ordered reference",
    "fig11": "2 GB file written to 83.5 MB/s disks, <=30 clients",
    "fig13": "multi-site routed transfer across Grid'5000 sites",
    "fig14": "small file (50 MB): startup time dominates",
    "fig15": "fault tolerance under Distem failure injection",
}


def cmd_list(_args: argparse.Namespace) -> int:
    print("Reproducible figures (paper: Martin et al., HPDIC/IPDPS 2014):")
    for key in sorted(FIGURES):
        print(f"  {key}: {_DESCRIPTIONS[key]}")
    print("  fig12 ('map'): multi-site topology used by fig13")
    return 0


def cmd_map(_args: argparse.Namespace) -> int:
    print(fig12_site_map())
    return 0


def _run_one(key: str, quick: bool, reps: int | None,
             plot: bool = False, csv_dir: str | None = None,
             json_dir: str | None = None,
             cache_dir: str | None = None) -> None:
    store = None
    if cache_dir is not None:
        from ..bench.store import FigureStore
        store = FigureStore(cache_dir)
        cached = store.load(key)
        if cached is not None:
            print(cached.format_table())
            if plot:
                print()
                print(ascii_plot(cached))
            print(f"  [loaded from cache {store._path(key)}]")
            print()
            return
    fn = FIGURES[key]
    kwargs = {"quick": quick}
    if reps is not None:
        kwargs["repetitions"] = reps
    started = time.monotonic()
    result = fn(**kwargs)
    elapsed = time.monotonic() - started
    if store is not None:
        store.save(key, result)
    print(result.format_table())
    if plot:
        print()
        print(ascii_plot(result))
    for directory, serialize, ext in (
        (csv_dir, to_csv, "csv"), (json_dir, to_json, "json"),
    ):
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, f"{key}.{ext}")
            with open(path, "w") as f:
                f.write(serialize(result))
            print(f"  [written to {path}]")
    print(f"  [regenerated in {elapsed:.1f}s]")
    print()


def cmd_run(args: argparse.Namespace) -> int:
    for key in args.figures:
        if key not in FIGURES:
            raise SystemExit(
                f"unknown figure {key!r}; try: {', '.join(sorted(FIGURES))}"
            )
    for key in args.figures:
        _run_one(key, args.quick, args.reps,
                 plot=args.plot, csv_dir=args.csv, json_dir=args.json,
                 cache_dir=args.cache)
    return 0


# Beyond-the-paper extensions: runnable by name, but `all` regenerates
# the paper's evaluation only.
_EXTENSIONS = {"fig07_10x"}


def cmd_all(args: argparse.Namespace) -> int:
    print(fig12_site_map())
    print()
    for key in sorted(set(FIGURES) - _EXTENSIONS):
        _run_one(key, args.quick, args.reps,
                 plot=args.plot, csv_dir=args.csv, json_dir=args.json,
                 cache_dir=args.cache)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run a custom what-if scenario across methods."""
    import numpy as np

    from ..baselines import SimSetup
    from ..core.pipeline import order_by_hostname, order_randomly
    from ..core.units import mbps, parse_size
    from ..topology import build_fat_tree, build_single_switch, build_two_switch
    from ..topology.graph import DiskSpec

    registry = _method_registry()
    wanted = (
        list(registry) if args.methods == "all"
        else [m.strip() for m in args.methods.split(",")]
    )
    unknown = [m for m in wanted if m not in registry]
    if unknown:
        raise SystemExit(
            f"unknown method(s) {unknown}; available: {', '.join(registry)}"
        )

    size = parse_size(args.size)
    n = args.clients
    disk = DiskSpec(write_bw=args.disk_mbs * 1e6) if args.sink == "disk" else None

    def build_net():
        if args.topology_file is not None:
            from ..topology.serialize import load_network
            net = load_network(args.topology_file)
            if len(net.hosts) < n + 1:
                raise SystemExit(
                    f"topology file has {len(net.hosts)} hosts; "
                    f"--clients {n} needs {n + 1}"
                )
            return net
        if args.topology == "fattree":
            return build_fat_tree(n + 1, disk=disk)
        if args.topology == "10gbe":
            return build_single_switch(n + 1, disk=disk)
        if args.topology == "infiniband":
            return build_two_switch(n + 1)
        raise SystemExit(f"unknown topology {args.topology!r}")

    print(f"{args.clients} clients, {args.size}, {args.topology}, "
          f"sink={args.sink}, order={args.order}\n")
    print(f"{'method':14s} {'startup':>9s} {'transfer':>9s} "
          f"{'total':>8s} {'throughput':>12s} {'completed':>10s}")
    for name in wanted:
        net = build_net()
        hosts = order_by_hostname(net.host_names())
        receivers = hosts[1: n + 1]
        if args.order == "random":
            receivers = order_randomly(
                receivers, np.random.default_rng(args.seed))
        setup = SimSetup(
            network=net, head=hosts[0], receivers=tuple(receivers),
            size=size, sink=args.sink,
            include_startup=not args.no_startup,
            rng=np.random.default_rng(args.seed),
        )
        result = registry[name]().run(setup, trace=args.explain)
        print(f"{result.method:14s} {result.startup_time:8.2f}s "
              f"{result.data_time:8.2f}s {result.total_time:7.2f}s "
              f"{mbps(result.throughput):9.1f} MB/s "
              f"{len(result.completed):>6d}/{n}")
        if args.explain and result.trace is not None:
            print()
            print(result.trace.bottleneck_report())
            if n <= 20:
                print(result.trace.gantt())
            print()
    return 0


def _parse_kill_spec(spec: str, size: int):
    """Parse ``node@when[:mode]``: when is bytes (``1MB``), a percent of
    the payload (``50%``), or a time (``2.5s``)."""
    from ..core.units import parse_size
    from ..protosim import ProtoCrash

    mode = "close"
    if ":" in spec:
        spec, mode = spec.rsplit(":", 1)
    try:
        node, when = spec.split("@", 1)
    except ValueError:
        raise SystemExit(f"bad --kill spec {spec!r} "
                         f"(expected node@when[:mode])")
    if when.endswith("%"):
        frac = float(when[:-1]) / 100.0
        return ProtoCrash(node, after_bytes=max(1, int(size * frac)),
                          mode=mode)
    if when.endswith("s"):
        return ProtoCrash(node, at_time=float(when[:-1]), mode=mode)
    return ProtoCrash(node, after_bytes=parse_size(when), mode=mode)


def cmd_proto(args: argparse.Namespace) -> int:
    """Run one protocol-exact scenario, optionally with a sequence chart."""
    from ..core import KascadeConfig, PatternSource
    from ..core.units import parse_size
    from ..protosim import ProtoBroadcast, render_msc

    size = parse_size(args.size)
    config = KascadeConfig(
        chunk_size=parse_size(args.chunk_size),
        buffer_chunks=args.buffer_chunks,
        io_timeout=args.timeout,
        ping_timeout=args.timeout / 2,
        connect_timeout=max(1.0, args.timeout),
        report_timeout=30.0,
        verify_digest=True,
    )
    receivers = [f"n{i}" for i in range(2, args.nodes + 2)]
    crashes = [_parse_kill_spec(s, size) for s in args.kill]
    bc = ProtoBroadcast(PatternSource(size, seed=args.seed), receivers,
                        config=config, crashes=crashes)
    if args.trace:
        from ..core.tracing import TraceCollector
        tracer = TraceCollector(zero=0.0)
        result = bc.run(trace=args.msc, tracer=tracer)
    else:
        result = bc.run(trace=args.msc)

    print(f"simulated {size} bytes to {len(receivers)} node(s) "
          f"in {result.sim_time:.3f}s (simulated)")
    print(result.report.summary())
    for name in ("n1", *receivers):
        status = "ok" if result.node_ok[name] else (
            result.node_errors[name] or "incomplete")
        print(f"  {name}: {result.node_bytes[name]} bytes, {status}")
    if result.trace is not None:
        result.trace.to_jsonl(args.trace)
        print(result.trace.failure_chronology())
        print(f"trace: {result.trace.summary()} -> {args.trace}")
    if args.msc:
        print()
        print(render_msc(result.message_log, ["n1", *receivers]))
    return 0 if result.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    from ..protosim.fuzz import run_campaign

    def progress(done, total, problem):
        if problem is not None:
            print(f"  [{done}/{total}] FAILURE: {problem}")
        elif done % 10 == 0 or done == total:
            print(f"  [{done}/{total}] ok so far")

    report = run_campaign(args.runs, base_seed=args.seed,
                          progress=progress)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_diff(args: argparse.Namespace) -> int:
    from ..bench.compare import diff_stores

    report = diff_stores(args.old_dir, args.new_dir)
    print(report.format(all_points=args.all))
    return 0 if report.clean else 1


def main(argv: List[str] | None = None) -> int:
    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="kascade-sim",
        description="Regenerate the Kascade paper's evaluation figures "
                    "on the network simulator",
    )
    parser.add_argument("--version", action="version",
                        version=f"kascade-sim {__version__}")
    # Shared by every subcommand so users can profile their own scenarios
    # with the same cProfile view the bench harness prints.
    profiled = argparse.ArgumentParser(add_help=False)
    profiled.add_argument("--profile", nargs="?", const="", default=None,
                          metavar="PATH",
                          help="cProfile this command: print the top-25 "
                               "entries, and dump raw stats to PATH for "
                               "python -m pstats / snakeviz")
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", parents=[profiled],
                         help="list reproducible figures")
    lst.set_defaults(fn=cmd_list)

    mp = sub.add_parser("map", parents=[profiled],
                        help="print the Fig. 12 multi-site topology")
    mp.set_defaults(fn=cmd_map)

    run = sub.add_parser("run", parents=[profiled],
                         help="regenerate one or more figures")
    run.add_argument("figures", nargs="+", metavar="FIG",
                     help="figure keys, e.g. fig07 fig15")
    run.add_argument("--quick", action="store_true",
                     help="reduced grid and repetitions")
    run.add_argument("--reps", type=int, default=None,
                     help="override the repetition count")
    run.add_argument("--plot", action="store_true",
                     help="render a terminal chart of each figure")
    run.add_argument("--csv", metavar="DIR", default=None,
                     help="also write <figure>.csv into DIR")
    run.add_argument("--json", metavar="DIR", default=None,
                     help="also write <figure>.json into DIR")
    run.add_argument("--cache", metavar="DIR", default=None,
                     help="resume support: skip figures already in DIR, "
                          "persist new ones there")
    run.set_defaults(fn=cmd_run)

    al = sub.add_parser("all", parents=[profiled],
                        help="regenerate every figure")
    al.add_argument("--quick", action="store_true")
    al.add_argument("--reps", type=int, default=None)
    al.add_argument("--plot", action="store_true")
    al.add_argument("--csv", metavar="DIR", default=None)
    al.add_argument("--json", metavar="DIR", default=None)
    al.add_argument("--cache", metavar="DIR", default=None,
                    help="resume support: skip cached figures")
    al.set_defaults(fn=cmd_all)

    cmp_ = sub.add_parser(
        "compare", parents=[profiled],
        help="what-if scenario: compare methods on a custom platform",
    )
    cmp_.add_argument("--clients", type=int, default=50)
    cmp_.add_argument("--size", default="2GB",
                      help="payload size, e.g. 2GB, 50MB (default 2GB)")
    cmp_.add_argument("--topology", default="fattree",
                      choices=["fattree", "10gbe", "infiniband"])
    cmp_.add_argument("--topology-file", default=None, metavar="JSON",
                      help="model your own cluster: a topology JSON file "
                           "(see repro.topology.serialize); overrides "
                           "--topology")
    cmp_.add_argument("--sink", default="null", choices=["null", "disk"])
    cmp_.add_argument("--disk-mbs", type=float, default=83.5,
                      help="raw disk write bandwidth for --sink disk")
    cmp_.add_argument("--order", default="sorted",
                      choices=["sorted", "random"])
    cmp_.add_argument("--methods", default="all",
                      help="comma-separated method names, or 'all'")
    cmp_.add_argument("--no-startup", action="store_true",
                      help="exclude launcher startup time")
    cmp_.add_argument("--seed", type=int, default=1)
    cmp_.add_argument("--explain", action="store_true",
                      help="print bottleneck attribution (and a stream "
                           "gantt for small runs)")
    cmp_.set_defaults(fn=cmd_compare)

    proto = sub.add_parser(
        "proto", parents=[profiled],
        help="run a protocol-exact scenario (deterministic, byte-exact)",
    )
    proto.add_argument("--nodes", type=int, default=3,
                       help="number of receivers")
    proto.add_argument("--size", default="4MB")
    proto.add_argument("--chunk-size", default="256KB")
    proto.add_argument("--buffer-chunks", type=int, default=8)
    proto.add_argument("--timeout", type=float, default=0.5,
                       help="failure-detection io timeout (simulated s)")
    proto.add_argument("--kill", action="append", default=[],
                       metavar="NODE@WHEN[:MODE]",
                       help="kill a node, e.g. n3@50%%, n2@1MB:silent, "
                            "n4@2.5s (repeatable)")
    proto.add_argument("--msc", action="store_true",
                       help="print the message sequence chart of the run")
    proto.add_argument("--trace", default=None, metavar="PATH",
                       help="write the structured event timeline (JSONL, "
                            "same schema as `kascade --trace`) to PATH")
    proto.add_argument("--seed", type=int, default=1)
    proto.set_defaults(fn=cmd_proto)

    diff = sub.add_parser(
        "diff", parents=[profiled],
        help="compare two cached result sets (model regression check)",
    )
    diff.add_argument("old_dir", help="baseline cache directory")
    diff.add_argument("new_dir", help="candidate cache directory")
    diff.add_argument("--all", action="store_true",
                      help="show every point, not just significant moves")
    diff.set_defaults(fn=cmd_diff)

    fuzz = sub.add_parser(
        "fuzz", parents=[profiled],
        help="soak-test the protocol: randomized crash schedules, "
             "byte-exact invariants",
    )
    fuzz.add_argument("--runs", type=int, default=50)
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed (failures print their exact seed)")
    fuzz.set_defaults(fn=cmd_fuzz)

    args = parser.parse_args(argv)
    profile_to = getattr(args, "profile", None)
    if profile_to is None:
        return args.fn(args)

    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        rc = args.fn(args)
    finally:
        prof.disable()
        print("--- cProfile top 25 (cumulative) ---", file=sys.stderr)
        stats = pstats.Stats(prof, stream=sys.stderr)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
        if profile_to:
            prof.dump_stats(profile_to)
            print(f"profile stats dumped to {profile_to} "
                  f"(inspect with python -m pstats)", file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
