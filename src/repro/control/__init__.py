"""Replicated control plane: quorum-committed coordinator state.

The broadcast data plane (chains, stripes, ring reports) survives the
death of any *receiver*; until now the coordinator and the head were
single points of failure.  This package removes the first and tames the
second:

* :mod:`repro.control.paxos` — a pure, sans-I/O single-decree consensus
  core (one Paxos instance per log slot) that is trivial to drive
  deterministically in tests: dueling proposers, dropped messages,
  partitioned acceptors.
* :mod:`repro.control.state` — the replicated state machine: node
  registrations, the active :class:`~repro.core.plan.ChainPlan`,
  per-node progress watermarks, and head elections.
* :mod:`repro.control.replica` — an acceptor/learner replica served
  over the deployment layer's newline-JSON control framing, runnable
  in-thread (tests) or as a ``kascade replica`` subprocess.
* :mod:`repro.control.client` — the coordinator-side quorum client: a
  proposer with persistent channels to every replica that commits
  commands by majority and keeps working while a minority is down.
"""

from .paxos import Acceptor, Ballot, Learner, Proposal  # noqa: F401
from .state import ControlState  # noqa: F401
from .replica import ReplicaServer  # noqa: F401
from .client import QuorumClient, QuorumError  # noqa: F401

__all__ = [
    "Acceptor", "Ballot", "Learner", "Proposal",
    "ControlState", "ReplicaServer", "QuorumClient", "QuorumError",
]
