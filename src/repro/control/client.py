"""The coordinator-side quorum client: a Paxos proposer over TCP.

One :class:`QuorumClient` owns a persistent control channel to every
replica and commits commands by running single-decree Paxos per log
slot: prepare to all, wait for a majority of promises, accept the
constrained value, then broadcast learn.  A minority of dead or
unreachable replicas slows nothing down beyond the per-RPC timeout —
every phase proceeds as soon as a majority has answered.

Two proposers may race (a restarted coordinator, a partitioned twin).
Safety comes from the Paxos core: the racer that loses phase 1 sees a
nack with the winner's ballot, raises its round past it, and retries —
and if its slot turns out to have decided *someone else's* command, it
commits that decision forward (broadcasting learn) and retries its own
command at the next slot.  Commands therefore commit exactly once, in
one total order, no matter how many proposers are alive.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import KascadeError
from ..deploy.protocol import ControlChannel, connect_control
from .paxos import Proposal
from .state import ControlState

__all__ = ["QuorumClient", "QuorumError"]


class QuorumError(KascadeError):
    """A majority of control-plane replicas is unreachable."""


def _same_command(a: dict, b: dict) -> bool:
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class QuorumClient:
    """Commit commands to, and read state from, the replica quorum."""

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        *,
        proposer_id: int = 0,
        timeout: float = 5.0,
        max_rounds: int = 64,
    ) -> None:
        if not addresses:
            raise ValueError("quorum needs at least one replica address")
        self.addresses = list(addresses)
        self.proposer_id = proposer_id
        self.timeout = timeout
        self.max_rounds = max_rounds
        self.quorum = len(self.addresses) // 2 + 1
        self._chans: List[Optional[ControlChannel]] = [None] * len(addresses)
        self._chan_locks = [threading.Lock() for _ in addresses]
        self._commit_lock = threading.Lock()
        self._round = 0
        self._next_slot = 0

    # -- channel plumbing ------------------------------------------------

    def _rpc(self, i: int, msg: dict) -> Optional[dict]:
        """One request/response against replica ``i``; None if it's dead.

        The channel is persistent; a send/recv failure tears it down and
        retries once over a fresh connection (covers replica restarts
        and half-open sockets), then gives up until the next RPC.
        """
        with self._chan_locks[i]:
            for attempt in (0, 1):
                chan = self._chans[i]
                if chan is None:
                    try:
                        host, port = self.addresses[i]
                        chan = connect_control(host, port, self.timeout)
                        self._chans[i] = chan
                    except KascadeError:
                        return None
                try:
                    if chan.send(msg):
                        reply = chan.recv(self.timeout)
                        if reply is not None:
                            return reply
                except (TimeoutError, KascadeError):
                    # A timed-out exchange desyncs request/response
                    # pairing on the stream: drop the channel entirely.
                    pass
                chan.close()
                self._chans[i] = None
            return None

    def _broadcast(self, msg: dict) -> Dict[int, dict]:
        """Send ``msg`` to every replica in parallel; map of replies."""
        replies: Dict[int, dict] = {}
        lock = threading.Lock()

        def ask(i: int) -> None:
            reply = self._rpc(i, msg)
            if reply is not None:
                with lock:
                    replies[i] = reply

        threads = [threading.Thread(target=ask, args=(i,), daemon=True)
                   for i in range(len(self.addresses))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return replies

    # -- the proposer ----------------------------------------------------

    def commit(self, command: dict) -> int:
        """Quorum-commit ``command``; returns the log slot it decided.

        Serialised per client: commands from one coordinator commit in
        call order.  Raises :class:`QuorumError` when a majority cannot
        be reached (or dueling proposers starve us past ``max_rounds`` —
        vanishingly unlikely with unique proposer ids).
        """
        with self._commit_lock:
            for _ in range(self.max_rounds):
                slot = self._next_slot
                self._round += 1
                ballot = (self._round, self.proposer_id)
                prop = Proposal(slot, ballot, command, len(self.addresses))

                promises = self._broadcast({
                    "op": "prepare", "slot": slot, "ballot": list(ballot),
                })
                for i, reply in promises.items():
                    if reply.get("op") != "promise":
                        continue
                    prop.on_promise(i, _promise_from_wire(reply))
                if not prop.promised:
                    self._note_contention(prop)
                    if len(promises) < self.quorum:
                        raise QuorumError(
                            f"control quorum lost: {len(promises)} of "
                            f"{len(self.addresses)} replicas answered, "
                            f"need {self.quorum}"
                        )
                    continue  # outvoted, not outnumbered: retry higher

                value = prop.value_to_accept()
                accepts = self._broadcast({
                    "op": "accept", "slot": slot, "ballot": list(ballot),
                    "value": value,
                })
                for i, reply in accepts.items():
                    if reply.get("op") != "accepted":
                        continue
                    prop.on_accepted(i, _accepted_from_wire(reply))
                if not prop.decided:
                    self._note_contention(prop)
                    if len(accepts) < self.quorum:
                        raise QuorumError(
                            f"control quorum lost: {len(accepts)} of "
                            f"{len(self.addresses)} replicas answered, "
                            f"need {self.quorum}"
                        )
                    continue

                # Decided: tell everyone (idempotent, best-effort — any
                # replica that misses it catches up on the next learn).
                self._broadcast({"op": "learn", "slot": slot, "value": value})
                self._next_slot = slot + 1
                if _same_command(value, command):
                    return slot
                # This slot had already decided someone else's command;
                # ours still needs a slot of its own.
            raise QuorumError(
                f"could not commit after {self.max_rounds} rounds "
                f"(dueling proposers?)"
            )

    def _note_contention(self, prop: Proposal) -> None:
        if prop.highest_seen is not None:
            self._round = max(self._round, prop.highest_seen[0])

    # -- reads -----------------------------------------------------------

    def read_state(self) -> ControlState:
        """Reconstruct coordinator state from a majority of replicas.

        Requires a majority so a stale minority partition can never
        answer alone; returns the most-advanced snapshot among them.
        """
        replies = self._broadcast({"op": "read"})
        states = [r for r in replies.values() if r.get("op") == "state"]
        if len(states) < self.quorum:
            raise QuorumError(
                f"control quorum lost: {len(states)} of "
                f"{len(self.addresses)} replicas answered a read, "
                f"need {self.quorum}"
            )
        best = max(states, key=lambda r: r.get("applied", 0))
        state = ControlState.from_snapshot(best["state"])
        # Fold in decided-but-unapplied slots sitting above a gap: the
        # commit path always learns to all, so normally this is empty.
        self._next_slot = max(self._next_slot, int(best.get("applied", 0)))
        return state

    def alive(self) -> int:
        """How many replicas currently answer a ping."""
        replies = self._broadcast({"op": "ping"})
        return sum(1 for r in replies.values() if r.get("op") == "pong")

    # -- lifecycle -------------------------------------------------------

    def shutdown_replicas(self) -> None:
        """Ask every reachable replica to exit (test/teardown helper)."""
        self._broadcast({"op": "quit"})

    def close(self) -> None:
        for i, chan in enumerate(self._chans):
            if chan is not None:
                chan.close()
                self._chans[i] = None


def _promise_from_wire(reply: dict):
    from .paxos import Promise

    return Promise(
        slot=int(reply["slot"]), ok=bool(reply["ok"]),
        promised=(tuple(reply["promised"])
                  if reply.get("promised") else None),
        accepted_ballot=(tuple(reply["accepted_ballot"])
                         if reply.get("accepted_ballot") else None),
        accepted_value=reply.get("accepted_value"),
    )


def _accepted_from_wire(reply: dict):
    from .paxos import Accepted

    return Accepted(
        slot=int(reply["slot"]), ok=bool(reply["ok"]),
        promised=(tuple(reply["promised"])
                  if reply.get("promised") else None),
    )
