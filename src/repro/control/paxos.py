"""Single-decree Paxos, one instance per log slot — pure and sans-I/O.

The control plane replicates a short command log (registrations, the
plan, watermarks, elections).  Each slot of that log is decided by one
classic single-decree Paxos instance:

* a *proposer* picks a ballot ``(round, proposer_id)`` and runs
  phase 1 (``prepare`` → ``promise``) against the acceptors; a majority
  of promises licenses phase 2 (``accept`` → ``accepted``) — but the
  value it may propose is constrained to the highest-ballot value any
  promiser has already accepted, which is the invariant that makes a
  decided slot immutable even under dueling proposers;
* an *acceptor* is the durable memory: it never promises backwards and
  never accepts below its promise;
* a *learner* collects decided values and applies them to the state
  machine in slot order.

Everything here is plain data in, plain data out — no sockets, no
threads, no clocks.  :mod:`repro.control.replica` wraps an acceptor in
the control-channel framing; :mod:`repro.control.client` drives the
proposer over real connections; the tests drive both through lossy,
reordered in-memory networks where every interleaving is reproducible.

Ballots are ``(round, proposer_id)`` tuples compared lexicographically,
so two proposers can never tie: rounds break most conflicts and the
unique proposer id breaks the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Ballot", "Promise", "Accepted", "Acceptor", "Proposal", "Learner"]

#: A ballot number: ``(round, proposer_id)``, ordered lexicographically.
Ballot = Tuple[int, int]


def ballot_key(b: Optional[Ballot]) -> Tuple[int, int]:
    """Total order over optional ballots (``None`` sorts first)."""
    return (-1, -1) if b is None else (b[0], b[1])


@dataclass(frozen=True)
class Promise:
    """An acceptor's answer to ``prepare``."""

    slot: int
    ok: bool
    #: The acceptor's current promise (its floor) — on a nack, the ballot
    #: the proposer must exceed to get anywhere.
    promised: Optional[Ballot]
    #: The highest-ballot value this acceptor has accepted for the slot,
    #: if any.  A successful proposer MUST adopt the highest of these.
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Optional[dict] = None


@dataclass(frozen=True)
class Accepted:
    """An acceptor's answer to ``accept``."""

    slot: int
    ok: bool
    promised: Optional[Ballot]


@dataclass
class _SlotMemory:
    promised: Optional[Ballot] = None
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Optional[dict] = None


class Acceptor:
    """The quorum's memory: one promise/accepted record per slot.

    Deliberately tiny — two rules carry all of Paxos's safety:

    1. ``prepare(b)`` succeeds iff ``b`` ≥ every ballot this acceptor has
       promised for the slot; success raises the promise to ``b``.
    2. ``accept(b, v)`` succeeds iff ``b`` ≥ the promise; success records
       ``(b, v)`` as the accepted pair (and raises the promise).
    """

    def __init__(self) -> None:
        self._slots: Dict[int, _SlotMemory] = {}

    def _slot(self, slot: int) -> _SlotMemory:
        mem = self._slots.get(slot)
        if mem is None:
            mem = self._slots[slot] = _SlotMemory()
        return mem

    def on_prepare(self, slot: int, ballot: Ballot) -> Promise:
        mem = self._slot(slot)
        if mem.promised is not None and ballot_key(ballot) < ballot_key(mem.promised):
            return Promise(slot=slot, ok=False, promised=mem.promised)
        mem.promised = ballot
        return Promise(
            slot=slot, ok=True, promised=ballot,
            accepted_ballot=mem.accepted_ballot,
            accepted_value=mem.accepted_value,
        )

    def on_accept(self, slot: int, ballot: Ballot, value: dict) -> Accepted:
        mem = self._slot(slot)
        if mem.promised is not None and ballot_key(ballot) < ballot_key(mem.promised):
            return Accepted(slot=slot, ok=False, promised=mem.promised)
        mem.promised = ballot
        mem.accepted_ballot = ballot
        mem.accepted_value = value
        return Accepted(slot=slot, ok=True, promised=ballot)

    def accepted(self, slot: int) -> Optional[Tuple[Ballot, dict]]:
        """The (ballot, value) this acceptor currently holds, if any."""
        mem = self._slots.get(slot)
        if mem is None or mem.accepted_ballot is None:
            return None
        return mem.accepted_ballot, mem.accepted_value


class Proposal:
    """One proposer's attempt to decide one slot — the bookkeeping side.

    The caller owns all I/O: it sends ``prepare`` to every acceptor,
    feeds the :class:`Promise` replies in via :meth:`on_promise`, and
    once :attr:`promised` goes true sends ``accept`` with
    :meth:`value_to_accept` — which is *not necessarily* the value the
    proposer wanted: if any promise carried a previously accepted value,
    the highest-ballot one wins (the proposer's own command must then be
    retried at a later slot).
    """

    def __init__(self, slot: int, ballot: Ballot, value: dict,
                 cluster_size: int) -> None:
        if cluster_size < 1:
            raise ValueError(f"cluster size must be >= 1, got {cluster_size}")
        self.slot = slot
        self.ballot = ballot
        self.own_value = value
        self.quorum = cluster_size // 2 + 1
        self._promises: Dict[int, Promise] = {}
        self._accepts: Dict[int, Accepted] = {}
        #: Highest promise floor seen in a nack — the next round must
        #: exceed its round component or it will be rejected again.
        self.highest_seen: Optional[Ballot] = None

    # -- phase 1 ---------------------------------------------------------

    def on_promise(self, acceptor_id: int, promise: Promise) -> None:
        if promise.slot != self.slot:
            return
        if not promise.ok:
            if ballot_key(promise.promised) > ballot_key(self.highest_seen):
                self.highest_seen = promise.promised
            return
        self._promises[acceptor_id] = promise

    @property
    def promised(self) -> bool:
        """True once a majority has promised this ballot."""
        return len(self._promises) >= self.quorum

    def value_to_accept(self) -> dict:
        """The only value phase 2 may propose under these promises."""
        best: Optional[Promise] = None
        for p in self._promises.values():
            if p.accepted_ballot is None:
                continue
            if best is None or ballot_key(p.accepted_ballot) > ballot_key(
                    best.accepted_ballot):
                best = p
        return self.own_value if best is None else best.accepted_value

    # -- phase 2 ---------------------------------------------------------

    def on_accepted(self, acceptor_id: int, reply: Accepted) -> None:
        if reply.slot != self.slot:
            return
        if not reply.ok:
            if ballot_key(reply.promised) > ballot_key(self.highest_seen):
                self.highest_seen = reply.promised
            return
        self._accepts[acceptor_id] = reply

    @property
    def decided(self) -> bool:
        """True once a majority has accepted — the slot is now immutable."""
        return len(self._accepts) >= self.quorum


class Learner:
    """Applies decided values to a state machine in strict slot order.

    Out-of-order learns are buffered; :meth:`learn` applies every
    contiguous decided slot starting at ``applied``.  Re-learning an
    already applied slot is a no-op (learn messages are idempotent so
    the client can re-broadcast them freely).
    """

    def __init__(self, apply_fn: Callable[[int, dict], None]) -> None:
        self._apply = apply_fn
        self._pending: Dict[int, dict] = {}
        #: Next slot to apply — everything below is in the state machine.
        self.applied = 0

    def learn(self, slot: int, value: dict) -> List[int]:
        """Record a decided slot; returns the slots applied as a result."""
        if slot >= self.applied:
            self._pending.setdefault(slot, value)
        applied: List[int] = []
        while self.applied in self._pending:
            value = self._pending.pop(self.applied)
            self._apply(self.applied, value)
            applied.append(self.applied)
            self.applied += 1
        return applied

    @property
    def chosen(self) -> Dict[int, dict]:
        """Decided-but-unapplied slots (a gap below them is still open)."""
        return dict(self._pending)
