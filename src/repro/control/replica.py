"""A control-plane replica: acceptor + learner behind a JSON socket.

Each replica owns one :class:`~repro.control.paxos.Acceptor` (the
quorum's memory), one :class:`~repro.control.paxos.Learner`, and one
:class:`~repro.control.state.ControlState` the learner applies into.
It serves the deployment layer's newline-JSON control framing
(:class:`~repro.deploy.protocol.ControlChannel`) so the whole quorum
conversation is readable with ``nc``, exactly like the agent protocol.

Request/response vocabulary (``op`` field):

=============  ======================================================
``prepare``    ``slot``, ``ballot`` → ``promise`` (ok, promised,
               accepted_ballot, accepted_value)
``accept``     ``slot``, ``ballot``, ``value`` → ``accepted``
``learn``      ``slot``, ``value`` → ``learned`` (idempotent)
``read``       → ``state``: applied count, state snapshot, and any
               decided-but-unapplied slots (for proposer catch-up)
``ping``       → ``pong`` (liveness; used by chaos targeting too)
``quit``       → ``bye``, then the server exits
=============  ======================================================

Run modes: in-thread (:meth:`ReplicaServer.start`, used by tests and by
coordinators embedding a local replica) or as a subprocess via
``kascade replica``, which prints ``KASCADE-REPLICA PORT=<n>`` on stdout
once bound so the parent can harvest the port — the same handshake idiom
the launcher uses for agents.
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import List, Optional, Tuple

from ..core.errors import KascadeError
from ..deploy.protocol import ControlChannel
from .paxos import Acceptor, Learner
from .state import ControlState

__all__ = ["ReplicaServer", "spawn_replicas"]

logger = logging.getLogger(__name__)

#: Stdout announcement prefix for the subprocess run mode.
ANNOUNCE = "KASCADE-REPLICA"


def _ballot(raw) -> Tuple[int, int]:
    return (int(raw[0]), int(raw[1]))


class ReplicaServer:
    """One quorum member, serving prepare/accept/learn/read over TCP."""

    def __init__(self, *, bind_host: str = "127.0.0.1", port: int = 0,
                 name: str = "replica") -> None:
        self.name = name
        self.acceptor = Acceptor()
        self.state = ControlState()
        self.learner = Learner(lambda _slot, value: self.state.apply(value))
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((bind_host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{self.name}-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def serve_forever(self) -> None:
        """Blocking run (subprocess mode): serve until a ``quit`` arrives."""
        self.start()
        self._stop.wait()

    def __enter__(self) -> "ReplicaServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- serving ---------------------------------------------------------

    def _accept_loop(self) -> None:
        self._sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(
                target=self._serve_conn, args=(ControlChannel(conn),),
                name=f"{self.name}-conn", daemon=True,
            )
            t.start()
            self._threads.append(t)

    def _serve_conn(self, chan: ControlChannel) -> None:
        try:
            while not self._stop.is_set():
                try:
                    msg = chan.recv(timeout=0.5)
                except TimeoutError:
                    continue
                except Exception:  # noqa: BLE001 - poisoned line: drop conn
                    return
                if msg is None:
                    return
                reply = self.handle(msg)
                if reply is not None and not chan.send(reply):
                    return
                if msg.get("op") == "quit":
                    self._stop.set()
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                    return
        finally:
            chan.close()

    # -- request dispatch (public: tests drive it without sockets) -------

    def handle(self, msg: dict) -> Optional[dict]:
        op = msg.get("op")
        with self._lock:
            if op == "prepare":
                p = self.acceptor.on_prepare(int(msg["slot"]),
                                             _ballot(msg["ballot"]))
                return {
                    "op": "promise", "slot": p.slot, "ok": p.ok,
                    "promised": list(p.promised) if p.promised else None,
                    "accepted_ballot": (list(p.accepted_ballot)
                                        if p.accepted_ballot else None),
                    "accepted_value": p.accepted_value,
                }
            if op == "accept":
                a = self.acceptor.on_accept(int(msg["slot"]),
                                            _ballot(msg["ballot"]),
                                            msg["value"])
                return {
                    "op": "accepted", "slot": a.slot, "ok": a.ok,
                    "promised": list(a.promised) if a.promised else None,
                }
            if op == "learn":
                applied = self.learner.learn(int(msg["slot"]), msg["value"])
                return {"op": "learned", "slot": int(msg["slot"]),
                        "applied": applied}
            if op == "read":
                return {
                    "op": "state",
                    "applied": self.learner.applied,
                    "state": self.state.snapshot(),
                    "chosen": {str(s): v
                               for s, v in self.learner.chosen.items()},
                }
            if op == "ping":
                return {"op": "pong", "name": self.name,
                        "applied": self.learner.applied}
            if op == "quit":
                return {"op": "bye"}
        return {"op": "error", "error": f"unknown op {op!r}"}


def spawn_replicas(count: int, *, python: str, bind_host: str = "127.0.0.1",
                   env: Optional[dict] = None):
    """Start ``count`` replica subprocesses and harvest their addresses.

    Each replica is a ``kascade replica`` process named ``replica:<i>``;
    its bound port is read from the stdout announcement.  On any spawn
    or announce failure every already-started replica is killed before
    the error propagates.  Returns ``(procs, [(host, port), ...])``.
    """
    import subprocess

    procs: List[subprocess.Popen] = []
    addrs: List[Tuple[str, int]] = []
    try:
        for i in range(count):
            cmd = [python, "-m", "repro.cli.kascade", "replica",
                   "--bind", bind_host, "--name", f"replica:{i}"]
            proc = subprocess.Popen(
                cmd, stdin=subprocess.DEVNULL, stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL, env=env, text=True,
            )
            procs.append(proc)
            line = proc.stdout.readline().strip()
            if not line.startswith(ANNOUNCE):
                raise KascadeError(
                    f"control replica {i} failed to announce its port "
                    f"(got {line!r})"
                )
            addrs.append((bind_host, int(line.rsplit("PORT=", 1)[1])))
    except BaseException:
        for proc in procs:
            try:
                proc.kill()
            except OSError:
                pass
        raise
    return procs, addrs


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``kascade replica`` subprocess run mode."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(prog="kascade replica")
    parser.add_argument("--bind", default="127.0.0.1",
                        help="address to listen on (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to listen on (default: ephemeral)")
    parser.add_argument("--name", default="replica")
    args = parser.parse_args(argv)

    server = ReplicaServer(bind_host=args.bind, port=args.port,
                           name=args.name)
    host, port = server.start()
    # Announce the bound port on stdout so the parent can harvest it.
    print(f"{ANNOUNCE} PORT={port}", flush=True)
    try:
        server._stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
