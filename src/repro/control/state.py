"""The replicated coordinator state machine.

Commands are plain JSON-safe dicts with a ``kind`` field; the quorum
decides their order (one command per log slot) and every replica applies
them through :meth:`ControlState.apply`.  Because application is a pure
function of the command sequence, any two replicas that applied the same
prefix hold byte-identical state — that is what lets a coordinator
restart (or a surviving majority) reconstruct everything it needs to
finish a broadcast: who registered where, which plan is active, how far
every node had gotten, and which head is current.

Command vocabulary
------------------

=============  =====================================================
``register``   ``node``, ``host``, ``port``, ``pid`` — an agent
               joined the fleet at this data-plane address
``plan``       ``plan`` — the active chain schedule
               (:meth:`~repro.core.plan.ChainPlan.to_dict` form)
``watermark``  ``node``, ``bytes`` — progress high-water mark; only
               ever raises (stale duplicates are ignored)
``election``   ``head``, ``dead`` — a new head was chosen; bumps the
               epoch so late messages from the old regime are
               recognisably stale
=============  =====================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["ControlState"]


class ControlState:
    """State machine over the replicated command log."""

    def __init__(self) -> None:
        #: node -> {"host", "port", "pid"}
        self.registrations: Dict[str, dict] = {}
        #: Active plan in ``ChainPlan.to_dict`` form, or None.
        self.plan: Optional[dict] = None
        #: node -> bytes received (monotonically non-decreasing).
        self.watermarks: Dict[str, int] = {}
        #: Nodes declared dead by elections so far.
        self.dead: List[str] = []
        #: Current head per the latest election (None = the plan's own).
        self.elected_head: Optional[str] = None
        #: Bumped by every election; stale-regime filtering.
        self.epoch = 0

    # -- command application --------------------------------------------

    def apply(self, command: dict) -> None:
        kind = command.get("kind")
        if kind == "register":
            self.registrations[command["node"]] = {
                "host": command["host"],
                "port": command["port"],
                "pid": command.get("pid"),
            }
        elif kind == "plan":
            self.plan = command["plan"]
        elif kind == "watermark":
            node = command["node"]
            new = int(command["bytes"])
            if new > self.watermarks.get(node, -1):
                self.watermarks[node] = new
        elif kind == "election":
            self.elected_head = command["head"]
            for node in command.get("dead", ()):
                if node not in self.dead:
                    self.dead.append(node)
            self.epoch += 1
        else:
            raise ValueError(f"unknown control command kind: {kind!r}")

    # -- queries ---------------------------------------------------------

    @property
    def head(self) -> Optional[str]:
        """The current head: the latest election's pick, else the plan's."""
        if self.elected_head is not None:
            return self.elected_head
        if self.plan is not None:
            return self.plan["head"]
        return None

    def most_complete(self, exclude: Iterable[str] = ()) -> Optional[str]:
        """The election rule: the survivor with the highest watermark.

        Ties break on name so every replica (and a restarted
        coordinator) computes the same answer from the same state.
        ``exclude`` is the dead set; already-recorded dead nodes are
        never candidates.
        """
        gone = set(exclude) | set(self.dead)
        best: Optional[Tuple[int, str]] = None
        for node, mark in sorted(self.watermarks.items()):
            if node in gone:
                continue
            if best is None or mark > best[0]:
                best = (mark, node)
        return None if best is None else best[1]

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "registrations": dict(self.registrations),
            "plan": self.plan,
            "watermarks": dict(self.watermarks),
            "dead": list(self.dead),
            "elected_head": self.elected_head,
            "epoch": self.epoch,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "ControlState":
        state = cls()
        state.registrations = dict(snap.get("registrations", {}))
        state.plan = snap.get("plan")
        state.watermarks = {k: int(v)
                            for k, v in snap.get("watermarks", {}).items()}
        state.dead = list(snap.get("dead", []))
        state.elected_head = snap.get("elected_head")
        state.epoch = int(snap.get("epoch", 0))
        return state
