"""Reusable receive-buffer pool for the zero-copy data plane.

The runtime receive path (:class:`repro.runtime.transport.SocketStream`)
reads with ``recv_into`` straight into pool buffers and hands payloads out
as :class:`memoryview` slices — to the ring buffer, the sink, and the
vectored send queue — without ever copying them.  That raises the one hard
question of any zero-copy design: *when may a buffer be reused?*

The answer here uses CPython's buffer-export machinery instead of manual
reference counting.  A ``bytearray`` with live ``memoryview`` exports
refuses to be resized (``BufferError``), which makes "is anyone still
holding a view into this buffer?" directly observable: the pool probes a
candidate with a zero-cost resize attempt and only reuses buffers whose
every view has been garbage-collected or released.  Consumers therefore
need no explicit release contract — they hold views exactly as long as
they need them (the ring buffer until eviction, the send queue until
flushed) and drop them naturally.

The trade-off is granularity: one 4 KiB view pins its whole segment.  The
pool bounds that by capping how many maybe-still-pinned buffers it keeps
around (``max_idle``); beyond the cap, buffers are simply dropped and the
garbage collector reclaims them once their views die.
"""

from __future__ import annotations

from typing import List, Optional

from .perfstats import PerfStats, get_stats

#: Default segment size: large enough to hold dozens of small-chunk frames
#: per buffer rotation, small enough that a pinned segment is cheap.
DEFAULT_SEGMENT = 256 * 1024


def _has_exports(buf: bytearray) -> bool:
    """Whether any live memoryview still references ``buf``.

    A ``bytearray`` with buffer exports cannot be resized; probing with an
    append/pop pair detects exports without touching the contents.
    """
    try:
        buf.append(0)
    except BufferError:
        return True
    buf.pop()
    return False


class BufferPool:
    """Recycles receive buffers once no memoryview references them.

    Parameters
    ----------
    segment_size:
        Preferred buffer size.  ``acquire(min_size)`` ratchets it up when
        a single frame needs more, so a stream of 1 MiB chunks promotes
        the pool to multi-MiB segments after the first frame.
    max_idle:
        How many returned-but-possibly-pinned buffers to retain for
        reuse probing before simply dropping the oldest.
    stats:
        Counter sink; defaults to the process-global :func:`get_stats`.
    """

    def __init__(
        self,
        segment_size: int = DEFAULT_SEGMENT,
        *,
        max_idle: int = 16,
        stats: Optional[PerfStats] = None,
    ) -> None:
        if segment_size <= 0:
            raise ValueError(f"segment_size must be positive, got {segment_size}")
        self.segment_size = segment_size
        self.max_idle = max_idle
        self.stats = stats if stats is not None else get_stats()
        self._idle: List[bytearray] = []

    def acquire(self, min_size: int = 0) -> bytearray:
        """Return a buffer of at least ``min_size`` (≥ ``segment_size``) bytes.

        Prefers recycling an idle buffer whose views are all gone; falls
        back to allocating.  The returned buffer's *contents* are
        unspecified — callers track their own fill position.
        """
        if min_size > self.segment_size:
            # Ratchet: this stream carries frames bigger than the segment.
            size = self.segment_size
            while size < min_size:
                size *= 2
            self.segment_size = size
        for i, buf in enumerate(self._idle):
            if len(buf) >= min_size and not _has_exports(buf):
                del self._idle[i]
                self.stats.pool_reuses += 1
                return buf
        self.stats.pool_allocations += 1
        return bytearray(self.segment_size)

    def recycle(self, buf: bytearray) -> None:
        """Return a buffer the producer is done filling.

        Views into it may still be alive; the buffer only becomes
        reusable once :func:`_has_exports` clears at ``acquire`` time.
        Undersized buffers (from before a segment-size ratchet) and
        overflow beyond ``max_idle`` are dropped.
        """
        if len(buf) < self.segment_size:
            return
        self._idle.append(buf)
        if len(self._idle) > self.max_idle:
            # Drop the oldest — likely the longest-pinned.
            del self._idle[0]

    @property
    def idle_buffers(self) -> int:
        """Buffers currently held for reuse (pinned or not)."""
        return len(self._idle)
