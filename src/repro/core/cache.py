"""Content-addressed chunk cache for the broadcast-as-a-service daemon.

A long-lived fleet agent (:mod:`repro.daemon`) serves many broadcast
sessions from one process.  Different sessions frequently carry the
*same* artifact — a repeated release push, a late joiner catching up on
a stream its peers already hold — and resending every byte down the
chain is pure waste.  This module is the local store that turns those
repeats into cache traffic:

* entries are keyed by **content**, ``(artifact digest, chunk index)``,
  never by session or path, so two sessions broadcasting byte-identical
  payloads share entries no matter what the files were called;
* the cache owns its memory: :meth:`ChunkCache.put` copies the chunk
  out of the caller's buffer, because the data plane's receive buffers
  are pooled and recycled (the PR 1 ring-retention ownership rules) —
  a by-reference entry would alias a buffer the ring is free to reuse.
  Pinning is therefore about *eviction*, not borrowing: a pinned
  artifact (one mid-serve to a late joiner, say) cannot be evicted from
  under its reader;
* eviction is byte-bounded LRU over unpinned entries.  ``max_bytes`` is
  a hard ceiling; a chunk larger than the whole budget is simply not
  cached (never an error — the cache is an optimisation, missing it
  only costs wire bytes).

Counters (``cache_hits`` / ``cache_misses`` / ``bytes_from_cache`` /
``cache_evictions``) land in :mod:`repro.core.perfstats` so a repeat
broadcast can *prove* it was served locally.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from .errors import KascadeError
from .perfstats import PerfStats, get_stats

__all__ = ["ArtifactMeta", "CacheTapSink", "ChunkCache", "chunk_count"]


def chunk_count(size: int, chunk_size: int) -> int:
    """How many chunks a ``size``-byte artifact occupies."""
    if chunk_size <= 0:
        raise KascadeError(f"chunk_size must be positive, got {chunk_size}")
    return max(0, (size + chunk_size - 1) // chunk_size)


@dataclass(frozen=True)
class ArtifactMeta:
    """Identity of one broadcast payload: digest + geometry.

    ``digest`` is the SHA-256 of the whole stream (hex), the same value
    a clean receiver's :class:`~repro.deploy.agent.DigestSink` computes
    — which is what makes "served from cache" verifiable end to end.
    """

    digest: str
    size: int
    chunk_size: int

    @property
    def chunks(self) -> int:
        return chunk_count(self.size, self.chunk_size)

    def chunk_len(self, index: int) -> int:
        """Byte length of chunk ``index`` (the tail chunk may be short)."""
        if index < 0 or index >= self.chunks:
            raise KascadeError(
                f"chunk index {index} outside artifact of {self.chunks} chunks"
            )
        return min(self.chunk_size, self.size - index * self.chunk_size)

    def to_wire(self) -> dict:
        return {"digest": self.digest, "size": self.size,
                "chunk_size": self.chunk_size}

    @classmethod
    def from_wire(cls, d: dict) -> "ArtifactMeta":
        return cls(digest=str(d["digest"]), size=int(d["size"]),
                   chunk_size=int(d["chunk_size"]))


class ChunkCache:
    """Bounded, thread-safe, content-addressed chunk store.

    Thread-safe because one fleet agent runs many concurrent session
    workers plus a pull-phase server, all hitting the same cache.

    Parameters
    ----------
    max_bytes:
        Ceiling for cached payload bytes.  ``0`` disables the cache
        entirely (every ``put`` is dropped, every ``get`` misses) —
        the off switch costs one branch, not a code path.
    stats:
        :class:`~repro.core.perfstats.PerfStats` to count into
        (defaults to the process-wide instance).
    """

    def __init__(self, max_bytes: int,
                 stats: Optional[PerfStats] = None) -> None:
        if max_bytes < 0:
            raise KascadeError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._stats = stats if stats is not None else get_stats()
        self._lock = threading.Lock()
        #: LRU order: oldest first.  Value is the owned chunk payload.
        self._entries: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._pinned: Set[str] = set()  # artifact digests exempt from eviction
        self._by_artifact: Dict[str, Set[int]] = {}
        self._bytes = 0
        self._evictions = 0

    # -- accounting ------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- writes ----------------------------------------------------------

    def put(self, digest: str, index: int, data) -> bool:
        """Store chunk ``index`` of artifact ``digest``; True if kept.

        Copies ``data`` (any buffer) into cache-owned bytes — see the
        module docs for why by-reference retention would be unsound
        here.  A duplicate put refreshes recency but does not copy
        again.  Oversized chunks (bigger than the whole budget) are
        declined, never raised.
        """
        size = len(data)
        if size > self.max_bytes:
            return False
        key = (digest, index)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return True
            self._evict_for(size)
            if self._bytes + size > self.max_bytes:
                return False  # everything evictable is pinned
            self._entries[key] = bytes(data)
            self._bytes += size
            self._by_artifact.setdefault(digest, set()).add(index)
            return True

    def _evict_for(self, incoming: int) -> None:
        """Drop oldest unpinned entries until ``incoming`` bytes fit."""
        if self._bytes + incoming <= self.max_bytes:
            return
        for key in list(self._entries):
            if self._bytes + incoming <= self.max_bytes:
                return
            digest, index = key
            if digest in self._pinned:
                continue
            data = self._entries.pop(key)
            self._bytes -= len(data)
            self._evictions += 1
            self._stats.cache_evictions += 1
            chunks = self._by_artifact.get(digest)
            if chunks is not None:
                chunks.discard(index)
                if not chunks:
                    del self._by_artifact[digest]

    # -- reads -----------------------------------------------------------

    def get(self, digest: str, index: int) -> Optional[bytes]:
        """The cached chunk, or ``None`` — counting the hit or miss."""
        key = (digest, index)
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self._stats.cache_misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.cache_hit(len(data))
            return data

    def peek(self, digest: str, index: int) -> bool:
        """Presence check with no counter or recency side effects."""
        with self._lock:
            return (digest, index) in self._entries

    def artifact_chunks(self, digest: str) -> Set[int]:
        """Indices cached for ``digest`` (a copy; safe to mutate)."""
        with self._lock:
            return set(self._by_artifact.get(digest, ()))

    def has_artifact(self, digest: str, chunks: int) -> bool:
        """True when every one of the artifact's ``chunks`` is cached."""
        if chunks == 0:
            return True
        with self._lock:
            have = self._by_artifact.get(digest)
            return have is not None and len(have) == chunks

    def contiguous_chunks(self, digest: str) -> int:
        """Length of the cached prefix ``[0, n)`` — the pull phase's
        catch-up frontier."""
        with self._lock:
            have = self._by_artifact.get(digest)
            if not have:
                return 0
            n = 0
            while n in have:
                n += 1
            return n

    # -- pinning ---------------------------------------------------------

    def pin_artifact(self, digest: str) -> None:
        """Exempt every chunk of ``digest`` from eviction (e.g. while a
        late joiner streams it).  Pins nest as a set, not a count —
        idempotent."""
        with self._lock:
            self._pinned.add(digest)

    def unpin_artifact(self, digest: str) -> None:
        with self._lock:
            self._pinned.discard(digest)

    def pinned_artifacts(self) -> Set[str]:
        with self._lock:
            return set(self._pinned)


class CacheTapSink:
    """Sink wrapper feeding a :class:`ChunkCache` on the receive path.

    Sits outermost in a receiver's sink chain so it observes the stream
    in global order, slices it on chunk boundaries, and inserts each
    complete chunk under ``(artifact.digest, index)`` — making this node
    cache-warm for repeat broadcasts and pull-phase peers *while the
    push is still in flight*.  Pass-through is unconditional: caching
    never changes what reaches the inner sink.
    """

    def __init__(self, inner, cache: ChunkCache,
                 artifact: ArtifactMeta) -> None:
        self.inner = inner
        self.cache = cache
        self.artifact = artifact
        self._offset = 0
        self._pending = bytearray()  # partial chunk awaiting its boundary

    def write_chunk(self, data) -> None:
        art = self.artifact
        self._pending += data
        # _offset tracks the start of _pending in the stream; flush every
        # complete chunk (and the short tail chunk once the stream ends).
        while True:
            index = self._offset // art.chunk_size
            if index >= art.chunks:
                break
            want = art.chunk_len(index)
            if len(self._pending) < want:
                break
            piece = bytes(self._pending[:want])
            del self._pending[:want]
            self._offset += want
            self.cache.put(art.digest, index, piece)
        self.inner.write_chunk(data)

    def preallocate(self, size: int) -> None:
        self.inner.preallocate(size)

    def finish(self) -> None:
        self.inner.finish()

    def abort(self) -> None:
        self.inner.abort()
