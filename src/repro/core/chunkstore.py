"""In-memory chunk ring buffer used for failure recovery (§III-D2).

Every Kascade node keeps the most recent stream chunks in memory so that,
when its downstream neighbour dies, it can replay the bytes the replacement
neighbour is missing.  The buffer is a *recycled* window over the stream:
appending beyond the capacity evicts the oldest chunks, which is exactly
why the protocol needs the FORGET message — a request below
:attr:`ChunkRingBuffer.min_offset` can no longer be served locally.

The buffer stores contiguous stream data only; offsets are absolute
positions in the broadcast stream.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Tuple

from .errors import ChunkStoreError


class ChunkRingBuffer:
    """A bounded window of the most recent contiguous stream bytes.

    Parameters
    ----------
    capacity:
        Maximum number of buffered bytes.  Appends beyond this evict whole
        chunks from the oldest end (chunks are never split on eviction,
        mirroring the chunk-granular recycling of the paper's tool).
    start_offset:
        Absolute stream offset of the first byte that will be appended.
    """

    def __init__(self, capacity: int, start_offset: int = 0) -> None:
        if capacity <= 0:
            raise ChunkStoreError(f"capacity must be positive, got {capacity}")
        if start_offset < 0:
            raise ChunkStoreError(f"negative start offset: {start_offset}")
        self._capacity = capacity
        self._chunks: Deque[Tuple[int, bytes]] = deque()  # (offset, data)
        self._min = start_offset  # oldest buffered byte
        self._end = start_offset  # one past the newest buffered byte

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def min_offset(self) -> int:
        """Oldest stream offset still buffered (the FORGET(o) value)."""
        return self._min

    @property
    def end_offset(self) -> int:
        """One past the newest buffered byte — the stream position so far."""
        return self._end

    @property
    def buffered_bytes(self) -> int:
        return self._end - self._min

    def __len__(self) -> int:
        return self.buffered_bytes

    def covers(self, offset: int) -> bool:
        """Whether the buffer can serve the stream starting at ``offset``.

        ``offset == end_offset`` counts as covered: the caller can resume
        streaming live data from there with no replay at all.
        """
        return self._min <= offset <= self._end

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, data: bytes) -> None:
        """Append the next stream chunk, evicting old chunks if needed.

        Chunks larger than the whole capacity are rejected — a node that
        cannot hold even one chunk cannot participate in recovery, and this
        is a configuration error (chunk_size > buffer_bytes).
        """
        if len(data) > self._capacity:
            raise ChunkStoreError(
                f"chunk of {len(data)} bytes exceeds buffer capacity {self._capacity}"
            )
        if not data:
            return
        self._chunks.append((self._end, bytes(data)))
        self._end += len(data)
        while self._end - self._min > self._capacity:
            old_off, old_data = self._chunks.popleft()
            assert old_off == self._min
            self._min += len(old_data)

    def read_from(self, offset: int, limit: int | None = None) -> bytes:
        """Return buffered bytes from ``offset`` up to the buffer end.

        ``limit`` caps the returned length.  Raises :class:`ChunkStoreError`
        if ``offset`` precedes :attr:`min_offset` (the FORGET case) or lies
        beyond the buffered end.
        """
        if not self.covers(offset):
            raise ChunkStoreError(
                f"offset {offset} outside buffered window "
                f"[{self._min}, {self._end}]"
            )
        want = self._end - offset
        if limit is not None:
            want = min(want, limit)
        if want == 0:
            return b""
        parts = []
        remaining = want
        for chunk_off, chunk in self._chunks:
            chunk_end = chunk_off + len(chunk)
            if chunk_end <= offset:
                continue
            lo = max(0, offset - chunk_off)
            piece = chunk[lo: lo + remaining]
            parts.append(piece)
            remaining -= len(piece)
            if remaining == 0:
                break
        return b"".join(parts)

    def iter_chunks_from(self, offset: int) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(offset, data)`` pieces from ``offset`` to the end.

        Pieces follow the stored chunk boundaries (the first may be a chunk
        suffix), so a recovering sender can replay them as DATA frames of
        familiar sizes.
        """
        if not self.covers(offset):
            raise ChunkStoreError(
                f"offset {offset} outside buffered window "
                f"[{self._min}, {self._end}]"
            )
        for chunk_off, chunk in self._chunks:
            chunk_end = chunk_off + len(chunk)
            if chunk_end <= offset:
                continue
            if chunk_off >= offset:
                yield chunk_off, chunk
            else:
                yield offset, chunk[offset - chunk_off:]

    def clear(self) -> None:
        """Drop all buffered data, keeping the stream position."""
        self._chunks.clear()
        self._min = self._end
