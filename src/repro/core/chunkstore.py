"""In-memory chunk ring buffer used for failure recovery (§III-D2).

Every Kascade node keeps the most recent stream chunks in memory so that,
when its downstream neighbour dies, it can replay the bytes the replacement
neighbour is missing.  The buffer is a *recycled* window over the stream:
appending beyond the capacity evicts the oldest chunks, which is exactly
why the protocol needs the FORGET message — a request below
:attr:`ChunkRingBuffer.min_offset` can no longer be served locally.

The buffer stores contiguous stream data only; offsets are absolute
positions in the broadcast stream.

Zero-copy contract: chunks are retained exactly as handed in — ``bytes``
or ``memoryview`` — without a defensive copy.  The runtime passes
memoryviews into pooled receive buffers; holding them here is what keeps
those buffers from being recycled while a replay might still need them
(see :mod:`repro.core.buffers` and ``docs/PROTOCOL.md``).  A caller that
appends a view therefore promises not to mutate the viewed bytes for as
long as they sit inside the window.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Optional, Tuple, Union

from .errors import ChunkStoreError

Chunk = Union[bytes, memoryview]

#: Compact the backing lists once this many evicted slots accumulate (and
#: they outnumber the live chunks) — keeps append amortised O(1).
_COMPACT_THRESHOLD = 64


class ChunkRingBuffer:
    """A bounded window of the most recent contiguous stream bytes.

    Parameters
    ----------
    capacity:
        Maximum number of buffered bytes.  Appends beyond this evict whole
        chunks from the oldest end (chunks are never split on eviction,
        mirroring the chunk-granular recycling of the paper's tool).
    start_offset:
        Absolute stream offset of the first byte that will be appended.
    """

    def __init__(self, capacity: int, start_offset: int = 0) -> None:
        if capacity <= 0:
            raise ChunkStoreError(f"capacity must be positive, got {capacity}")
        if start_offset < 0:
            raise ChunkStoreError(f"negative start offset: {start_offset}")
        self._capacity = capacity
        # Parallel arrays indexed together; slots below _first are evicted
        # (data refs dropped eagerly so pooled buffers can recycle).
        self._offsets: List[int] = []
        self._data: List[Optional[Chunk]] = []
        self._first = 0  # index of the oldest live chunk
        #: Oldest stream offset still buffered (the FORGET(o) value) and
        #: one past the newest buffered byte.  Plain attributes, read on
        #: every chunk of every simulated transfer — do not assign from
        #: outside this class.
        self.min_offset = start_offset
        self.end_offset = start_offset

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def buffered_bytes(self) -> int:
        return self.end_offset - self.min_offset

    def __len__(self) -> int:
        return self.buffered_bytes

    def covers(self, offset: int) -> bool:
        """Whether the buffer can serve the stream starting at ``offset``.

        ``offset == end_offset`` counts as covered: the caller can resume
        streaming live data from there with no replay at all.
        """
        return self.min_offset <= offset <= self.end_offset

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, data: Chunk) -> None:
        """Append the next stream chunk, evicting old chunks if needed.

        The chunk is retained **by reference** (no copy): callers handing
        in a memoryview of a pooled buffer must not recycle the underlying
        bytes while the chunk remains in the window — the runtime's buffer
        pool guarantees this by probing for live views before reuse.

        Chunks larger than the whole capacity are rejected — a node that
        cannot hold even one chunk cannot participate in recovery, and this
        is a configuration error (chunk_size > buffer_bytes).
        """
        size = len(data)
        capacity = self._capacity
        if size > capacity:
            raise ChunkStoreError(
                f"chunk of {size} bytes exceeds buffer capacity {capacity}"
            )
        if size == 0:
            return
        end = self.end_offset
        self._offsets.append(end)
        self._data.append(data)
        self.end_offset = end = end + size
        if end - self.min_offset > capacity:
            chunks = self._data
            first = self._first
            low = self.min_offset
            while end - low > capacity:
                old = chunks[first]
                chunks[first] = None  # drop the ref *now*
                first += 1
                low += len(old)
            self._first = first
            self.min_offset = low
            if first >= _COMPACT_THRESHOLD and first * 2 >= len(chunks):
                del self._offsets[:first]
                del chunks[:first]
                self._first = 0

    def _start_index(self, offset: int) -> int:
        """Index of the chunk containing ``offset`` (binary search)."""
        idx = bisect_right(self._offsets, offset, lo=self._first) - 1
        return max(idx, self._first)

    def read_from(self, offset: int, limit: int | None = None) -> bytes:
        """Return buffered bytes from ``offset`` up to the buffer end.

        ``limit`` caps the returned length.  Raises :class:`ChunkStoreError`
        if ``offset`` precedes :attr:`min_offset` (the FORGET case) or lies
        beyond the buffered end.
        """
        if not self.covers(offset):
            raise ChunkStoreError(
                f"offset {offset} outside buffered window "
                f"[{self.min_offset}, {self.end_offset}]"
            )
        want = self.end_offset - offset
        if limit is not None:
            want = min(want, limit)
        if want == 0:
            return b""
        parts = []
        remaining = want
        for idx in range(self._start_index(offset), len(self._data)):
            chunk_off, chunk = self._offsets[idx], self._data[idx]
            lo = max(0, offset - chunk_off)
            if lo >= len(chunk):  # offset sits exactly at this chunk's end
                continue
            piece = chunk[lo: lo + remaining]
            parts.append(piece)
            remaining -= len(piece)
            if remaining == 0:
                break
        return b"".join(parts)

    def iter_chunks_from(self, offset: int) -> Iterator[Tuple[int, Chunk]]:
        """Yield ``(offset, data)`` pieces from ``offset`` to the end.

        Pieces follow the stored chunk boundaries (the first may be a chunk
        suffix), so a recovering sender can replay them as DATA frames of
        familiar sizes.  Pieces are served zero-copy: a stored memoryview
        is yielded as (a slice of) itself.
        """
        if not self.covers(offset):
            raise ChunkStoreError(
                f"offset {offset} outside buffered window "
                f"[{self.min_offset}, {self.end_offset}]"
            )
        for idx in range(self._start_index(offset), len(self._data)):
            chunk_off, chunk = self._offsets[idx], self._data[idx]
            if chunk_off >= offset:
                yield chunk_off, chunk
            elif chunk_off + len(chunk) > offset:
                yield offset, chunk[offset - chunk_off:]

    def note_advance(self, size: int) -> None:
        """Advance the stream position by ``size`` bytes retaining nothing.

        The kernel-path relay (``os.splice``) forwards payload bytes that
        never enter userspace, so there is nothing to buffer: the window
        advances and immediately empties (``min_offset == end_offset``).
        Any later replay request below the live edge is then answered
        with FORGET and recovered through the head via PGET — the
        protocol's degraded-but-correct recovery route.
        """
        if size < 0:
            raise ChunkStoreError(f"negative advance: {size}")
        if size == 0:
            return
        self.clear()
        self.end_offset += size
        self.min_offset = self.end_offset

    def clear(self) -> None:
        """Drop all buffered data, keeping the stream position."""
        self._offsets.clear()
        self._data.clear()
        self._first = 0
        self.min_offset = self.end_offset
