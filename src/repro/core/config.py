"""Kascade configuration.

Tunables of the tool described in the paper: chunk size, the in-memory ring
buffer that enables recovery after a node failure (§III-D2), and the timers
used for failure detection (§III-D1).  The defaults mirror what the paper
reports: detection timeouts of about one second ("every time a timeout is
reached, one second is lost", §IV-G).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .errors import ConfigError
from .units import MiB

#: Runtime data planes selectable via :attr:`KascadeConfig.data_plane`.
DATA_PLANES = ("threaded", "evloop")


@dataclass(frozen=True)
class KascadeConfig:
    """Configuration shared by the real runtime and the simulator.

    Attributes
    ----------
    chunk_size:
        Size of one DATA chunk in bytes.  The stream is split into chunks so
        the total length need not be known in advance (§III-C).
    buffer_chunks:
        How many recent chunks each node keeps in its recycled ring buffer
        for retransmission after a downstream failure (§III-D2).
    io_timeout:
        Seconds a node waits on a stalled read/write before suspecting the
        peer is dead and starting the ping check.
    ping_timeout:
        Seconds to wait for an answer to the liveness ping before declaring
        the peer dead.
    connect_timeout:
        Seconds to wait when establishing a TCP connection to a peer.
    max_connect_attempts:
        How many consecutive downstream nodes may be skipped while looking
        for the next alive neighbour before giving up on the tail.
        ``None`` (the default) means unbounded — try every remaining node.
    report_timeout:
        Seconds the head waits for the final report from the tail node.
    verify_digest:
        When true, the head hashes the stream (SHA-256) and ships the
        digest in its report; every receiver hashes what it stored and
        flags a mismatch as its own failure.  End-to-end integrity at
        the cost of one hash pass per node.
    bandwidth_limit:
        Optional cap, in bytes/second, on the rate the head injects the
        stream into the pipeline (a token-bucket pacing its reads).
        ``None`` = unlimited.  Useful when the broadcast shares links
        with production traffic.
    sink_writeback_depth:
        How many chunks a receiver may queue for its background sink
        writer (§III-A overlap of storage with relay).  ``0`` disables
        the writer entirely: the relay writes synchronously, exactly as
        before the stage existed.
    sink_writeback_budget:
        Pinned-byte ceiling for the writeback queue.  Queued chunks are
        zero-copy views into pooled receive buffers up to this many
        bytes; past it the writer copies chunks so a slow disk cannot
        starve the receive pool.
    readahead_chunks:
        How many chunks the head prefetches from a blocking (file/pipe)
        source so reads overlap its vectored sends.  ``0`` disables
        prefetching.
    stripes:
        How many interleaved chains carry the stream.  ``1`` (default)
        is the classic single pipeline, byte-identical to the legacy
        path.  With ``k > 1`` the stream is split round-robin over the
        chunk index into ``k`` stripes, each broadcast down its own
        chain (see :mod:`repro.core.plan`), with per-stripe ring
        buffers and recovery and an in-order merge at every sink.
    cache_bytes:
        Byte budget for the content-addressed chunk cache a long-lived
        fleet agent keeps across broadcast sessions
        (:mod:`repro.core.cache`; daemon backend only — one-shot
        backends tear their processes down, so there is nothing to
        cache into).  ``0`` disables caching; every session then pays
        full wire cost even for a repeated artifact.
    data_plane:
        Which runtime data plane executes the node I/O.  ``"threaded"``
        (the default and the conformance reference) runs one acceptor
        thread plus one main-loop thread per node over blocking sockets;
        ``"evloop"`` runs each node's entire data plane on a
        single-threaded ``selectors`` reactor with non-blocking sockets
        and — for pure relay nodes on Linux — an ``os.splice`` kernel
        path where forwarded payload bytes never enter Python between
        recv and send (see :mod:`repro.runtime.evloop`).  Only the real
        TCP backends (``local``/``procs``) consult this; the simulators
        have no sockets to drive.
    """

    chunk_size: int = 1 * MiB
    buffer_chunks: int = 8
    io_timeout: float = 1.0
    ping_timeout: float = 0.5
    connect_timeout: float = 2.0
    max_connect_attempts: Optional[int] = None  # None = unbounded
    report_timeout: float = 30.0
    verify_digest: bool = False
    bandwidth_limit: Optional[float] = None
    sink_writeback_depth: int = 8  # 0 = synchronous sink writes
    sink_writeback_budget: int = 32 * MiB
    readahead_chunks: int = 2  # 0 = no head-node prefetch
    stripes: int = 1  # 1 = single chain (legacy path)
    cache_bytes: int = 256 * MiB  # 0 = no cross-session chunk cache
    data_plane: str = "threaded"  # "threaded" | "evloop"

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.buffer_chunks < 1:
            raise ConfigError(f"buffer_chunks must be >= 1, got {self.buffer_chunks}")
        for name in ("io_timeout", "ping_timeout", "connect_timeout", "report_timeout"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.max_connect_attempts is not None and self.max_connect_attempts < 0:
            raise ConfigError("max_connect_attempts must be >= 0 or None")
        if self.bandwidth_limit is not None and self.bandwidth_limit <= 0:
            raise ConfigError(
                f"bandwidth_limit must be positive, got {self.bandwidth_limit}"
            )
        for name in ("sink_writeback_depth", "sink_writeback_budget",
                     "readahead_chunks", "cache_bytes"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if self.stripes < 1:
            raise ConfigError(f"stripes must be >= 1, got {self.stripes}")
        if self.data_plane not in DATA_PLANES:
            raise ConfigError(
                f"data_plane must be one of {DATA_PLANES}, "
                f"got {self.data_plane!r}"
            )

    @property
    def buffer_bytes(self) -> int:
        """Total bytes of stream history a node can retransmit."""
        return self.chunk_size * self.buffer_chunks

    def with_(self, **kwargs) -> "KascadeConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Default configuration, matching the tool's out-of-the-box behaviour.
DEFAULT_CONFIG = KascadeConfig()
