"""Exception hierarchy for the Kascade reproduction.

All exceptions raised by the library derive from :class:`KascadeError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class KascadeError(Exception):
    """Base class for all errors raised by this library."""


class ProtocolError(KascadeError):
    """A peer violated the Kascade wire protocol (bad opcode, bad state)."""


class FramingError(ProtocolError):
    """A frame could not be decoded (truncated header, unknown opcode...)."""


class ChunkStoreError(KascadeError):
    """Invalid operation on a chunk ring buffer."""


class DataLossError(KascadeError):
    """Requested stream bytes are no longer available anywhere.

    Raised when a recovering node needs an offset range that has been
    recycled from every upstream buffer and the head reads from a
    non-seekable stream (the paper's FORGET case).
    """


class PipelineError(KascadeError):
    """Invalid pipeline plan (empty node list, duplicate nodes...)."""


class TransferAborted(KascadeError):
    """The transfer was cancelled (user QUIT or unrecoverable data loss)."""


class NodeFailedError(KascadeError):
    """A peer node was declared dead during the transfer."""

    def __init__(self, node: str, reason: str = "") -> None:
        super().__init__(f"node {node} failed" + (f": {reason}" if reason else ""))
        self.node = node
        self.reason = reason


class SinkError(KascadeError):
    """The node's local storage sink failed (ENOSPC, dead sink command...).

    The §III-D failure model treats this as unrecoverable for the node:
    it must hard-abort — QUIT both neighbours, discard partial output —
    rather than silently keep relaying data it can no longer store.
    """


class SimulationError(KascadeError):
    """Internal inconsistency in the discrete-event simulator."""


class ConfigError(KascadeError):
    """Invalid configuration value."""
