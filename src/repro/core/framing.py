"""Binary framing of Kascade protocol messages.

Wire format: every message begins with a one-byte opcode followed by the
fixed-size fields of that message, all big-endian unsigned 64-bit integers.
``DATA`` and ``REPORT`` headers are followed by exactly ``size`` bytes of
payload.

Two decoding interfaces are provided:

* :class:`FrameDecoder` — an incremental (sans-io) decoder: feed it bytes
  as they arrive (or let a socket ``recv_into`` its :meth:`writable`
  window), pop complete messages.  Used by the real TCP runtime, the
  simulator, and unit tests.
* :func:`read_message` / :func:`write_message` — blocking helpers over a
  file-like object with ``read``/``write``/``flush``.

Payloads are surfaced separately from headers: decoding yields
``(message, payload)`` pairs where ``payload`` is ``b""`` for payload-less
messages and a **memoryview** into the decoder's receive buffer for
``DATA``/``REPORT``.  Handing out views instead of sliced ``bytes`` is the
heart of the zero-copy data plane: a relay can store the view in its ring
buffer and queue the *same* view for its downstream send without the
payload ever being copied in userspace (see ``docs/PROTOCOL.md``,
"Data path & buffer ownership").

The decoder's buffers are append-only while live: bytes land once (via
``feed`` or ``recv_into``) and are parsed in place.  When a buffer's tail
cannot hold the next frame the decoder *rotates* to a fresh buffer from
its :class:`~repro.core.buffers.BufferPool`, carrying over at most one
partial frame; in the drained steady state of a backpressured pipeline the
carry-over is empty and rotation copies nothing.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Optional, Tuple, Union

from .buffers import BufferPool
from .errors import FramingError
from .messages import (
    Data,
    End,
    Forget,
    Get,
    Message,
    Op,
    Passed,
    PGet,
    Ping,
    Pong,
    Quit,
    Report,
)
from .perfstats import PerfStats, get_stats

_U64 = struct.Struct(">Q")
_2U64 = struct.Struct(">QQ")

#: Number of u64 fields following the opcode byte, per opcode.
_FIELD_COUNT = {
    Op.GET: 1,
    Op.PGET: 2,
    Op.FORGET: 1,
    Op.DATA: 2,
    Op.END: 1,
    Op.QUIT: 0,
    Op.REPORT: 1,
    Op.PASSED: 0,
    Op.PING: 1,
    Op.PONG: 1,
}

#: One precompiled (opcode + fields) struct per opcode: a header encodes
#: or decodes in a single ``pack``/``unpack_from`` call.
_HEADER_STRUCTS = {
    op: struct.Struct(">B" + "Q" * count) for op, count in _FIELD_COUNT.items()
}

#: Opcodes whose header is followed by a payload of ``size`` bytes.
_PAYLOAD_OPS = frozenset({Op.DATA, Op.REPORT})

MAX_FRAME_PAYLOAD = 1 << 34  # 16 GiB; sanity bound against corrupt headers

#: Largest payload the incremental decoder will buffer contiguously.  A
#: frame must fit in one receive buffer for its payload view to be a
#: single memoryview; headers claiming more than this are treated as
#: corrupt rather than allocating gigabytes eagerly.
MAX_RECEIVE_ALLOC = 1 << 30  # 1 GiB

_MAX_HEADER = 1 + 8 * 2  # largest header on the wire (DATA/PGET)

#: Buffer payloads handed out by the decoder: zero-copy views.
Payload = Union[bytes, memoryview]


def encode_header(msg: Message) -> bytes:
    """Serialize a message header (opcode + fields), without any payload."""
    op = msg.op
    if op is Op.GET:
        args = (op, msg.offset)
    elif op is Op.PGET:
        args = (op, msg.offset, msg.until)
    elif op is Op.FORGET:
        args = (op, msg.min_offset)
    elif op is Op.DATA:
        args = (op, msg.offset, msg.size)
    elif op is Op.END:
        args = (op, msg.total)
    elif op is Op.REPORT:
        args = (op, msg.size)
    elif op in (Op.PING, Op.PONG):
        args = (op, msg.nonce)
    else:  # QUIT, PASSED
        args = (op,)
    try:
        return _HEADER_STRUCTS[op].pack(*args)
    except struct.error:
        raise FramingError(f"field out of u64 range in {msg!r}") from None


def _decode_fields(op: Op, raw, offset: int) -> Message:
    """Decode the fixed fields following the opcode, reading ``raw`` in
    place from ``offset`` (no intermediate slice copies)."""
    if op is Op.GET:
        return Get(_U64.unpack_from(raw, offset)[0])
    if op is Op.PGET:
        o, t = _2U64.unpack_from(raw, offset)
        if t < o:
            raise FramingError(f"PGET range reversed on wire: [{o}, {t})")
        return PGet(o, t)
    if op is Op.FORGET:
        return Forget(_U64.unpack_from(raw, offset)[0])
    if op is Op.DATA:
        o, s = _2U64.unpack_from(raw, offset)
        if s > MAX_FRAME_PAYLOAD:
            raise FramingError(f"DATA payload too large: {s}")
        return Data(o, s)
    if op is Op.END:
        return End(_U64.unpack_from(raw, offset)[0])
    if op is Op.QUIT:
        return Quit()
    if op is Op.REPORT:
        (s,) = _U64.unpack_from(raw, offset)
        if s > MAX_FRAME_PAYLOAD:
            raise FramingError(f"REPORT payload too large: {s}")
        return Report(s)
    if op is Op.PASSED:
        return Passed()
    if op is Op.PING:
        return Ping(_U64.unpack_from(raw, offset)[0])
    if op is Op.PONG:
        return Pong(_U64.unpack_from(raw, offset)[0])
    raise FramingError(f"unhandled opcode {op}")  # pragma: no cover


def header_size(op: Op) -> int:
    """Total header length in bytes for the given opcode."""
    return 1 + 8 * _FIELD_COUNT[op]


def payload_size(msg: Message) -> int:
    """Payload length that must follow this header on the wire."""
    if msg.op in _PAYLOAD_OPS:
        return msg.size
    return 0


class FrameDecoder:
    """Incremental decoder: bytes in, complete ``(message, payload)`` out.

    The decoder is strict: an unknown opcode or an over-large payload
    raises :class:`FramingError` immediately.

    Bytes enter either through :meth:`feed` (sans-io callers: simulator,
    tests) or, copy-free, through the :meth:`writable`/:meth:`bytes_written`
    pair (``sock.recv_into(decoder.writable())``).  Payloads come out as
    memoryviews into the receive buffer; the buffer is recycled through
    the :class:`~repro.core.buffers.BufferPool` only once every view has
    been dropped, so consumers may hold payloads as long as they need.
    """

    def __init__(
        self,
        *,
        pool: Optional[BufferPool] = None,
        stats: Optional[PerfStats] = None,
    ) -> None:
        self._pool = pool
        self._stats = stats if stats is not None else get_stats()
        self._segment = pool.segment_size if pool is not None else 256 * 1024
        self._buf: Optional[bytearray] = None
        self._mv: Optional[memoryview] = None  # cached full-buffer view
        self._cap = 0
        self._pos = 0   # parse position
        self._fill = 0  # one past the last valid byte
        self._pending: Optional[Message] = None  # header seen, payload pending
        #: Payload size of the most recent payload-bearing header — used
        #: to rotate *before* the next frame would straddle the buffer end.
        self._last_need = 0

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------

    def _acquire(self, min_size: int) -> bytearray:
        if self._pool is not None:
            return self._pool.acquire(min_size)
        return bytearray(max(self._segment, min_size))

    def _release_current(self) -> None:
        if self._mv is not None:
            self._mv.release()
            self._mv = None
        if self._buf is not None and self._pool is not None:
            self._pool.recycle(self._buf)
        self._buf = None

    def _rotate(self, min_free: int) -> None:
        """Switch to a fresh buffer, carrying over the unparsed tail.

        In the drained steady state the tail is empty and nothing is
        copied.  A non-empty tail is either a partial header (not payload,
        not counted) or — when a payload-bearing frame straddles the old
        buffer's end — partial payload bytes, which are the one counted
        copy of this data plane.
        """
        old_buf, tail_lo, tail_hi = self._buf, self._pos, self._fill
        tail = tail_hi - tail_lo
        new = self._acquire(tail + min_free)
        if tail:
            new[:tail] = old_buf[tail_lo:tail_hi]
            if self._pending is not None:
                # The tail is (partially received) payload of the pending
                # frame: this is a real payload copy — count it.
                self._stats.copied(tail)
        self._release_current()
        self._buf = new
        self._cap = len(new)
        self._pos = 0
        self._fill = tail

    def _ensure_room(self, nbytes: int) -> None:
        """Make space to append ``nbytes`` at the fill position."""
        if self._buf is None:
            self._buf = self._acquire(max(nbytes, self._last_need + _MAX_HEADER))
            self._cap = len(self._buf)
            self._pos = self._fill = 0
        elif self._cap - self._fill < nbytes:
            self._rotate(nbytes)

    def _ensure_payload_room(self, need: int) -> None:
        """Guarantee the pending payload ``[pos, pos+need)`` fits in the
        current buffer, rotating (with partial-payload carry) if not.

        Must be called with ``_pending`` already set: any tail carried by
        the rotation is payload prefix of that frame and must be counted.
        """
        if self._pos + need > self._cap:
            self._rotate(need + _MAX_HEADER)

    def _maybe_turn_page(self) -> None:
        """Between frames, rotate copy-free once the buffer is drained and
        too full to hold another frame of the recently seen size."""
        if (
            self._buf is not None
            and self._pos == self._fill
            and self._cap - self._pos < self._last_need + _MAX_HEADER
        ):
            self._rotate(self._last_need + _MAX_HEADER)

    # ------------------------------------------------------------------
    # Byte ingestion
    # ------------------------------------------------------------------

    def feed(self, data) -> None:
        """Append freshly received bytes (bytes-like) to the buffer.

        Sans-io convenience: copies ``data`` in.  Socket readers should
        prefer ``recv_into(decoder.writable())`` + :meth:`bytes_written`,
        which land bytes in the buffer with no userspace copy at all.
        """
        n = len(data)
        if n == 0:
            return
        self._ensure_room(n)
        self._buf[self._fill: self._fill + n] = data
        self._fill += n

    def writable(self, min_size: int = 1) -> memoryview:
        """A view of free buffer space for ``recv_into`` to fill.

        Call :meth:`bytes_written` with the receive count afterwards.  The
        returned view is only valid until the next decoder call; callers
        should release (or drop) it promptly.
        """
        self._ensure_room(min_size)
        if self._mv is None:
            self._mv = memoryview(self._buf)
        return self._mv[self._fill: self._cap]

    def bytes_written(self, n: int) -> None:
        """Commit ``n`` bytes written into :meth:`writable`'s view."""
        if n < 0 or self._fill + n > self._cap:
            raise FramingError(f"bytes_written({n}) overflows receive buffer")
        self._fill += n

    @property
    def buffered(self) -> int:
        """Bytes currently buffered and not yet consumed."""
        return self._fill - self._pos

    def close(self) -> None:
        """Drop the current buffer (recycling it to the pool)."""
        self._release_current()
        self._cap = self._pos = self._fill = 0

    # ------------------------------------------------------------------
    # Frame extraction
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[Message, Payload]]:
        return self

    def __next__(self) -> Tuple[Message, Payload]:
        item = self.try_pop()
        if item is None:
            raise StopIteration
        return item

    def _payload_view(self, need: int) -> memoryview:
        if self._mv is None:
            self._mv = memoryview(self._buf)
        return self._mv[self._pos: self._pos + need]

    def try_pop(self) -> Optional[Tuple[Message, Payload]]:
        """Return the next complete ``(message, payload)``, or ``None``.

        ``payload`` is a zero-copy memoryview for ``DATA``/``REPORT`` and
        ``b""`` otherwise.
        """
        if self._pending is not None:
            need = payload_size(self._pending)
            if self._fill - self._pos < need:
                return None
            payload = self._payload_view(need)
            self._pos += need
            msg, self._pending = self._pending, None
            self._stats.frames_decoded += 1
            self._maybe_turn_page()
            return msg, payload

        avail = self._fill - self._pos
        if avail <= 0:
            return None
        op_byte = self._buf[self._pos]
        try:
            op = Op(op_byte)
        except ValueError:
            raise FramingError(f"unknown opcode byte {op_byte:#04x}") from None
        hsize = header_size(op)
        if avail < hsize:
            if self._cap - self._fill < hsize - avail:
                # Not even the rest of this header fits: rotate now (the
                # tail is header bytes only — a copy-free-in-payload-terms
                # move of at most 16 bytes).
                self._rotate(_MAX_HEADER)
            return None
        msg = _decode_fields(op, self._buf, self._pos + 1)
        self._pos += hsize
        need = payload_size(msg)
        if need == 0:
            self._stats.frames_decoded += 1
            self._maybe_turn_page()
            return msg, b""
        if need > MAX_RECEIVE_ALLOC:
            raise FramingError(
                f"payload of {need} bytes exceeds receive allocation "
                f"cap {MAX_RECEIVE_ALLOC}"
            )
        self._last_need = need
        self._pending = msg
        self._ensure_payload_room(need)
        return self.try_pop()


# ---------------------------------------------------------------------------
# Blocking helpers for file-like transports (CLI pipes, tests).
# ---------------------------------------------------------------------------

def _read_exact(stream: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    parts = []
    remaining = n
    while remaining > 0:
        piece = stream.read(remaining)
        if not piece:
            raise ConnectionError(f"connection closed with {remaining} bytes pending")
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


def write_message(stream: BinaryIO, msg: Message, payload: Payload = b"") -> None:
    """Write a full frame (header + payload) and flush."""
    expected = payload_size(msg)
    if len(payload) != expected:
        raise FramingError(
            f"{msg!r} requires {expected} payload bytes, got {len(payload)}"
        )
    stream.write(encode_header(msg))
    if payload:
        stream.write(payload)
    stream.flush()


def read_message(stream: BinaryIO) -> Tuple[Message, bytes]:
    """Read one full frame, blocking until complete.

    Raises ``ConnectionError`` if the stream ends mid-frame or before any
    byte is read (callers treat both as a lost peer).
    """
    first = stream.read(1)
    if not first:
        raise ConnectionError("connection closed before frame")
    try:
        op = Op(first[0])
    except ValueError:
        raise FramingError(f"unknown opcode byte {first[0]:#04x}") from None
    raw = _read_exact(stream, header_size(op) - 1)
    msg = _decode_fields(op, raw, 0)
    need = payload_size(msg)
    payload = _read_exact(stream, need) if need else b""
    return msg, payload
