"""Binary framing of Kascade protocol messages.

Wire format: every message begins with a one-byte opcode followed by the
fixed-size fields of that message, all big-endian unsigned 64-bit integers.
``DATA`` and ``REPORT`` headers are followed by exactly ``size`` bytes of
payload.

Two decoding interfaces are provided:

* :class:`FrameDecoder` — an incremental (sans-io) decoder: feed it bytes
  as they arrive, pop complete messages.  Used by the simulator, unit
  tests, and anything with its own event loop.
* :func:`read_message` / :func:`write_message` — blocking helpers over a
  file-like object with ``read``/``write``/``flush``.  Used by the real TCP
  runtime (sockets wrapped with ``makefile``).

Payloads are surfaced separately from headers: decoding yields
``(message, payload)`` pairs where ``payload`` is ``b""`` for payload-less
messages.  Keeping payloads as opaque bytes lets relays forward data
without re-framing costs.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Optional, Tuple

from .errors import FramingError
from .messages import (
    Data,
    End,
    Forget,
    Get,
    Message,
    Op,
    Passed,
    PGet,
    Ping,
    Pong,
    Quit,
    Report,
)

_U64 = struct.Struct(">Q")
_2U64 = struct.Struct(">QQ")

#: Number of u64 fields following the opcode byte, per opcode.
_FIELD_COUNT = {
    Op.GET: 1,
    Op.PGET: 2,
    Op.FORGET: 1,
    Op.DATA: 2,
    Op.END: 1,
    Op.QUIT: 0,
    Op.REPORT: 1,
    Op.PASSED: 0,
    Op.PING: 1,
    Op.PONG: 1,
}

#: Opcodes whose header is followed by a payload of ``size`` bytes.
_PAYLOAD_OPS = frozenset({Op.DATA, Op.REPORT})

MAX_FRAME_PAYLOAD = 1 << 34  # 16 GiB; sanity bound against corrupt headers


def encode_header(msg: Message) -> bytes:
    """Serialize a message header (opcode + fields), without any payload."""
    op = msg.op
    if op is Op.GET:
        fields = (msg.offset,)
    elif op is Op.PGET:
        fields = (msg.offset, msg.until)
    elif op is Op.FORGET:
        fields = (msg.min_offset,)
    elif op is Op.DATA:
        fields = (msg.offset, msg.size)
    elif op is Op.END:
        fields = (msg.total,)
    elif op is Op.REPORT:
        fields = (msg.size,)
    elif op in (Op.PING, Op.PONG):
        fields = (msg.nonce,)
    else:  # QUIT, PASSED
        fields = ()
    out = bytes([op])
    for f in fields:
        if f < 0:
            raise FramingError(f"negative field in {msg!r}")
        out += _U64.pack(f)
    return out


def _decode_fields(op: Op, raw: bytes) -> Message:
    if op is Op.GET:
        return Get(_U64.unpack(raw)[0])
    if op is Op.PGET:
        o, t = _2U64.unpack(raw)
        if t < o:
            raise FramingError(f"PGET range reversed on wire: [{o}, {t})")
        return PGet(o, t)
    if op is Op.FORGET:
        return Forget(_U64.unpack(raw)[0])
    if op is Op.DATA:
        o, s = _2U64.unpack(raw)
        if s > MAX_FRAME_PAYLOAD:
            raise FramingError(f"DATA payload too large: {s}")
        return Data(o, s)
    if op is Op.END:
        return End(_U64.unpack(raw)[0])
    if op is Op.QUIT:
        return Quit()
    if op is Op.REPORT:
        (s,) = _U64.unpack(raw)
        if s > MAX_FRAME_PAYLOAD:
            raise FramingError(f"REPORT payload too large: {s}")
        return Report(s)
    if op is Op.PASSED:
        return Passed()
    if op is Op.PING:
        return Ping(_U64.unpack(raw)[0])
    if op is Op.PONG:
        return Pong(_U64.unpack(raw)[0])
    raise FramingError(f"unhandled opcode {op}")  # pragma: no cover


def header_size(op: Op) -> int:
    """Total header length in bytes for the given opcode."""
    return 1 + 8 * _FIELD_COUNT[op]


def payload_size(msg: Message) -> int:
    """Payload length that must follow this header on the wire."""
    if msg.op in _PAYLOAD_OPS:
        return msg.size
    return 0


class FrameDecoder:
    """Incremental decoder: ``feed`` bytes in, iterate complete messages out.

    The decoder is strict: an unknown opcode or an over-large payload raises
    :class:`FramingError` immediately.  Payload bytes are accumulated and
    returned together with the header message.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pending: Optional[Message] = None  # header seen, payload pending

    def feed(self, data: bytes) -> None:
        """Append freshly received bytes to the internal buffer."""
        self._buf.extend(data)

    @property
    def buffered(self) -> int:
        """Bytes currently buffered and not yet consumed."""
        return len(self._buf)

    def __iter__(self) -> Iterator[Tuple[Message, bytes]]:
        return self

    def __next__(self) -> Tuple[Message, bytes]:
        item = self.try_pop()
        if item is None:
            raise StopIteration
        return item

    def try_pop(self) -> Optional[Tuple[Message, bytes]]:
        """Return the next complete ``(message, payload)``, or ``None``."""
        if self._pending is not None:
            need = payload_size(self._pending)
            if len(self._buf) < need:
                return None
            payload = bytes(self._buf[:need])
            del self._buf[:need]
            msg, self._pending = self._pending, None
            return msg, payload

        if not self._buf:
            return None
        op_byte = self._buf[0]
        try:
            op = Op(op_byte)
        except ValueError:
            raise FramingError(f"unknown opcode byte {op_byte:#04x}") from None
        hsize = header_size(op)
        if len(self._buf) < hsize:
            return None
        msg = _decode_fields(op, bytes(self._buf[1:hsize]))
        del self._buf[:hsize]
        if payload_size(msg) == 0:
            return msg, b""
        self._pending = msg
        return self.try_pop()


# ---------------------------------------------------------------------------
# Blocking helpers for file-like transports (the real TCP runtime).
# ---------------------------------------------------------------------------

def _read_exact(stream: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    parts = []
    remaining = n
    while remaining > 0:
        piece = stream.read(remaining)
        if not piece:
            raise ConnectionError(f"connection closed with {remaining} bytes pending")
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


def write_message(stream: BinaryIO, msg: Message, payload: bytes = b"") -> None:
    """Write a full frame (header + payload) and flush."""
    expected = payload_size(msg)
    if len(payload) != expected:
        raise FramingError(
            f"{msg!r} requires {expected} payload bytes, got {len(payload)}"
        )
    stream.write(encode_header(msg))
    if payload:
        stream.write(payload)
    stream.flush()


def read_message(stream: BinaryIO) -> Tuple[Message, bytes]:
    """Read one full frame, blocking until complete.

    Raises ``ConnectionError`` if the stream ends mid-frame or before any
    byte is read (callers treat both as a lost peer).
    """
    first = stream.read(1)
    if not first:
        raise ConnectionError("connection closed before frame")
    try:
        op = Op(first[0])
    except ValueError:
        raise FramingError(f"unknown opcode byte {first[0]:#04x}") from None
    raw = _read_exact(stream, header_size(op) - 1)
    msg = _decode_fields(op, raw)
    need = payload_size(msg)
    payload = _read_exact(stream, need) if need else b""
    return msg, payload
