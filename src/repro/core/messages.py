"""Kascade protocol messages (paper Fig. 4).

The protocol runs over a reliable ordered byte stream (TCP).  Each message
is a fixed-layout header, optionally followed by a payload (DATA carries
``size`` bytes of stream data, REPORT carries a serialized failure report).

Message inventory, verbatim from the paper:

========  =====================================================
GET(o)    Request stream data from offset *o*
PGET(o,t) Request stream between offset *o* and offset *t*
FORGET(o) Answer to GET/PGET when the asked part is not
          available anymore (recycled buffer); *o* is the
          minimal available offset
DATA(s)   Answer to GET/PGET, followed by *s* bytes of data
END       Signal the end of stream
QUIT      Signal the anticipated end of stream (user interrupt)
REPORT(s) After END or QUIT, a report of *s* bytes is sent
PASSED    Ack that the report reached the first node
========  =====================================================

Two additional control messages implement the liveness check of §III-D1:
``PING``/``PONG`` are exchanged on a short-lived side connection when a
write stalls, to distinguish a dead peer from mere congestion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class Op(enum.IntEnum):
    """Wire opcodes.  Values are part of the wire format — never renumber."""

    GET = 1
    PGET = 2
    FORGET = 3
    DATA = 4
    END = 5
    QUIT = 6
    REPORT = 7
    PASSED = 8
    PING = 9
    PONG = 10


@dataclass(frozen=True)
class Get:
    """Request the stream starting at byte ``offset``."""

    offset: int

    op = Op.GET


@dataclass(frozen=True)
class PGet:
    """Request the half-open byte range ``[offset, until)`` from the head."""

    offset: int
    until: int

    op = Op.PGET

    def __post_init__(self) -> None:
        if self.until < self.offset:
            raise ValueError(f"PGET range reversed: [{self.offset}, {self.until})")

    @property
    def size(self) -> int:
        return self.until - self.offset


@dataclass(frozen=True)
class Forget:
    """The requested range was recycled; ``min_offset`` is the oldest byte
    still available (the paper's FORGET(o))."""

    min_offset: int

    op = Op.FORGET


class Data:
    """Header announcing ``size`` bytes of stream payload at ``offset``.

    The paper's DATA(s) message carries only the chunk size; receivers track
    the offset implicitly.  We carry the explicit offset as well — it costs
    8 bytes per chunk and turns silent desynchronisation bugs into loud
    protocol errors, which matters for a fault-tolerance tool.

    Unlike its siblings this is a hand-written ``__slots__`` class, not a
    frozen dataclass: one is constructed per chunk per hop, and the frozen
    ``object.__setattr__`` constructor is measurably the dearest part of
    that.  repr/eq/hash match what ``@dataclass(frozen=True)`` generated.
    """

    __slots__ = ("offset", "size")

    op = Op.DATA

    def __init__(self, offset: int, size: int) -> None:
        if size < 0:
            raise ValueError(f"negative DATA size: {size}")
        if offset < 0:
            raise ValueError(f"negative DATA offset: {offset}")
        self.offset = offset
        self.size = size

    def __repr__(self) -> str:
        return f"Data(offset={self.offset!r}, size={self.size!r})"

    def __eq__(self, other: object):
        if other.__class__ is Data:
            return (self.offset, self.size) == (other.offset, other.size)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.offset, self.size))

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class End:
    """Normal end of stream; total length is ``total`` bytes."""

    total: int

    op = Op.END


@dataclass(frozen=True)
class Quit:
    """Anticipated end of stream (user interruption or unrecoverable loss)."""

    op = Op.QUIT


@dataclass(frozen=True)
class Report:
    """Header announcing ``size`` bytes of serialized failure report."""

    size: int

    op = Op.REPORT


@dataclass(frozen=True)
class Passed:
    """The final report has reached the first node; senders may quit."""

    op = Op.PASSED


@dataclass(frozen=True)
class Ping:
    """Liveness probe (sent on a side connection when a write stalls)."""

    nonce: int

    op = Op.PING


@dataclass(frozen=True)
class Pong:
    """Answer to a PING, echoing its nonce."""

    nonce: int

    op = Op.PONG


Message = Union[Get, PGet, Forget, Data, End, Quit, Report, Passed, Ping, Pong]

#: Messages that may legally start a data connection from the receiver side.
HANDSHAKE_OPS = frozenset({Op.GET, Op.PGET, Op.PING})
