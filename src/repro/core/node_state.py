"""Per-node transfer state: the sans-io heart of a Kascade node.

A node — head, relay, or tail — tracks one position in the broadcast
stream, keeps the recovery ring buffer, accumulates the failure report,
and answers (re)connection handshakes.  All decisions are pure; the real
TCP runtime (:mod:`repro.runtime`) and unit tests drive this object and
perform the actual I/O.

Protocol rules implemented here (§III-C, §III-D):

* DATA chunks must arrive in stream order; any gap or overlap is a
  protocol error (corrupted pipeline), not silently patched.
* Every received chunk is appended to the ring buffer so the node can
  serve a replacement downstream neighbour after a failure.
* A ``GET(o)`` handshake is answered from the buffer when possible;
  otherwise with ``FORGET(min)`` — on a *relay*, the requester must then
  fetch the hole from the head with ``PGET`` (only the head knows whether
  its source is seekable).
* The failure report merges the upstream report with locally detected
  failures before being forwarded.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Optional

from .chunkstore import ChunkRingBuffer
from .config import KascadeConfig
from .errors import ProtocolError
from .recovery import Offer, OfferKind, SourceKind, negotiate_offset
from .report import FailureRecord, TransferReport


class Phase(enum.Enum):
    """Lifecycle of a node during one broadcast."""

    STREAMING = "streaming"      #: receiving/forwarding DATA
    ENDED = "ended"              #: END seen; report exchange in progress
    ABORTED = "aborted"          #: QUIT seen or unrecoverable loss
    DONE = "done"                #: PASSED exchanged; node may exit


class NodeTransferState:
    """Mutable transfer state of one node in the pipeline."""

    def __init__(
        self,
        name: str,
        config: KascadeConfig,
        *,
        source_kind: Optional[SourceKind] = None,
    ) -> None:
        """``source_kind`` is set on the head node only; relays pass None."""
        self.name = name
        self.config = config
        self.source_kind = source_kind
        self.buffer = ChunkRingBuffer(config.buffer_bytes)
        self.report = TransferReport()
        self.phase = Phase.STREAMING
        self.total_size: Optional[int] = None
        # Integrity mode: hash the stream as it flows (§ verify_digest).
        self._hasher = hashlib.sha256() if config.verify_digest else None

    # ------------------------------------------------------------------
    # Positions
    # ------------------------------------------------------------------

    @property
    def offset(self) -> int:
        """Next stream byte this node expects (== bytes received so far)."""
        return self.buffer.end_offset

    @property
    def is_head(self) -> bool:
        return self.source_kind is not None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def on_data(self, offset: int, payload) -> None:
        """Account for a received (or head-read) chunk at ``offset``.

        ``payload`` is any bytes-like buffer and is retained by reference
        in the ring buffer (zero-copy); the runtime's buffer-pool
        discipline guarantees the bytes stay valid while buffered.

        Raises :class:`ProtocolError` on out-of-order data: a relay that
        tolerated gaps would corrupt every node downstream of it.
        """
        buffer = self.buffer
        if self.phase is not Phase.STREAMING:
            raise ProtocolError(
                f"{self.name}: DATA after stream end (phase={self.phase.value})"
            )
        if offset != buffer.end_offset:
            raise ProtocolError(
                f"{self.name}: DATA at offset {offset}, expected {self.offset}"
            )
        buffer.append(payload)
        if self._hasher is not None:
            self._hasher.update(payload)

    def on_data_spliced(self, offset: int, size: int) -> None:
        """Account for a chunk that was relayed entirely in the kernel.

        The event-loop data plane's ``os.splice`` path moves payload
        bytes predecessor→successor without them ever entering Python,
        so there is no buffer to retain (or hash): the ring window
        advances empty (see :meth:`ChunkRingBuffer.note_advance`).
        Callers must not enable ``verify_digest`` on a spliced node —
        there are no bytes to feed the hasher.
        """
        if self.phase is not Phase.STREAMING:
            raise ProtocolError(
                f"{self.name}: DATA after stream end (phase={self.phase.value})"
            )
        if offset != self.offset:
            raise ProtocolError(
                f"{self.name}: DATA at offset {offset}, expected {self.offset}"
            )
        if self._hasher is not None:
            raise ProtocolError(
                f"{self.name}: spliced relay cannot hash the stream "
                f"(verify_digest requires the userspace path)"
            )
        self.buffer.note_advance(size)

    def on_end(self, total: int) -> None:
        """Handle END: the stream is complete at ``total`` bytes."""
        if self.phase is not Phase.STREAMING:
            raise ProtocolError(f"{self.name}: duplicate END")
        if total != self.offset:
            raise ProtocolError(
                f"{self.name}: END claims {total} bytes but received {self.offset}"
            )
        self.total_size = total
        self.phase = Phase.ENDED

    def on_quit(self) -> None:
        """Handle QUIT: anticipated end (user interrupt / upstream abort)."""
        if self.phase in (Phase.DONE,):
            raise ProtocolError(f"{self.name}: QUIT after completion")
        self.phase = Phase.ABORTED

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------

    def record_failure(self, node: str, reason: str) -> FailureRecord:
        """Record that *this* node detected ``node``'s death."""
        rec = FailureRecord(
            node=node, detected_by=self.name, at_offset=self.offset, reason=reason
        )
        self.report.add(rec)
        return rec

    def merge_upstream_report(self, raw: bytes) -> TransferReport:
        """Merge the upstream REPORT payload *before* local records.

        The report travels head→tail, so upstream failures were detected
        earlier in pipeline order; keeping them first preserves the
        narrative order of the final report.  The head's source digest
        (integrity mode) is carried through.
        """
        upstream = TransferReport.decode(raw)
        merged = TransferReport(
            upstream.failures + self.report.failures,
            source_digest=upstream.source_digest or self.report.source_digest,
        )
        self.report = merged
        return merged

    # ------------------------------------------------------------------
    # Integrity (verify_digest mode)
    # ------------------------------------------------------------------

    @property
    def digest(self) -> Optional[bytes]:
        """SHA-256 of the stream received so far (None unless enabled)."""
        if self._hasher is None:
            return None
        return self._hasher.digest()

    def attach_source_digest(self) -> None:
        """Head-side: publish this node's digest in its report."""
        if self._hasher is not None:
            self.report.source_digest = self.digest

    def verify_against_report(self) -> Optional[bool]:
        """Receiver-side: compare the local digest with the head's.

        Returns ``True``/``False`` for a definite verdict, ``None`` when
        either side did not hash (mode off, or a pre-integrity head).
        """
        if self._hasher is None or self.report.source_digest is None:
            return None
        return self.digest == self.report.source_digest

    # ------------------------------------------------------------------
    # Handshakes (sender side)
    # ------------------------------------------------------------------

    def answer_get(self, requested: int) -> Offer:
        """Answer a downstream ``GET(requested)`` from this node's buffer.

        On the head, the source kind decides between PGET redirection and
        FORGET; on a relay the requester is always redirected to the head
        (``NEED_HEAD_RANGE``) because only the head knows whether the
        missing range can be re-read.
        """
        kind = self.source_kind if self.is_head else SourceKind.SEEKABLE_FILE
        offer = negotiate_offset(
            requested, self.buffer.min_offset, self.buffer.end_offset, kind
        )
        return offer

    def answer_pget(self, offset: int, until: int) -> Offer:
        """Head-only: answer a PGET for ``[offset, until)``.

        Returns SERVE_FROM_BUFFER when the head can re-read the range
        (seekable source — served from the source, not the ring buffer),
        FORGET otherwise.
        """
        if not self.is_head:
            raise ProtocolError(f"{self.name}: PGET received by non-head node")
        if until > self.offset:
            raise ProtocolError(
                f"{self.name}: PGET until {until} beyond produced {self.offset}"
            )
        if self.source_kind is SourceKind.SEEKABLE_FILE:
            return Offer(OfferKind.SERVE_FROM_BUFFER, offset)
        # Stream head: can the ring buffer still cover it?
        if offset >= self.buffer.min_offset:
            return Offer(OfferKind.SERVE_FROM_BUFFER, offset)
        return Offer(OfferKind.FORGET, self.buffer.min_offset)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def on_passed(self) -> None:
        """The report reached the head; this node may exit."""
        if self.phase not in (Phase.ENDED, Phase.ABORTED):
            raise ProtocolError(
                f"{self.name}: PASSED in phase {self.phase.value}"
            )
        self.phase = Phase.DONE

    @property
    def complete(self) -> bool:
        """Whether the node received the entire stream (END seen)."""
        return self.total_size is not None and self.offset == self.total_size
