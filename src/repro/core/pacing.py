"""Token-bucket pacing for bandwidth-limited broadcasts.

The head uses this to cap the rate it injects the stream into the
pipeline (``KascadeConfig.bandwidth_limit``): every chunk *reserves*
tokens and the bucket answers how long to wait before sending.  The
arithmetic is pure — callers pass the current time and perform the
sleeping — so it is exactly testable and reusable by the simulator.
"""

from __future__ import annotations


class TokenBucket:
    """Virtual-scheduling token bucket.

    ``rate`` is bytes/second; ``burst`` is how many bytes may be sent
    back-to-back after an idle period before pacing kicks in (defaults
    to a quarter-second's worth, enough to keep pipelining smooth
    without defeating the limit).
    """

    def __init__(self, rate: float, burst: float | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.burst = burst if burst is not None else rate * 0.25
        if self.burst < 0:
            raise ValueError(f"burst must be >= 0, got {self.burst}")
        self._next_free: float | None = None  # virtual time the line frees

    def reserve(self, nbytes: float, now: float) -> float:
        """Reserve capacity for ``nbytes`` at time ``now``.

        Returns the delay (seconds, possibly 0) the caller must wait
        before transmitting the reserved bytes.  Reservations commit
        immediately: calling again assumes the previous bytes will be
        sent as scheduled.
        """
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if self._next_free is None:
            self._next_free = now
        # Idle credit: the line may be behind `now` by at most `burst`.
        earliest = max(self._next_free, now - self.burst / self.rate)
        delay = max(0.0, earliest - now)
        self._next_free = earliest + nbytes / self.rate
        return delay

    @property
    def backlog_seconds(self) -> float:
        """How far ahead of real time reservations currently run.

        Only meaningful relative to the ``now`` of the last reserve.
        """
        return 0.0 if self._next_free is None else max(0.0, self._next_free)
