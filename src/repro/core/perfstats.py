"""Data-plane performance counters.

The zero-copy data plane (§III-A: a pipelined chain should move data at
near-link speed) is only trustworthy if its copy behaviour is *observable*:
"we believe the relay path doesn't copy" is an assumption, a counter that
tests can assert on is an invariant.  Every component of the runtime data
path (socket streams, frame decoder, buffer pool) increments a
:class:`PerfStats` instance:

* ``payload_copy_events`` / ``payload_bytes_copied`` — each time stream
  payload bytes are memcpy'd in userspace (header bytes are *not*
  counted; neither is the unavoidable kernel↔user transfer of a
  ``recv``/``send``).
* ``syscalls_*`` — socket system calls issued, split by kind.
* ``frames_decoded`` / ``frames_sent`` — wire frames through the decoder
  and the vectored send queue.
* ``pool_*`` — buffer-pool allocations vs. reuses.
* ``sink_stall_s`` / ``writeback_queue_hwm`` — time the relay spent
  blocked on a full sink-writeback queue (seconds, a float), and the
  queue's high-water mark in chunks (a maximum, not a sum — deltas
  across runs are only meaningful from a zeroed instance).
* ``readahead_hits`` / ``readahead_misses`` — head-node reads served
  from the prefetch queue vs. reads that had to wait for the source.
* ``splice_syscalls`` / ``splice_bytes`` — ``os.splice`` calls issued by
  the event-loop relay's kernel path, and the payload bytes they moved
  (socket→pipe and pipe→socket legs both count; every spliced byte is a
  byte that never entered Python).
* ``reactor_wakeups`` — times the event-loop reactor returned from its
  ``select()`` (readiness or timer) and dispatched tasks.
* ``stripe_merge_hwm`` — high-water mark, in bytes, of the striped
  broadcast's in-order merge buffer (a maximum, not a sum).
* ``evloop_stall_s`` — seconds (a float) the reactor spent blocked in
  ``select()`` with at least one task waiting — idle wire time, the
  event-loop analogue of a blocked thread.
* ``sim_events_processed`` / ``sim_cancelled_skips`` — discrete-event
  engine dispatches, and heap entries popped dead (cancelled before
  their time came).  ``sim_heap_peak`` is the event queue's high-water
  mark (a maximum, not a sum).
* ``solver_rounds`` / ``solver_full_rebuilds`` — fluid max–min solver
  invocations, and how many of them could not reuse the incremental
  problem (topology changed under it).  A healthy large run has many
  rounds and few rebuilds.
* ``cache_hits`` / ``cache_misses`` / ``bytes_from_cache`` /
  ``cache_evictions`` — the content-addressed chunk cache
  (:mod:`repro.core.cache`): chunk lookups served locally vs. not, the
  payload bytes those hits avoided re-fetching over the wire, and
  entries dropped by LRU eviction.  A repeat broadcast of a cached
  artifact should show ``bytes_from_cache`` ≈ stream size per receiver
  and zero data-plane ``bytes_received``.
* ``sessions_active`` — daemon only: high-water mark of concurrently
  running broadcast sessions on one fleet (a maximum, not a sum).
* ``launch_amortized_s`` — daemon only: the fleet's one-time windowed
  launch cost divided by the sessions that have reused it so far
  (seconds, a float; shrinks as the warm fleet amortises startup).

Components default to the module-global :func:`get_stats` instance so
production code needs no plumbing; tests construct a private instance and
pass it down to get isolated, deterministic counts.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

_COUNTERS = (
    "payload_copy_events",
    "payload_bytes_copied",
    "syscalls_recv",
    "syscalls_send",
    "syscalls_sendfile",
    "frames_decoded",
    "frames_sent",
    "bytes_received",
    "bytes_sent",
    "pool_allocations",
    "pool_reuses",
    "sink_stall_s",
    "writeback_queue_hwm",
    "readahead_hits",
    "readahead_misses",
    "splice_syscalls",
    "splice_bytes",
    "reactor_wakeups",
    "evloop_stall_s",
    "stripe_merge_hwm",
    "sim_events_processed",
    "sim_heap_peak",
    "sim_cancelled_skips",
    "solver_rounds",
    "solver_full_rebuilds",
    "cache_hits",
    "cache_misses",
    "bytes_from_cache",
    "cache_evictions",
    "sessions_active",
    "launch_amortized_s",
)


class PerfStats:
    """Mutable counter set for one data path (or the whole process).

    Plain integer counters; increments are cheap enough for the per-frame
    hot path.  No locking: counter updates are single bytecode-level
    read-modify-writes under the GIL and the tests that assert exact
    values use per-test instances touched by controlled threads.
    """

    __slots__ = _COUNTERS + ("_t0",)

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter and restart the frames/s clock."""
        for name in _COUNTERS:
            setattr(self, name, 0)
        self._t0 = time.monotonic()

    # -- recording (hot path) -------------------------------------------

    def copied(self, nbytes: int) -> None:
        """Record one userspace copy of ``nbytes`` of *payload* data."""
        self.payload_copy_events += 1
        self.payload_bytes_copied += nbytes

    def recv_syscall(self, nbytes: int) -> None:
        """Record one receive syscall that returned ``nbytes``."""
        self.syscalls_recv += 1
        self.bytes_received += nbytes

    def send_syscall(self, nbytes: int) -> None:
        """Record one send/sendmsg syscall that accepted ``nbytes``."""
        self.syscalls_send += 1
        self.bytes_sent += nbytes

    def sendfile_syscall(self, nbytes: int) -> None:
        """Record one sendfile syscall that moved ``nbytes``."""
        self.syscalls_sendfile += 1
        self.bytes_sent += nbytes

    def sink_stalled(self, seconds: float) -> None:
        """Record time the relay spent blocked on the writeback queue."""
        self.sink_stall_s += seconds

    def splice_syscall(self, nbytes: int) -> None:
        """Record one ``os.splice`` call that moved ``nbytes``."""
        self.splice_syscalls += 1
        self.splice_bytes += nbytes

    def reactor_stalled(self, seconds: float) -> None:
        """Record time the reactor slept in ``select()`` awaiting I/O."""
        self.evloop_stall_s += seconds

    def note_writeback_depth(self, depth: int) -> None:
        """Track the writeback queue's high-water mark (in chunks)."""
        if depth > self.writeback_queue_hwm:
            self.writeback_queue_hwm = depth

    def note_merge_buffered(self, nbytes: int) -> None:
        """Track the stripe-merge reorder buffer's high-water mark (bytes)."""
        if nbytes > self.stripe_merge_hwm:
            self.stripe_merge_hwm = nbytes

    def sim_ran(self, processed: int, skips: int, heap_peak: int) -> None:
        """Flush one engine run's dispatch counts (called once per
        :meth:`repro.simnet.engine.Engine.run`, not per event)."""
        self.sim_events_processed += processed
        self.sim_cancelled_skips += skips
        if heap_peak > self.sim_heap_peak:
            self.sim_heap_peak = heap_peak

    def solver_solved(self, full_rebuild: bool) -> None:
        """Record one fluid max–min solve."""
        self.solver_rounds += 1
        if full_rebuild:
            self.solver_full_rebuilds += 1

    def cache_hit(self, nbytes: int) -> None:
        """Record one chunk served from the content-addressed cache."""
        self.cache_hits += 1
        self.bytes_from_cache += nbytes

    def note_sessions_active(self, count: int) -> None:
        """Track the concurrent-session high-water mark (daemon)."""
        if count > self.sessions_active:
            self.sessions_active = count

    # -- reporting -------------------------------------------------------

    @property
    def syscalls(self) -> int:
        """Total data-moving syscalls across all kinds."""
        return (self.syscalls_recv + self.syscalls_send
                + self.syscalls_sendfile + self.splice_syscalls)

    def frames_per_second(self, now: Optional[float] = None) -> float:
        """Decoded frames per second since construction / :meth:`reset`."""
        elapsed = (now if now is not None else time.monotonic()) - self._t0
        if elapsed <= 0:
            return 0.0
        return self.frames_decoded / elapsed

    def snapshot(self) -> Dict[str, int]:
        """Copy of every counter, for logging or JSON export."""
        return {name: getattr(self, name) for name in _COUNTERS}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"PerfStats({parts or 'all zero'})"


_GLOBAL = PerfStats()


def get_stats() -> PerfStats:
    """The process-wide default counter set."""
    return _GLOBAL


def reset_stats() -> None:
    """Zero the process-wide counters (benchmark harness hook)."""
    _GLOBAL.reset()
