"""Pipeline planning: node ordering and chain construction (§III-A).

Kascade organises the head node plus all receivers in a chain: node *i*
connects to node *i+1*, and the last node connects back to the head to
return the final report.  Performance hinges on the chain following the
physical topology: when nodes of the same switch are contiguous in the
chain, each network link is crossed exactly once per direction.

Node ordering strategies reproduce the paper's options:

* :func:`order_by_hostname` — the default: sort by the number embedded in
  the host name, assuming numbering matches rack topology ("nodes 1 to 30
  are on the first switch...").
* custom order — the caller provides the exact sequence;
* :func:`order_randomly` — the adversarial ordering of §IV-C (Fig. 10).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .errors import PipelineError

_NUM_RE = re.compile(r"(\d+)")


def hostname_sort_key(name: str) -> Tuple:
    """Natural-sort key: alternating text and integer components.

    ``node-2`` sorts before ``node-10``, and ``paradent-3`` groups with the
    other ``paradent-*`` hosts before any ``parapide-*`` host — exactly the
    "logical ordering matches physical topology" assumption of the paper.
    """
    parts = _NUM_RE.split(name)
    # Text parts compare as strings, numeric parts as ints.  Wrap each part
    # in a (kind, value) pair so str/int never compare directly.
    return tuple(
        (0, int(p)) if p.isdigit() else (1, p) for p in parts
    )


def order_by_hostname(nodes: Sequence[str]) -> List[str]:
    """Topology-aware default ordering: natural sort on host names."""
    return sorted(nodes, key=hostname_sort_key)


def order_randomly(nodes: Sequence[str], rng: np.random.Generator) -> List[str]:
    """Adversarial random ordering (Fig. 10's experiment)."""
    out = list(nodes)
    perm = rng.permutation(len(out))
    return [out[i] for i in perm]


@dataclass(frozen=True)
class PipelinePlan:
    """An ordered broadcast chain: ``head`` followed by the receivers.

    The plan is immutable; failure handling never re-plans, it only *skips*
    dead nodes (see :mod:`repro.core.recovery`), matching the tool's
    behaviour of keeping the original node list on every node.
    """

    head: str
    receivers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.head:
            raise PipelineError("pipeline needs a head node")
        if not self.receivers:
            raise PipelineError("pipeline needs at least one receiver")
        chain = (self.head,) + self.receivers
        if len(set(chain)) != len(chain):
            dupes = sorted({n for n in chain if chain.count(n) > 1})
            raise PipelineError(f"duplicate nodes in pipeline: {dupes}")

    @classmethod
    def build(
        cls,
        head: str,
        receivers: Sequence[str],
        *,
        order: str = "hostname",
        rng: Optional[np.random.Generator] = None,
    ) -> "PipelinePlan":
        """Build a plan with the requested ordering strategy.

        ``order`` is ``"hostname"`` (default, topology-aware), ``"given"``
        (keep the caller's sequence) or ``"random"`` (requires ``rng``).
        """
        if order == "hostname":
            ordered = order_by_hostname(receivers)
        elif order == "given":
            ordered = list(receivers)
        elif order == "random":
            if rng is None:
                raise PipelineError("random ordering requires an rng")
            ordered = order_randomly(receivers, rng)
        else:
            raise PipelineError(f"unknown ordering strategy: {order!r}")
        return cls(head=head, receivers=tuple(ordered))

    # ------------------------------------------------------------------
    # Chain navigation
    # ------------------------------------------------------------------

    @property
    def chain(self) -> Tuple[str, ...]:
        """Head followed by receivers, in transfer order."""
        return (self.head,) + self.receivers

    def __len__(self) -> int:
        return len(self.chain)

    def index_of(self, node: str) -> int:
        """Position of ``node`` in the chain (0 = head)."""
        try:
            return self.chain.index(node)
        except ValueError:
            raise PipelineError(f"node {node!r} not in pipeline") from None

    def successor(self, node: str) -> Optional[str]:
        """The immediate downstream neighbour, or ``None`` for the tail."""
        i = self.index_of(node)
        chain = self.chain
        return chain[i + 1] if i + 1 < len(chain) else None

    def predecessor(self, node: str) -> Optional[str]:
        """The immediate upstream neighbour, or ``None`` for the head."""
        i = self.index_of(node)
        return self.chain[i - 1] if i > 0 else None

    def successors_after(self, node: str) -> Tuple[str, ...]:
        """All nodes strictly after ``node`` in chain order."""
        return self.chain[self.index_of(node) + 1:]

    def is_tail(self, node: str, dead: Sequence[str] = ()) -> bool:
        """Whether ``node`` is the last *alive* node of the chain."""
        dead_set = set(dead)
        return all(n in dead_set for n in self.successors_after(node))
