"""Explicit broadcast schedules: who feeds whom, per stripe.

Historically the chain was implied by position: a node's predecessor and
successor fell out of its index in one :class:`~repro.core.pipeline.
PipelinePlan`.  Striped broadcast breaks that assumption — with ``k``
stripes a node forwards stripe ``j`` to a (possibly different) successor
per stripe — so the schedule becomes first-class data:

* :class:`StripePlan` — one stripe's chain.  A frozen subclass of
  :class:`PipelinePlan` (same navigation API, so links, recovery, and
  every node implementation consume it unchanged) annotated with which
  stripe it carries out of how many.
* :class:`ChainPlan` — the whole schedule: one :class:`StripePlan` per
  stripe over one shared node set.  Serializable (JSON) so the process
  backend can ship it to agents and results can carry it; buildable from
  an ordering strategy (:meth:`ChainPlan.build`) or from explicit
  per-stripe orders (:meth:`ChainPlan.from_orders`, the hook
  :mod:`repro.topology.ordering` uses for switch-aware rotations).

Stripe assignment is round-robin over the global chunk index: chunk
``i`` belongs to stripe ``i % k`` as that stripe's local chunk
``i // k`` (see :mod:`repro.core.stripes` for the byte-level mapping).

The default multi-stripe schedule rotates the ordered receivers by
``(j * n) // k`` positions for stripe ``j``: every node is near the
chain head on some stripe and near the tail on another, so aggregate
ingress/egress load stays balanced while each stripe remains a single
topology-friendly chain.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from .errors import PipelineError
from .pipeline import PipelinePlan

__all__ = ["StripePlan", "ChainPlan", "coerce_stripe_plan"]


@dataclass(frozen=True)
class StripePlan(PipelinePlan):
    """One stripe's chain: a :class:`PipelinePlan` that knows its stripe.

    ``stripe`` is this chain's stripe index, ``of`` the total stripe
    count of the schedule it belongs to.  The defaults (``0 of 1``)
    describe the classic single-chain broadcast, which is why a
    single-stripe plan behaves byte-identically to the legacy path.
    """

    stripe: int = 0
    of: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.of < 1:
            raise PipelineError(f"stripe count must be >= 1, got {self.of}")
        if not 0 <= self.stripe < self.of:
            raise PipelineError(
                f"stripe index {self.stripe} out of range for {self.of} stripe(s)"
            )

    @classmethod
    def from_pipeline(
        cls, plan: PipelinePlan, *, stripe: int = 0, of: int = 1
    ) -> "StripePlan":
        """Annotate a plain pipeline plan with stripe coordinates."""
        return cls(head=plan.head, receivers=plan.receivers,
                   stripe=stripe, of=of)


def _rotated(receivers: Tuple[str, ...], shift: int) -> Tuple[str, ...]:
    shift %= len(receivers)
    return receivers[shift:] + receivers[:shift]


@dataclass(frozen=True)
class ChainPlan:
    """The complete broadcast schedule: one chain per stripe.

    All stripes share the head and the receiver *set*; they may (and for
    ``k > 1`` should) differ in receiver *order*, which is what spreads
    load across the fabric.  The plan is pure data — build it, inspect
    it, serialize it, hand it to any backend via
    ``run_broadcast(..., plan=...)``.
    """

    stripes: Tuple[StripePlan, ...]

    def __post_init__(self) -> None:
        if not self.stripes:
            raise PipelineError("chain plan needs at least one stripe")
        k = len(self.stripes)
        first = self.stripes[0]
        nodes = frozenset(first.chain)
        for j, sp in enumerate(self.stripes):
            if sp.stripe != j or sp.of != k:
                raise PipelineError(
                    f"stripe {j} mislabelled as {sp.stripe} of {sp.of}"
                )
            if sp.head != first.head:
                raise PipelineError(
                    f"stripe {j} has head {sp.head!r}, expected {first.head!r}"
                )
            if frozenset(sp.chain) != nodes:
                raise PipelineError(
                    f"stripe {j} covers a different node set than stripe 0"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        head: str,
        receivers: Sequence[str],
        *,
        stripes: int = 1,
        order: str = "hostname",
        rng: Optional[np.random.Generator] = None,
    ) -> "ChainPlan":
        """Build a schedule from an ordering strategy.

        The base order comes from :meth:`PipelinePlan.build`; stripe
        ``j`` gets that order rotated by ``(j * n) // k``.
        """
        if stripes < 1:
            raise PipelineError(f"stripe count must be >= 1, got {stripes}")
        base = PipelinePlan.build(head, receivers, order=order, rng=rng)
        n = len(base.receivers)
        return cls.from_orders(
            head,
            [_rotated(base.receivers, (j * n) // stripes)
             for j in range(stripes)],
        )

    @classmethod
    def from_orders(
        cls, head: str, orders: Sequence[Sequence[str]]
    ) -> "ChainPlan":
        """Build from explicit per-stripe receiver orders."""
        k = len(orders)
        return cls(tuple(
            StripePlan(head=head, receivers=tuple(order), stripe=j, of=k)
            for j, order in enumerate(orders)
        ))

    @classmethod
    def single(cls, head: str, receivers: Sequence[str]) -> "ChainPlan":
        """The classic one-chain schedule over the given order."""
        return cls.from_orders(head, [tuple(receivers)])

    @classmethod
    def from_pipeline(cls, plan: PipelinePlan) -> "ChainPlan":
        """Lift a legacy single-chain plan into a schedule."""
        return cls.single(plan.head, plan.receivers)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def head(self) -> str:
        return self.stripes[0].head

    @property
    def receivers(self) -> Tuple[str, ...]:
        """The canonical (stripe-0) receiver order."""
        return self.stripes[0].receivers

    @property
    def stripe_count(self) -> int:
        return len(self.stripes)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Head plus receivers in canonical order."""
        return self.stripes[0].chain

    @property
    def base(self) -> PipelinePlan:
        """The canonical order as a plain :class:`PipelinePlan`."""
        return PipelinePlan(head=self.head, receivers=self.receivers)

    def stripe(self, j: int) -> StripePlan:
        """The chain carrying stripe ``j``."""
        if not 0 <= j < len(self.stripes):
            raise PipelineError(
                f"no stripe {j} in a {len(self.stripes)}-stripe plan"
            )
        return self.stripes[j]

    def __iter__(self) -> Iterator[StripePlan]:
        return iter(self.stripes)

    def __len__(self) -> int:
        """Stripe count, matching iteration (``for sp in plan``)."""
        return len(self.stripes)

    # ------------------------------------------------------------------
    # Re-planning
    # ------------------------------------------------------------------

    def replan_without(self, dead: Sequence[str]) -> "ChainPlan":
        """A new schedule with ``dead`` receivers removed from every
        stripe, each stripe keeping its surviving order.

        This is the launch-time re-plan (a node that never started is
        simply not in the chain); mid-transfer deaths are *skipped*, not
        re-planned, exactly as in the single-chain protocol.

        When the head itself is in ``dead`` the schedule is re-rooted:
        the most-senior survivor (the first receiver of stripe 0 not in
        ``dead``) is promoted via :meth:`reroot`.  Election by watermark
        is the control plane's job (:mod:`repro.control`); this default
        exists so launch-time head loss is survivable without one.
        """
        gone = set(dead)
        if self.head in gone:
            survivors = [r for r in self.receivers if r not in gone]
            if not survivors:
                raise PipelineError(
                    f"cannot re-plan: head {self.head!r} and every "
                    f"receiver are dead"
                )
            return self.reroot(survivors[0], dead=gone)
        return ChainPlan.from_orders(
            self.head,
            [[r for r in sp.receivers if r not in gone]
             for sp in self.stripes],
        )

    def reroot(self, new_head: str, *, dead: Sequence[str] = ()) -> "ChainPlan":
        """Promote receiver ``new_head`` to head and rebuild every
        stripe's order around it.

        The old head and any ``dead`` nodes are dropped from every
        stripe; the surviving receivers keep their relative order per
        stripe, minus the promoted node, which now leads all of them.
        Preserving the order is what keeps resume cheap: every surviving
        link still points the same way, so downstream offsets stay
        monotonically behind upstream ones and ring-buffer replay (or a
        PGET to the new head) covers any gap.
        """
        gone = set(dead) | {self.head}
        if new_head not in set(self.receivers):
            raise PipelineError(
                f"cannot re-root to {new_head!r}: not a receiver of this plan"
            )
        if new_head in set(dead):
            raise PipelineError(f"cannot re-root to dead node {new_head!r}")
        return ChainPlan.from_orders(
            new_head,
            [[r for r in sp.receivers if r not in gone and r != new_head]
             for sp in self.stripes],
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation (the wire schema, PROTOCOL.md §12)."""
        return {
            "version": 1,
            "head": self.head,
            "stripes": [list(sp.receivers) for sp in self.stripes],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChainPlan":
        if d.get("version") != 1:
            raise PipelineError(
                f"unknown chain plan version: {d.get('version')!r}"
            )
        return cls.from_orders(d["head"], d["stripes"])

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChainPlan":
        return cls.from_dict(json.loads(text))


def coerce_stripe_plan(plan, *, owner: str) -> StripePlan:
    """Adapt whatever a node constructor was given into a :class:`StripePlan`.

    Node implementations each run exactly one stripe's chain.  Accepts:

    * a :class:`StripePlan` — passed through;
    * a single-stripe :class:`ChainPlan` — unwrapped (a multi-stripe one
      is ambiguous: pass ``plan.stripe(j)`` instead);
    * a bare :class:`PipelinePlan` — **deprecated**: the implicit
      positional predecessor/successor wiring it encodes is superseded
      by the explicit plan objects.  Warns and adapts for one release.
    """
    if isinstance(plan, ChainPlan):
        if plan.stripe_count != 1:
            raise PipelineError(
                f"{owner} runs a single stripe; pass plan.stripe(j), "
                f"not a {plan.stripe_count}-stripe ChainPlan"
            )
        return plan.stripe(0)
    if isinstance(plan, StripePlan):
        return plan
    if isinstance(plan, PipelinePlan):
        warnings.warn(
            f"passing a bare PipelinePlan to {owner} is deprecated; its "
            "implicit predecessor/successor wiring is superseded by "
            "repro.core.plan.StripePlan / ChainPlan — pass "
            "ChainPlan.from_pipeline(plan).stripe(0) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return StripePlan.from_pipeline(plan)
    raise TypeError(
        f"{owner} needs a StripePlan/ChainPlan/PipelinePlan, "
        f"got {type(plan).__name__}"
    )
