"""Failure-recovery decision logic (§III-D), shared by runtime and simulator.

These are pure functions over the pipeline plan and transfer positions, so
that the real TCP runtime and the discrete-event simulator take *exactly*
the same decisions — the paper's recovery behaviour lives here:

* after detecting that its downstream neighbour is dead, a sender picks the
  **next alive node** in the original chain order (:func:`next_alive`);
* the replacement receiver announces how far it got via ``GET(offset)``;
  the sender decides among three outcomes (:func:`negotiate_offset`):

  1. serve from its ring buffer (offset still covered),
  2. tell the receiver to fetch the hole from the head via ``PGET``
     (head reads a seekable file),
  3. answer ``FORGET`` — the bytes are gone and the head cannot seek
     (stdin stream), so the receiver and everything after it abort with
     cascading ``QUIT`` while the sender becomes the effective tail.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import AbstractSet, Optional, Sequence

from .pipeline import PipelinePlan


class SourceKind(enum.Enum):
    """What the head node reads from — decides whether PGET is possible."""

    SEEKABLE_FILE = "file"    #: head can re-read any offset (PGET works)
    STREAM = "stream"         #: stdin/pipe; lost bytes are unrecoverable


class OfferKind(enum.Enum):
    """Sender-side verdict on a reconnecting receiver's GET(offset)."""

    SERVE_FROM_BUFFER = "serve"   #: replay from ring buffer then stream live
    NEED_HEAD_RANGE = "pget"      #: receiver must PGET [offset, buffer_min)
    FORGET = "forget"             #: data unrecoverable; abort downstream


@dataclass(frozen=True)
class Offer:
    """Outcome of :func:`negotiate_offset`.

    ``resume_at`` is where the sender will start serving:

    * SERVE_FROM_BUFFER — equal to the receiver's requested offset;
    * NEED_HEAD_RANGE — the sender's buffer minimum; the receiver first
      fills ``[requested, resume_at)`` from the head via PGET;
    * FORGET — the sender's buffer minimum (the FORGET(o) value).
    """

    kind: OfferKind
    resume_at: int


def next_alive(
    plan: PipelinePlan,
    after: str,
    dead: AbstractSet[str],
    max_skips: Optional[int] = None,
) -> Optional[str]:
    """First node after ``after`` in chain order that is not known dead.

    ``max_skips`` bounds how many dead nodes may be stepped over;
    ``None`` (the default) means unbounded, ``0`` means step over none.
    Returns ``None`` when no alive successor exists within the bound —
    the caller has become the tail of the pipeline.
    """
    skipped = 0
    for node in plan.successors_after(after):
        if node in dead:
            skipped += 1
            if max_skips is not None and skipped > max_skips:
                return None
            continue
        return node
    return None


def negotiate_offset(
    requested: int,
    buffer_min: int,
    buffer_end: int,
    source: SourceKind,
) -> Offer:
    """Decide how to serve a (re)connecting receiver asking for ``requested``.

    Parameters mirror the sender's view: its ring buffer currently covers
    ``[buffer_min, buffer_end]`` of the stream (``buffer_end`` is the live
    edge — the next byte the sender itself will receive or read).

    A request *beyond* the live edge is a protocol violation (the receiver
    claims bytes nobody has produced) and raises ``ValueError``: silent
    clamping would mask stream desynchronisation.
    """
    if requested < 0:
        raise ValueError(f"negative GET offset: {requested}")
    if requested > buffer_end:
        raise ValueError(
            f"receiver requests offset {requested} beyond live edge {buffer_end}"
        )
    if requested >= buffer_min:
        return Offer(OfferKind.SERVE_FROM_BUFFER, requested)
    if source is SourceKind.SEEKABLE_FILE:
        return Offer(OfferKind.NEED_HEAD_RANGE, buffer_min)
    return Offer(OfferKind.FORGET, buffer_min)


def report_route(plan: PipelinePlan, dead: AbstractSet[str]) -> Sequence[str]:
    """Alive nodes in chain order — the path the final report travels.

    The last element is the effective tail, which owns the ring-closure
    connection back to the head.
    """
    return [n for n in plan.chain if n not in dead]
