"""Failure reports (the REPORT message payload).

After the data transfer ends, each node appends the failures *it* detected
to a report that travels down the pipeline; the tail node forwards the
complete report back to the head through the ring-closure connection
(§III-A, Fig. 3).  The head therefore learns exactly which nodes did not
receive the data.

The serialization is a deliberately simple length-prefixed UTF-8 format —
stable, byte-accurate, and independent of Python pickling.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from .errors import ProtocolError

_HEADER = struct.Struct(">4sI")  # magic, record count
_MAGIC_V1 = b"KRPT"   # records only
_MAGIC_V2 = b"KRP2"   # records + optional source digest (integrity mode)


@dataclass(frozen=True)
class FailureRecord:
    """One detected node failure.

    Attributes
    ----------
    node:
        Name of the node that failed.
    detected_by:
        Name of the node that detected and routed around the failure.
    at_offset:
        Stream offset at which the detection happened (how much of the
        stream the detector had forwarded when it gave up on the peer).
    reason:
        Free-text cause: ``"timeout"``, ``"connection-reset"``,
        ``"connect-refused"``...
    """

    node: str
    detected_by: str
    at_offset: int
    reason: str

    def encode(self) -> bytes:
        parts = []
        for text in (self.node, self.detected_by, self.reason):
            raw = text.encode("utf-8")
            parts.append(struct.pack(">H", len(raw)) + raw)
        parts.append(struct.pack(">Q", self.at_offset))
        return b"".join(parts)


@dataclass
class TransferReport:
    """Aggregate failure report accumulated along the pipeline.

    In integrity mode (``KascadeConfig.verify_digest``) the head also
    ships ``source_digest`` — the SHA-256 of the whole stream — so every
    receiver can verify its stored copy before acknowledging.
    """

    failures: List[FailureRecord] = field(default_factory=list)
    source_digest: Optional[bytes] = None

    def add(self, record: FailureRecord) -> None:
        """Append one locally detected failure."""
        self.failures.append(record)

    def extend(self, records: Iterable[FailureRecord]) -> None:
        """Append several failure records in order."""
        self.failures.extend(records)

    def merge(self, other: "TransferReport") -> None:
        """Append another report's records (upstream report + local ones).

        The source digest is authoritative from upstream (it originates
        at the head) and is preserved through merges.
        """
        self.failures.extend(other.failures)
        if other.source_digest is not None:
            self.source_digest = other.source_digest

    @property
    def failed_nodes(self) -> List[str]:
        """Names of failed nodes, in detection order, without duplicates."""
        seen = set()
        out = []
        for rec in self.failures:
            if rec.node not in seen:
                seen.add(rec.node)
                out.append(rec.node)
        return out

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to the REPORT payload format.

        V1 (``KRPT``) when no digest is attached — byte-identical to the
        original format; V2 (``KRP2``) prefixes a length-framed digest.
        """
        body = b"".join(rec.encode() for rec in self.failures)
        if self.source_digest is None:
            return _HEADER.pack(_MAGIC_V1, len(self.failures)) + body
        digest = bytes(self.source_digest)
        return (
            _HEADER.pack(_MAGIC_V2, len(self.failures))
            + struct.pack(">H", len(digest)) + digest
            + body
        )

    @classmethod
    def decode(cls, raw) -> "TransferReport":
        """Parse a REPORT payload; raises :class:`ProtocolError` on garbage.

        Accepts any bytes-like payload (the zero-copy decoder hands out
        memoryviews); reports are small, so normalising to ``bytes`` here
        is the cheap way to own the data past buffer recycling.
        """
        if not isinstance(raw, bytes):
            raw = bytes(raw)
        if len(raw) < _HEADER.size:
            raise ProtocolError(f"report too short: {len(raw)} bytes")
        magic, count = _HEADER.unpack_from(raw)
        if magic not in (_MAGIC_V1, _MAGIC_V2):
            raise ProtocolError(f"bad report magic: {magic!r}")
        pos = _HEADER.size
        digest: Optional[bytes] = None
        if magic == _MAGIC_V2:
            if pos + 2 > len(raw):
                raise ProtocolError("truncated report digest length")
            (dlen,) = struct.unpack_from(">H", raw, pos)
            pos += 2
            if pos + dlen > len(raw):
                raise ProtocolError("truncated report digest")
            digest = raw[pos: pos + dlen]
            pos += dlen
        records = []
        for _ in range(count):
            texts = []
            for _f in range(3):
                if pos + 2 > len(raw):
                    raise ProtocolError("truncated report record")
                (tlen,) = struct.unpack_from(">H", raw, pos)
                pos += 2
                if pos + tlen > len(raw):
                    raise ProtocolError("truncated report string")
                texts.append(raw[pos: pos + tlen].decode("utf-8"))
                pos += tlen
            if pos + 8 > len(raw):
                raise ProtocolError("truncated report offset")
            (at_offset,) = struct.unpack_from(">Q", raw, pos)
            pos += 8
            records.append(FailureRecord(texts[0], texts[1], at_offset, texts[2]))
        if pos != len(raw):
            raise ProtocolError(f"{len(raw) - pos} trailing bytes in report")
        return cls(records, source_digest=digest)

    def summary(self) -> str:
        """Human-readable one-line summary for CLI output."""
        if not self.failures:
            return "transfer complete, no failures"
        nodes = ", ".join(self.failed_nodes)
        return f"transfer complete with {len(self.failed_nodes)} failed node(s): {nodes}"
