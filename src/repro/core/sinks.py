"""Data sinks on receiving nodes.

The paper's CLI (Fig. 2) writes to a file (``-o``), pipes into a command
(``-O 'tar -xzC /opt/'``), or discards data (the evaluation's
``/dev/null``).  A sink is also where the paper's storage concern lives:
receivers must start writing as soon as data arrives (§II-A1), which every
sink here honours by consuming chunk-by-chunk.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
from typing import BinaryIO, Optional


class Sink:
    """Abstract chunk sink for receiving nodes.

    ``write_chunk`` receives any bytes-like buffer — in the real runtime
    it is a memoryview into a pooled receive buffer that is only valid
    *during* the call.  Sinks must consume the bytes before returning
    (write them out, hash them, or copy them); retaining the view would
    pin the pooled buffer indefinitely.
    """

    def write_chunk(self, data) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """Flush and close; called once after END (not after QUIT)."""

    def abort(self) -> None:
        """Tear down after a failed/interrupted transfer."""
        self.finish()

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()
        else:
            self.abort()


class NullSink(Sink):
    """Discard data, counting bytes — the evaluation's ``/dev/null``."""

    def __init__(self) -> None:
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self.bytes_written += len(data)


class FileSink(Sink):
    """Write the stream sequentially to a file path."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._file: Optional[BinaryIO] = open(self._path, "wb")
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        assert self._file is not None
        self._file.write(data)
        self.bytes_written += len(data)

    def finish(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def abort(self) -> None:
        # Leave no half-written artifact behind: a partial system image is
        # worse than none (the Kadeploy use case).
        self.finish()
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass


class CommandSink(Sink):
    """Pipe the stream into a shell command's stdin (the ``-O`` option)."""

    def __init__(self, command: str) -> None:
        self._command = command
        self._proc = subprocess.Popen(
            command, shell=True, stdin=subprocess.PIPE
        )
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        assert self._proc.stdin is not None
        self._proc.stdin.write(data)
        self.bytes_written += len(data)

    def finish(self) -> None:
        if self._proc.stdin is not None and not self._proc.stdin.closed:
            self._proc.stdin.close()
        rc = self._proc.wait()
        if rc != 0:
            raise RuntimeError(f"sink command {self._command!r} exited with {rc}")

    def abort(self) -> None:
        if self._proc.stdin is not None and not self._proc.stdin.closed:
            self._proc.stdin.close()
        self._proc.wait()


class HashingSink(Sink):
    """Discard data but keep a SHA-256 digest — integrity checks in tests."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self._hash.update(data)
        self.bytes_written += len(data)

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


class BufferSink(Sink):
    """Accumulate everything in memory — small tests only."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self._parts.append(bytes(data))
        self.bytes_written += len(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


def open_sink(output: Optional[str], output_command: Optional[str]) -> Sink:
    """Open a sink from CLI options: ``-o path`` or ``-O command``."""
    if output is not None and output_command is not None:
        raise ValueError("give either an output path or an output command, not both")
    if output_command is not None:
        return CommandSink(output_command)
    if output is None or output == "/dev/null":
        return NullSink()
    return FileSink(output)
