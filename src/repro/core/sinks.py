"""Data sinks on receiving nodes.

The paper's CLI (Fig. 2) writes to a file (``-o``), pipes into a command
(``-O 'tar -xzC /opt/'``), or discards data (the evaluation's
``/dev/null``).  A sink is also where the paper's storage concern lives:
receivers must start writing as soon as data arrives (§II-A1), which every
sink here honours by consuming chunk-by-chunk.
"""

from __future__ import annotations

import errno
import hashlib
import os
import subprocess
import time
from typing import BinaryIO, Callable, Optional

from .errors import SinkError


class Sink:
    """Abstract chunk sink for receiving nodes.

    ``write_chunk`` receives any bytes-like buffer — in the real runtime
    it is a memoryview into a pooled receive buffer that is only valid
    *during* the call.  Sinks must consume the bytes before returning
    (write them out, hash them, or copy them); retaining the view would
    pin the pooled buffer indefinitely.  (The one sanctioned exception
    is :class:`~repro.core.stages.SinkWriter`, which takes its own
    memoryview export per queued chunk — see docs/PROTOCOL.md §10.)

    Storage failures raise :class:`~repro.core.errors.SinkError` (or an
    ``OSError`` such as ENOSPC from the filesystem); the runtime maps
    both to the §III-D hard-abort path.
    """

    def write_chunk(self, data) -> None:
        raise NotImplementedError

    def preallocate(self, size: int) -> None:
        """Reserve space for a stream of ``size`` total bytes, if possible.

        Called when the total stream length is known up front so an
        out-of-space condition fails the broadcast *early* instead of
        stranding a nearly-complete transfer.  The default is a no-op;
        only sinks with a backing file can usefully reserve.
        """

    def finish(self) -> None:
        """Flush and close; called once after END (not after QUIT)."""

    def abort(self) -> None:
        """Tear down after a failed/interrupted transfer."""
        self.finish()

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()
        else:
            self.abort()


class NullSink(Sink):
    """Discard data, counting bytes — the evaluation's ``/dev/null``."""

    def __init__(self) -> None:
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self.bytes_written += len(data)


class FileSink(Sink):
    """Write the stream sequentially to a file path.

    When the total stream size is known (``expected_size``, or a later
    :meth:`preallocate` call once END reveals the length), the output is
    pre-sized with ``posix_fallocate`` so an out-of-space disk fails the
    broadcast up front rather than at 90% — a half-written system image
    is the worst outcome for the Kadeploy use case.  Filesystems without
    fallocate support fall back silently to growing the file as written.
    """

    def __init__(
        self, path: str | os.PathLike, *, expected_size: Optional[int] = None
    ) -> None:
        self._path = os.fspath(path)
        self._file: Optional[BinaryIO] = open(self._path, "wb")
        self._preallocated = 0
        self.bytes_written = 0
        if expected_size is not None and expected_size > 0:
            self.preallocate(expected_size)

    def preallocate(self, size: int) -> None:
        if self._file is None or size <= self._preallocated:
            return
        try:
            os.posix_fallocate(self._file.fileno(), 0, size)
        except OSError as exc:
            # ENOSPC is the condition preallocation exists to surface —
            # let it abort the transfer now.  Everything else (tmpfs,
            # network filesystems: EOPNOTSUPP/EINVAL) means "can't
            # reserve here", which is fine — writes proceed unreserved.
            if exc.errno == errno.ENOSPC:
                raise
            return
        except AttributeError:  # platform without posix_fallocate
            return
        self._preallocated = size

    def write_chunk(self, data) -> None:
        assert self._file is not None
        self._file.write(data)
        self.bytes_written += len(data)

    def finish(self) -> None:
        if self._file is not None:
            if self._preallocated > self.bytes_written:
                # A reservation larger than the stream (aborted resend,
                # over-estimate) must not leave trailing garbage.
                self._file.truncate(self.bytes_written)
            self._file.close()
            self._file = None

    def abort(self) -> None:
        # Leave no half-written artifact behind: a partial system image is
        # worse than none (the Kadeploy use case).
        self.finish()
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass


class CommandSink(Sink):
    """Pipe the stream into a shell command's stdin (the ``-O`` option).

    A command that exits early (crash, ``tar`` rejecting the archive)
    closes its stdin pipe; the next write raises.  That raw
    ``BrokenPipeError`` is mapped to :class:`SinkError` so the runtime
    takes the §III-D hard-abort path with a reason naming the command,
    instead of leaking a pipe error out of the relay loop.
    """

    def __init__(self, command: str) -> None:
        self._command = command
        self._proc = subprocess.Popen(
            command, shell=True, stdin=subprocess.PIPE
        )
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        assert self._proc.stdin is not None
        try:
            self._proc.stdin.write(data)
        except (BrokenPipeError, ValueError) as exc:
            # ValueError covers "write to closed file" after an earlier
            # failure already closed the pipe on our side.
            rc = self._proc.poll()
            raise SinkError(
                f"sink command {self._command!r} stopped accepting data"
                + (f" (exit status {rc})" if rc is not None else "")
            ) from exc
        self.bytes_written += len(data)

    def finish(self) -> None:
        try:
            if self._proc.stdin is not None and not self._proc.stdin.closed:
                self._proc.stdin.close()
        except BrokenPipeError:
            pass  # the exit status below is the authoritative verdict
        rc = self._proc.wait()
        if rc != 0:
            raise SinkError(f"sink command {self._command!r} exited with {rc}")

    def abort(self) -> None:
        try:
            if self._proc.stdin is not None and not self._proc.stdin.closed:
                self._proc.stdin.close()
        except BrokenPipeError:
            pass
        self._proc.wait()


class HashingSink(Sink):
    """Discard data but keep a SHA-256 digest — integrity checks in tests."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self._hash.update(data)
        self.bytes_written += len(data)

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


class BufferSink(Sink):
    """Accumulate everything in memory — small tests only."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self._parts.append(bytes(data))
        self.bytes_written += len(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class ThrottledSink(Sink):
    """Model a *synchronous* storage device with a sustained write rate.

    Benchmarks need a reproducible storage device: page-cache writes
    absorb a 1 MiB/chunk stream at memory speed on one machine and at
    disk speed on another, which makes overlap wins unmeasurable.  Each
    write here blocks for the device's service time (``len/rate``), the
    way a blocking ``O_DIRECT``/``O_SYNC`` write does: the device makes
    progress only while the caller sits inside the call and idles between
    calls.  That is the device class §III-A's storage overlap targets —
    with a synchronous caller, wire time and device time *add*; with
    background writeback the device stays busy while the relay thread
    works the wire.

    (A wall-clock token bucket would be the wrong model: crediting time
    spent *between* writes simulates a device with its own command queue
    — storage that is already asynchronous — and the overlap being
    measured vanishes by construction.)

    Service debt below 1 ms carries forward, so small writes pace in
    ~1 ms steps instead of burning scheduler overhead on micro-sleeps.
    An injectable ``sleep`` keeps the unit tests instant.
    """

    def __init__(
        self,
        inner: Sink,
        bytes_per_s: float,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if bytes_per_s <= 0:
            raise ValueError(f"throttle rate must be positive: {bytes_per_s}")
        self._rate = float(bytes_per_s)
        self._inner = inner
        self._sleep = sleep
        self._debt = 0.0
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self._debt += len(data) / self._rate
        if self._debt >= 0.001:
            self._sleep(self._debt)
            self._debt = 0.0
        self._inner.write_chunk(data)
        self.bytes_written += len(data)

    def preallocate(self, size: int) -> None:
        self._inner.preallocate(size)

    def finish(self) -> None:
        self._inner.finish()

    def abort(self) -> None:
        self._inner.abort()


def open_sink(
    output: Optional[str],
    output_command: Optional[str],
    *,
    expected_size: Optional[int] = None,
) -> Sink:
    """Open a sink from CLI options: ``-o path`` or ``-O command``.

    ``expected_size`` (when the head's source length is known) lets a
    file sink pre-reserve the space — see :meth:`FileSink.preallocate`.
    """
    if output is not None and output_command is not None:
        raise ValueError("give either an output path or an output command, not both")
    if output_command is not None:
        return CommandSink(output_command)
    if output is None or output == "/dev/null":
        return NullSink()
    return FileSink(output, expected_size=expected_size)
