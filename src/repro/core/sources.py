"""Data sources read by the head node.

The paper stresses that the stream length need not be known in advance
(§III-C issue 1): Kascade must broadcast the output of another process
(``dd if=/dev/sda2 | gzip | kascade ...``).  Sources therefore expose a
pull interface with no length, plus an optional random-access capability
used to answer PGET requests when the source is a seekable file.
"""

from __future__ import annotations

import os
from typing import BinaryIO

from .errors import DataLossError
from .recovery import SourceKind


class Source:
    """Abstract chunk source for the head node."""

    #: Whether PGET (random re-read) is possible.
    kind: SourceKind = SourceKind.STREAM

    #: Whether ``read_chunk`` can block on real I/O (file, pipe).  The
    #: runtime only wraps blocking sources in a read-ahead stage; an
    #: in-memory source gains nothing from a prefetch thread.
    blocking_io: bool = True

    def read_chunk(self, size: int) -> bytes:
        """Return up to ``size`` next bytes; ``b""`` signals end of stream."""
        raise NotImplementedError

    def read_range(self, offset: int, size: int) -> bytes:
        """Random access for PGET; only valid on seekable sources."""
        raise DataLossError("source is not seekable; range re-read impossible")

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Source":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileSource(Source):
    """Seekable file on disk — supports PGET recovery."""

    kind = SourceKind.SEEKABLE_FILE

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._file: BinaryIO = open(self._path, "rb")
        self._size = os.fstat(self._file.fileno()).st_size

    @property
    def size(self) -> int:
        return self._size

    @property
    def path(self) -> str:
        """Filesystem path this source reads — lets the process backend
        hand the file to a head agent by name instead of spooling it."""
        return self._path

    def fileno(self) -> int:
        """File descriptor for kernel-side streaming (``os.sendfile``).

        The runtime's PGET service uses this to move payload bytes from
        the page cache straight to the socket; positional ``sendfile``
        reads leave the sequential :meth:`read_chunk` cursor untouched.
        """
        return self._file.fileno()

    def read_chunk(self, size: int) -> bytes:
        return self._file.read(size)

    def read_range(self, offset: int, size: int) -> bytes:
        # A second handle keeps the sequential read position undisturbed:
        # PGET service must not corrupt the main streaming cursor.
        with open(self._path, "rb") as f:
            f.seek(offset)
            data = f.read(size)
        if len(data) != size:
            raise DataLossError(
                f"file shrank: wanted [{offset}, {offset + size}), got {len(data)} bytes"
            )
        return data

    def close(self) -> None:
        self._file.close()


class StreamSource(Source):
    """Non-seekable stream (stdin, pipe) — PGET impossible, FORGET applies."""

    kind = SourceKind.STREAM

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream

    def read_chunk(self, size: int) -> bytes:
        return self._stream.read(size)

    def close(self) -> None:
        self._stream.close()


class BytesSource(Source):
    """In-memory source; seekable.  Convenient for tests and examples."""

    kind = SourceKind.SEEKABLE_FILE
    blocking_io = False

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def size(self) -> int:
        return len(self._data)

    def read_chunk(self, size: int) -> bytes:
        piece = self._data[self._pos: self._pos + size]
        self._pos += len(piece)
        return piece

    def read_range(self, offset: int, size: int) -> bytes:
        if offset + size > len(self._data):
            raise DataLossError(
                f"range [{offset}, {offset + size}) beyond source of {len(self._data)}"
            )
        return self._data[offset: offset + size]


class PatternSource(Source):
    """Deterministic synthetic stream of a given size, O(1) memory.

    Generates a repeating 251-byte pattern offset by position, so any
    subrange is reproducible — receivers can verify integrity without the
    head materialising gigabytes.  Seekable (PGET works).
    """

    kind = SourceKind.SEEKABLE_FILE
    blocking_io = False
    _PERIOD = 251  # prime, so chunk boundaries drift across the pattern

    def __init__(self, size: int, seed: int = 0) -> None:
        if size < 0:
            raise ValueError(f"negative source size: {size}")
        self._size = size
        base = bytes((seed + i * 7) % 256 for i in range(self._PERIOD))
        # Precompute a doubled pattern so any window of PERIOD bytes is a slice.
        self._pattern = base + base
        self._pos = 0

    @property
    def size(self) -> int:
        return self._size

    def _materialize(self, offset: int, size: int) -> bytes:
        # One C-level repeat + slice instead of a Python loop over
        # periods: the head's read path is on the hot data plane, and at
        # small chunk sizes the per-period bytecode dominated it.
        period = self._PERIOD
        phase = offset % period
        reps = (phase + size + period - 1) // period
        return (self._pattern[:period] * reps)[phase: phase + size]

    def read_chunk(self, size: int) -> bytes:
        take = min(size, self._size - self._pos)
        if take <= 0:
            return b""
        data = self._materialize(self._pos, take)
        self._pos += take
        return data

    def read_range(self, offset: int, size: int) -> bytes:
        if offset + size > self._size:
            raise DataLossError(
                f"range [{offset}, {offset + size}) beyond source of {self._size}"
            )
        return self._materialize(offset, size)

    def expected_bytes(self, offset: int, size: int) -> bytes:
        """What a correct transfer must deliver for ``[offset, offset+size)``."""
        return self._materialize(offset, size)


class ResumeView(Source):
    """A seekable source's sequential cursor re-rooted at ``start``.

    Head failover promotes a receiver whose survivors already hold the
    stream prefix: the new head must *stream* only from the live edge
    onward, while still answering PGET for any earlier range (hole
    recovery below the resume point).  This wrapper gives the promoted
    head exactly that view: ``read_chunk`` walks ``[start, size)`` via
    ``read_range`` on the inner source, and random access delegates
    untouched.
    """

    def __init__(self, inner: Source, start: int) -> None:
        if inner.kind is not SourceKind.SEEKABLE_FILE:
            raise DataLossError(
                "resume needs a seekable source; a stream cannot re-root"
            )
        if start < 0:
            raise ValueError(f"negative resume offset: {start}")
        self._inner = inner
        self._pos = start
        self.start = start
        self.kind = inner.kind
        self.blocking_io = getattr(inner, "blocking_io", True)

    @property
    def size(self) -> int:
        return self._inner.size

    def read_chunk(self, size: int) -> bytes:
        take = min(size, self._inner.size - self._pos)
        if take <= 0:
            return b""
        data = self._inner.read_range(self._pos, take)
        self._pos += len(data)
        return data

    def read_range(self, offset: int, size: int) -> bytes:
        return self._inner.read_range(offset, size)

    def close(self) -> None:
        self._inner.close()

    def __getattr__(self, name: str):
        # Delegate capabilities the runtime probes for (fileno, path...).
        return getattr(self._inner, name)


def open_source(spec: str) -> Source:
    """Open a source from a CLI spec: a path, or ``-`` for stdin."""
    if spec == "-":
        import sys

        return StreamSource(sys.stdin.buffer)
    return FileSource(spec)
