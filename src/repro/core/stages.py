"""Staged I/O: overlap storage with the network data plane.

The paper's pipelining argument (§III-A) is that every node overlaps
*reception, storage and forwarding*, so chain throughput is governed by
``1/max(t_recv, t_write, t_send)`` rather than the serialized sum.  The
runtime's node loop is single-threaded, which serializes the three: a
relay that blocks in ``sink.write_chunk()`` is neither receiving nor
forwarding, and a head that blocks in ``source.read_chunk()`` is not
sending.  This module supplies the two decoupling stages:

* :class:`SinkWriter` wraps any :class:`~repro.core.sinks.Sink` with a
  bounded background writeback queue, so the relay hands a chunk to the
  writer and immediately returns to the socket.  Backpressure (a full
  queue) still blocks the relay — the queue bounds memory, it does not
  hide a sink that is slower than the wire indefinitely.
* :class:`ReadAheadSource` wraps a blocking
  :class:`~repro.core.sources.Source` with a small prefetch queue so the
  head's file reads overlap its vectored sends.

Buffer ownership (see docs/PROTOCOL.md §10): runtime payloads are
memoryviews into pooled receive buffers.  Queueing such a view *pins*
the pool segment until the background write completes.  The writer
therefore takes its own ``memoryview`` export per queued chunk (pool
reuse probing sees the segment as busy) and releases it after the inner
write; past a configurable pinned-byte budget it copies the chunk
instead, trading one memcpy for pool capacity.

Error model (§III-D): a failed background write is *unrecoverable* for
the node.  The worker parks the exception and every subsequent
``write_chunk``/``finish`` raises it as-is, which the runtime maps to a
hard abort (QUIT both neighbours).  ``abort()`` discards the queue and
never deadlocks, even with a worker stuck in a blocking sink write.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Optional, Tuple

from .perfstats import PerfStats, get_stats
from .sinks import Sink
from .sources import Source
from .tracing import NULL_TRACER, STALL

__all__ = ["SinkWriter", "ReadAheadSource"]


class SinkWriter(Sink):
    """Background writeback stage in front of a slower :class:`Sink`.

    ``write_chunk`` enqueues the chunk for a daemon worker thread and
    returns; the caller only blocks when the queue is full (``depth``
    chunks) — that wait is counted as ``sink_stall_s`` in perfstats and
    traced as a ``STALL`` event with detail ``"sink-writeback"``.

    Parameters
    ----------
    inner:
        The sink actually persisting data.  The worker thread is its
        only writer once construction returns; ``finish``/``abort`` on
        the inner sink run on the caller's thread after the worker has
        been joined.
    depth:
        Maximum queued chunks before ``write_chunk`` blocks (≥ 1).
    pin_budget:
        Pinned-byte ceiling.  Chunks are queued as zero-copy memoryview
        exports while the queued pinned bytes stay under this budget;
        beyond it they are copied (``stats.copied`` accounts the copy)
        so the receive pool is not starved by a slow disk.
    stats / tracer / owner:
        Observability plumbing; default to the process-global counters
        and the no-op tracer.
    """

    def __init__(
        self,
        inner: Sink,
        *,
        depth: int = 8,
        pin_budget: int = 32 * 1024 * 1024,
        stats: Optional[PerfStats] = None,
        tracer=NULL_TRACER,
        owner: str = "",
    ) -> None:
        if depth < 1:
            raise ValueError(f"writeback depth must be >= 1, got {depth}")
        self._inner = inner
        self._depth = depth
        self._pin_budget = max(0, pin_budget)
        self._stats = stats if stats is not None else get_stats()
        self._tracer = tracer
        self._owner = owner

        # (buffer, pinned_bytes): pinned_bytes > 0 marks a memoryview
        # export the worker must release; 0 marks an owned bytes copy.
        self._queue: Deque[Tuple[object, int]] = deque()
        self._lock = threading.Lock()
        self._readable = threading.Condition(self._lock)  # worker waits
        self._writable = threading.Condition(self._lock)  # producer waits
        self._pinned = 0
        self._error: Optional[BaseException] = None
        self._finishing = False
        self._aborting = False
        self.bytes_written = 0
        self._worker = threading.Thread(
            target=self._run, name=f"sink-writer-{owner or hex(id(self))}",
            daemon=True,
        )
        self._worker.start()

    # -- producer side (the relay thread) --------------------------------

    def write_chunk(self, data) -> None:
        stats = self._stats
        with self._lock:
            self._raise_pending_locked()
            if len(self._queue) >= self._depth:
                # Backpressure: the sink is slower than the wire and the
                # bounded queue is full.  This is the moment overlap runs
                # out, so make it observable before blocking.
                if self._tracer.enabled:
                    self._tracer.emit(STALL, self._owner,
                                      detail="sink-writeback")
                t0 = time.monotonic()
                while len(self._queue) >= self._depth:
                    if self._aborting:
                        return
                    self._raise_pending_locked()
                    self._writable.wait(0.5)
                stats.sink_stalled(time.monotonic() - t0)
            if self._aborting:
                return
            n = len(data)
            if self._pinned + n <= self._pin_budget:
                # Zero-copy: our own memoryview export pins the pooled
                # segment (pool reuse probing sees an active export)
                # until the worker releases it after the inner write.
                self._queue.append((memoryview(data), n))
                self._pinned += n
            else:
                stats.copied(n)
                self._queue.append((bytes(data), 0))
            stats.note_writeback_depth(len(self._queue))
            self._readable.notify()

    def finish(self) -> None:
        """Drain the queue, join the worker, then finish the inner sink."""
        with self._lock:
            self._raise_pending_locked()
            self._finishing = True
            self._readable.notify_all()
        self._worker.join()
        with self._lock:
            self._raise_pending_locked()
        self._inner.finish()

    def detach(self) -> Sink:
        """Drain the queue and stop the worker *without* finishing the
        inner sink; returns the inner sink, still open.

        This is the failover hand-off: a receiver being promoted (or
        re-wired under a new head) must not lose queued chunks, but its
        sink has to stay open so the resumed transfer keeps appending to
        the same file/hash.  After ``detach`` this writer is spent — wrap
        the returned sink in a fresh :class:`SinkWriter` to resume
        background writeback.
        """
        with self._lock:
            self._raise_pending_locked()
            self._finishing = True
            self._readable.notify_all()
        self._worker.join()
        with self._lock:
            self._raise_pending_locked()
        return self._inner

    def abort(self) -> None:
        """Discard queued chunks and tear down; never deadlocks.

        The queue is emptied by *this* thread (so a full queue cannot
        wedge the worker's producer-side peers), and ``inner.abort()``
        runs even if the worker is stuck in a blocking write — closing
        the underlying file/pipe is what unblocks it.
        """
        with self._lock:
            self._aborting = True
            while self._queue:
                buf, pinned = self._queue.popleft()
                if pinned:
                    buf.release()
                    self._pinned -= pinned
            self._readable.notify_all()
            self._writable.notify_all()
        self._worker.join(timeout=1.0)
        self._inner.abort()
        self._worker.join(timeout=1.0)

    def preallocate(self, size: int) -> None:
        self._inner.preallocate(size)

    @property
    def queue_depth(self) -> int:
        """Chunks currently queued (diagnostic)."""
        with self._lock:
            return len(self._queue)

    @property
    def pinned_bytes(self) -> int:
        """Bytes currently pinned in pooled buffers (diagnostic)."""
        with self._lock:
            return self._pinned

    # -- worker side -----------------------------------------------------

    def _raise_pending_locked(self) -> None:
        # The parked error is deliberately NOT cleared: a dead sink stays
        # dead, and every later call must keep failing the same way.
        if self._error is not None:
            raise self._error

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._queue:
                    if self._finishing or self._aborting:
                        return
                    self._readable.wait()
                buf, pinned = self._queue.popleft()
                self._writable.notify()
            try:
                self._inner.write_chunk(buf)
                self.bytes_written += len(buf)
            except BaseException as exc:  # parked; surfaced to the producer
                with self._lock:
                    self._error = exc
                    while self._queue:
                        qbuf, qpinned = self._queue.popleft()
                        if qpinned:
                            qbuf.release()
                            self._pinned -= qpinned
                    if pinned:
                        buf.release()
                        self._pinned -= pinned
                    self._readable.notify_all()
                    self._writable.notify_all()
                return
            if pinned:
                with self._lock:
                    buf.release()
                    self._pinned -= pinned


class ReadAheadSource(Source):
    """Prefetch wrapper overlapping source reads with the send path.

    A daemon worker keeps up to ``depth`` chunks of the size first
    requested queued ahead of the consumer.  A ``read_chunk`` satisfied
    from the queue counts as a ``readahead_hit``; one that has to wait
    for the worker counts as a miss.  The worker starts lazily on the
    first read so the chunk size matches what the head actually uses.

    ``read_range`` (PGET service) and ``fileno`` delegate to the inner
    source untouched — prefetching only concerns the sequential cursor.
    """

    def __init__(
        self,
        inner: Source,
        *,
        depth: int = 2,
        stats: Optional[PerfStats] = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"read-ahead depth must be >= 1, got {depth}")
        self._inner = inner
        self._depth = depth
        self._stats = stats if stats is not None else get_stats()
        self.kind = inner.kind
        self.blocking_io = getattr(inner, "blocking_io", True)

        self._queue: Deque[bytes] = deque()
        self._lock = threading.Lock()
        self._readable = threading.Condition(self._lock)
        self._writable = threading.Condition(self._lock)
        self._chunk_size = 0
        self._eof = False
        self._stopped = False
        self._error: Optional[BaseException] = None
        self._pending = b""  # leftover when a caller changes chunk size
        self._worker: Optional[threading.Thread] = None

    # -- consumer side ---------------------------------------------------

    def read_chunk(self, size: int) -> bytes:
        if self._pending:
            piece, self._pending = self._pending[:size], self._pending[size:]
            return piece
        if self._worker is None:
            if self._stopped:
                return self._inner.read_chunk(size)
            self._chunk_size = size
            self._worker = threading.Thread(
                target=self._run, name=f"readahead-{id(self):x}", daemon=True
            )
            self._worker.start()
        with self._lock:
            if self._queue:
                self._stats.readahead_hits += 1
            else:
                self._stats.readahead_misses += 1
                while not self._queue:
                    if self._error is not None:
                        err, self._error = self._error, None
                        raise err
                    if self._eof or self._stopped:
                        return b""
                    self._readable.wait()
            block = self._queue.popleft()
            self._writable.notify()
        if len(block) <= size:
            return block
        # Caller shrank its chunk size mid-stream: serve from the block.
        self._pending = block[size:]
        return block[:size]

    def read_range(self, offset: int, size: int) -> bytes:
        return self._inner.read_range(offset, size)

    def stop(self) -> None:
        """Stop prefetching; queued chunks still drain via ``read_chunk``."""
        worker = self._worker
        with self._lock:
            self._stopped = True
            self._writable.notify_all()
            self._readable.notify_all()
        if worker is not None:
            worker.join()
            # Queued-but-unread chunks become _pending so a re-started
            # consumer (or passthrough reads) never lose bytes.
            with self._lock:
                drained = list(self._queue)
                self._queue.clear()
            self._pending += b"".join(drained)
            self._worker = None

    def close(self) -> None:
        self.stop()
        self._inner.close()

    def __getattr__(self, name: str):
        # Delegate capabilities the runtime probes for (fileno, size...).
        return getattr(self._inner, name)

    # -- worker side -----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._lock:
                while len(self._queue) >= self._depth:
                    if self._stopped:
                        return
                    self._writable.wait()
                if self._stopped:
                    return
            try:
                block = self._inner.read_chunk(self._chunk_size)
            except BaseException as exc:
                with self._lock:
                    self._error = exc
                    self._readable.notify_all()
                return
            with self._lock:
                if block:
                    self._queue.append(block)
                else:
                    self._eof = True
                self._readable.notify_all()
                if not block:
                    return
