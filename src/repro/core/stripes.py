"""Stripe data path: splitting a stream into k sub-streams and merging back.

Striped broadcast runs ``k`` independent chain sub-broadcasts over one
stream (see :mod:`repro.core.plan`).  The split is round-robin over the
global chunk index: chunk ``i`` (of ``chunk_size`` bytes) belongs to
stripe ``i % k`` as that stripe's local chunk ``i // k``.  This module
owns the two ends of that mapping:

* :class:`StripeSource` — a seekable view presenting stripe ``j`` of an
  underlying source as a contiguous sub-stream.  The head of each
  stripe chain reads it exactly like any other source, so per-stripe
  ring buffers and PGET recovery fall out of the existing machinery.
* :class:`StripeMergeSink` — the per-host reassembly point: ``k`` sink
  ports (one per stripe chain instance) feeding one inner sink in
  global chunk order.  Port writes never wait for other stripes — a
  port that runs ahead of the merge cursor buffers (copying out of the
  caller's pooled receive buffer), and the buffer's high-water mark is
  observable as the ``stripe_merge_hwm`` perfstat.

The byte-level mapping, for stripe ``j`` of ``k`` with chunk size ``c``:
local byte ``s`` lives in local chunk ``q = s // c`` at intra-chunk
offset ``r = s % c``; its global position is ``(q * k + j) * c + r``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional

from .errors import DataLossError, SinkError
from .perfstats import PerfStats, get_stats
from .recovery import SourceKind
from .sinks import Sink
from .sources import Source

__all__ = ["stripe_extent", "StripeSource", "StripeMergeSink"]


def stripe_extent(total: int, stripe: int, of: int, chunk_size: int) -> int:
    """Bytes belonging to ``stripe`` (of ``of``) in a ``total``-byte stream."""
    full, partial = divmod(total, chunk_size)
    size = chunk_size * ((full + of - 1 - stripe) // of)
    if partial and full % of == stripe:
        size += partial
    return size


class StripeSource(Source):
    """Stripe ``j`` of a seekable source, as a contiguous sub-stream.

    Requires the underlying source to be seekable (``read_range`` +
    ``size``): the view's sequential reads are random-access reads of
    the original.  When the inner source exposes a filesystem ``path``
    the view keeps its own file handle so per-chunk reads cost one
    ``seek`` + ``read`` instead of an ``open`` per call.

    The view never closes a shared inner source (``k`` views share one
    on the local backend); pass ``owns_inner=True`` where the view is
    the sole user (the process backend's per-stripe heads).
    """

    kind = SourceKind.SEEKABLE_FILE

    def __init__(
        self,
        inner: Source,
        stripe: int,
        of: int,
        chunk_size: int,
        *,
        owns_inner: bool = False,
    ) -> None:
        if inner.kind is not SourceKind.SEEKABLE_FILE:
            raise DataLossError(
                "striping needs a seekable source (read_range + size); "
                f"got a {type(inner).__name__}"
            )
        if not 0 <= stripe < of:
            raise ValueError(f"stripe {stripe} out of range for {of}")
        self._inner = inner
        self._stripe = stripe
        self._of = of
        self._chunk = chunk_size
        self._owns = owns_inner
        self._pos = 0
        self._size = stripe_extent(inner.size, stripe, of, chunk_size)
        self.blocking_io = inner.blocking_io
        self._file = None
        path = getattr(inner, "path", None)
        if path is not None:
            self._file = open(path, "rb")

    @property
    def size(self) -> int:
        return self._size

    def _read_global(self, offset: int, size: int) -> bytes:
        if self._file is not None:
            self._file.seek(offset)
            data = self._file.read(size)
            if len(data) != size:
                raise DataLossError(
                    f"file shrank: wanted [{offset}, {offset + size}), "
                    f"got {len(data)} bytes"
                )
            return data
        return self._inner.read_range(offset, size)

    def read_chunk(self, size: int) -> bytes:
        take = min(size, self._size - self._pos)
        if take <= 0:
            return b""
        data = self.read_range(self._pos, take)
        self._pos += take
        return data

    def read_range(self, offset: int, size: int) -> bytes:
        """Stripe-local random access (serves this stripe's PGETs)."""
        if offset + size > self._size:
            raise DataLossError(
                f"range [{offset}, {offset + size}) beyond stripe "
                f"of {self._size}"
            )
        c, j, k = self._chunk, self._stripe, self._of
        pieces = []
        while size > 0:
            q, r = divmod(offset, c)
            take = min(c - r, size)
            pieces.append(self._read_global((q * k + j) * c + r, take))
            offset += take
            size -= take
        return pieces[0] if len(pieces) == 1 else b"".join(pieces)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._owns:
            self._inner.close()


class _StripePort(Sink):
    """One stripe chain's sink: a non-waiting feeder of the merge."""

    def __init__(self, merger: "StripeMergeSink", stripe: int) -> None:
        self._merger = merger
        self._stripe = stripe
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self.bytes_written += len(data)
        self._merger._port_write(self._stripe, data)

    def preallocate(self, size: int) -> None:
        self._merger._port_preallocate(size)

    def finish(self) -> None:
        self._merger._port_finish(self._stripe)

    def abort(self) -> None:
        self._merger._port_abort()


class StripeMergeSink:
    """Reassemble ``k`` stripe sub-streams into one inner sink, in order.

    Not itself a :class:`Sink` — it hands out one :meth:`port` per
    stripe, each of which is.  The merge keeps a global chunk cursor
    ``g`` and always takes the next chunk from the port of stripe
    ``g % k``; ports ahead of the cursor buffer their bytes (copied, so
    pooled receive buffers are never retained past ``write_chunk``).
    A port write never waits on other stripes — slack turns into memory,
    bounded in practice by each chain's ring buffer, and is observable
    via the ``stripe_merge_hwm`` perfstat.

    End of stream: the global stream ended when the cursor's port has
    finished with nothing buffered.  Any bytes still queued on another
    port at that point are a stripe desync — a protocol bug, surfaced
    as :class:`SinkError` (the §III-D hard-abort path).  The inner sink
    is finished once, after every port has finished.
    """

    def __init__(
        self,
        inner: Sink,
        stripes: int,
        chunk_size: int,
        *,
        stats: Optional[PerfStats] = None,
    ) -> None:
        if stripes < 1:
            raise ValueError(f"stripe count must be >= 1, got {stripes}")
        self._inner = inner
        self._k = stripes
        self._chunk = chunk_size
        self._stats = stats if stats is not None else get_stats()
        self._lock = threading.Lock()
        self._queues: List[Deque[bytes]] = [deque() for _ in range(stripes)]
        self._avail = [0] * stripes
        self._finished = [False] * stripes
        self._ports = [_StripePort(self, j) for j in range(stripes)]
        self._cursor = 0
        self._ended = False
        self._aborted = False
        self._closed = 0
        self._preallocated = False
        self._error: Optional[Exception] = None
        self.bytes_written = 0

    def port(self, stripe: int) -> Sink:
        """The sink for the chain instance carrying ``stripe``."""
        return self._ports[stripe]

    # ------------------------------------------------------------------
    # Port-side entry points
    # ------------------------------------------------------------------

    def _port_write(self, stripe: int, data) -> None:
        with self._lock:
            self._raise_if_failed()
            if self._aborted:
                return
            if self._ended:
                self._fail(SinkError(
                    f"stripe {stripe} wrote past end of merged stream"
                ))
            n = len(data)
            self._queues[stripe].append(bytes(data))
            self._avail[stripe] += n
            self._stats.copied(n)
            self._stats.note_merge_buffered(sum(self._avail))
            self._drain()

    def _port_preallocate(self, size: int) -> None:
        # Per-stripe extents do not reveal the global total cheaply;
        # reserve once with the first declared stripe's k-fold estimate.
        with self._lock:
            if not self._preallocated and not self._aborted:
                self._preallocated = True
                self._inner.preallocate(size * self._k)

    def _port_finish(self, stripe: int) -> None:
        with self._lock:
            self._raise_if_failed()
            if self._aborted:
                return
            self._finished[stripe] = True
            self._closed += 1
            self._drain()
            self._raise_if_failed()
            if self._closed == self._k:
                if not self._ended:
                    self._fail(SinkError(
                        "stripe merge incomplete: all stripes finished "
                        f"but stripe {self._cursor % self._k} never "
                        f"delivered global chunk {self._cursor}"
                    ))
                self._inner.finish()

    def _port_abort(self) -> None:
        with self._lock:
            if self._aborted:
                return
            self._aborted = True
            for q in self._queues:
                q.clear()
            self._avail = [0] * self._k
            self._inner.abort()

    # ------------------------------------------------------------------
    # Merge core (lock held)
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        while not self._ended and self._error is None:
            j = self._cursor % self._k
            if self._avail[j] >= self._chunk:
                self._write_out(self._pop(j, self._chunk))
            elif self._finished[j]:
                if self._avail[j]:
                    # The stream's final, partial chunk.
                    self._write_out(self._pop(j, self._avail[j]))
                    self._cursor += 1
                self._mark_ended(j)
                return
            else:
                return  # waiting on stripe j's chain
            self._cursor += 1

    def _pop(self, stripe: int, want: int) -> bytes:
        q = self._queues[stripe]
        self._avail[stripe] -= want
        piece = q.popleft()
        if len(piece) == want:
            return piece
        if len(piece) > want:
            q.appendleft(piece[want:])
            return piece[:want]
        parts = [piece]
        got = len(piece)
        while got < want:
            piece = q.popleft()
            if got + len(piece) > want:
                take = want - got
                q.appendleft(piece[take:])
                piece = piece[:take]
            parts.append(piece)
            got += len(piece)
        return b"".join(parts)

    def _write_out(self, data: bytes) -> None:
        try:
            self._inner.write_chunk(data)
        except Exception as exc:
            self._fail(exc)
        self.bytes_written += len(data)

    def _mark_ended(self, at_stripe: int) -> None:
        self._ended = True
        stragglers = [j for j in range(self._k) if self._avail[j]]
        if stragglers:
            self._fail(SinkError(
                f"stripe merge desync: stream ended at stripe {at_stripe} "
                f"(global chunk {self._cursor}) but stripe(s) "
                f"{stragglers} still hold undelivered bytes"
            ))

    def _fail(self, exc: Exception) -> None:
        if self._error is None:
            self._error = exc
        raise exc

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise SinkError(f"stripe merge already failed: {self._error}")
