"""Structured broadcast event tracing, shared by the runtime and simulator.

The paper's evaluation (§IV) reasons from *timelines*: when each node
connected, stalled, pinged its neighbour, failed over, fetched a hole,
and finished.  This module is the event substrate both implementations
emit into so a crash-injection run on real TCP and its simulated twin
produce comparable, machine-readable chronologies:

* :data:`CONNECT` … :data:`DONE` — the typed event vocabulary;
* :class:`TraceEvent` — one immutable, slot-allocated record stamped
  with node, time, and stream offset;
* :class:`TraceCollector` — a lock-free bounded ring of events (list
  appends and ``itertools.count`` are atomic under the GIL, so the hot
  path takes no lock) with per-node timelines, JSONL export, and a
  human-readable failure chronology;
* :class:`NullRecorder` / :data:`NULL_TRACER` — the zero-overhead
  disabled path.  Hot call sites guard with ``if tracer.enabled:`` so a
  disabled trace costs one attribute load per chunk and allocates
  nothing (verified against ``BENCH_loopback.json`` by
  ``scripts/bench_loopback.py``).

Clocks: the runtime stamps events with ``time.monotonic()`` relative to
collector creation; the discrete-event simulator passes its own clock
(``engine.now``) so simulated timelines use simulated seconds.  Both
start at ~0, which is what makes the two renderings comparable.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional, Tuple

__all__ = [
    "CONNECT", "CHUNK", "STALL", "PING", "FAILOVER", "ELECTION", "PGET",
    "FORGET", "QUIT", "REPORT", "DONE", "CACHE_HIT", "SESSION", "EVENT_TYPES",
    "DETECTOR_ERROR", "DETECTOR_PING", "DETECTOR_CONNECT",
    "DETECTOR_PROC_EXIT",
    "classify_detector", "TraceEvent", "NullRecorder", "NULL_TRACER",
    "TraceCollector",
]

#: Event vocabulary.  One constant per protocol-visible incident; the
#: values are the strings that appear in JSONL output.
CONNECT = "connect"    #: a connection was established / adopted
CHUNK = "chunk"        #: one DATA chunk received and accounted
STALL = "stall"        #: a read or write exceeded the I/O timeout
PING = "ping"          #: a liveness probe was answered (or not)
FAILOVER = "failover"  #: a peer was declared dead and routed around
ELECTION = "election"  #: a quorum chose a new head after head death
PGET = "pget"          #: a recovery range fetch from the head
FORGET = "forget"      #: data unrecoverable behind the buffer window
QUIT = "quit"          #: a deliberate abort (user interrupt / data loss)
REPORT = "report"      #: the failure report passed through this node
DONE = "done"          #: the node completed its duties (ok or failed)
CACHE_HIT = "cache-hit"  #: a chunk was served from the local content cache
SESSION = "session"    #: daemon session lifecycle (open / start / close)

EVENT_TYPES = frozenset(
    (CONNECT, CHUNK, STALL, PING, FAILOVER, ELECTION, PGET, FORGET, QUIT,
     REPORT, DONE, CACHE_HIT, SESSION)
)

#: FAILOVER detector taxonomy (§III-D1): how a death was established.
DETECTOR_ERROR = "error"      #: a syscall failed (reset / refused write)
DETECTOR_PING = "ping"        #: stalled or silent, then an unanswered ping
DETECTOR_CONNECT = "connect"  #: connection attempt refused / timed out
#: Coordinator-only: ``waitpid`` saw the agent process exit.  Unlike the
#: three in-band detectors above, this one needs no protocol traffic —
#: it exists only on backends where nodes are real OS processes.
DETECTOR_PROC_EXIT = "proc-exit"


def classify_detector(reason: str) -> str:
    """Map a failure-record reason string onto the detector taxonomy.

    Both the runtime and the protocol simulator phrase their reasons the
    same way (``"... ping unanswered"`` for timeout+ping detections,
    ``"connect-failed: ..."`` for refused connections), so one
    classifier keeps the two backends' FAILOVER events comparable.  The
    process backend's coordinator prefixes its waitpid-based detections
    with ``"proc-exit"`` to keep them distinguishable from both.
    """
    if reason.startswith("proc-exit"):
        return DETECTOR_PROC_EXIT
    if "ping unanswered" in reason:
        return DETECTOR_PING
    if reason.startswith(("connect-failed", "no-handshake")):
        return DETECTOR_CONNECT
    return DETECTOR_ERROR


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured broadcast event."""

    seq: int                       #: global emission order (ties on ``t``)
    t: float                       #: seconds since trace start (or sim time)
    type: str                      #: one of :data:`EVENT_TYPES`
    node: str                      #: the node this event happened *on*
    offset: Optional[int] = None   #: stream offset, where meaningful
    peer: Optional[str] = None     #: the other node involved, if any
    detail: str = ""               #: free-form context (reason, conn kind)
    detector: Optional[str] = None  #: FAILOVER only: how death was detected

    def to_dict(self) -> dict:
        """JSON-ready mapping; ``None`` fields are dropped."""
        d = {"seq": self.seq, "t": round(self.t, 6),
             "type": self.type, "node": self.node}
        if self.offset is not None:
            d["offset"] = self.offset
        if self.peer is not None:
            d["peer"] = self.peer
        if self.detail:
            d["detail"] = self.detail
        if self.detector is not None:
            d["detector"] = self.detector
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        return cls(
            seq=d["seq"], t=d["t"], type=d["type"], node=d["node"],
            offset=d.get("offset"), peer=d.get("peer"),
            detail=d.get("detail", ""), detector=d.get("detector"),
        )


class NullRecorder:
    """The disabled trace: accepts every emission and keeps nothing.

    ``enabled`` is ``False`` so hot paths (one CHUNK per DATA frame) can
    skip even the no-op call; cold paths may call :meth:`emit`
    unconditionally.
    """

    enabled = False

    def emit(self, type_: str, node: str, **kwargs) -> None:
        pass


#: Shared no-op recorder — the default everywhere a tracer is accepted.
NULL_TRACER = NullRecorder()


class TraceCollector:
    """Bounded in-memory ring of :class:`TraceEvent` records.

    Thread-safe without a lock: the ring is a ``deque(maxlen=...)``
    whose ``append`` is atomic under the GIL, and sequence numbers come
    from ``itertools.count``.  Cheap enough that a traced run's only
    measurable cost is the per-event record allocation.

    Parameters
    ----------
    capacity:
        Max events retained; older events fall off the front.
    clock:
        Time source.  Defaults to ``time.monotonic``; the simulator
        passes its own (``lambda: engine.now``).
    zero:
        Trace epoch.  ``None`` (default) stamps events relative to
        collector creation; the simulator passes ``0.0`` so event times
        *are* simulated seconds.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 1 << 16,
        *,
        clock: Callable[[], float] = time.monotonic,
        zero: Optional[float] = None,
    ) -> None:
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._clock = clock
        self._t0 = clock() if zero is None else zero

    # -- recording (hot path) -------------------------------------------

    def emit(
        self,
        type_: str,
        node: str,
        *,
        t: Optional[float] = None,
        offset: Optional[int] = None,
        peer: Optional[str] = None,
        detail: str = "",
        detector: Optional[str] = None,
    ) -> None:
        """Append one event, stamped now unless ``t`` is given."""
        self._ring.append(TraceEvent(
            seq=next(self._seq),
            t=(self._clock() - self._t0) if t is None else t,
            type=type_, node=node, offset=offset, peer=peer,
            detail=detail, detector=detector,
        ))

    # -- querying --------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Snapshot of retained events in emission order."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self.events())

    def timeline(self, node: str) -> List[TraceEvent]:
        """Events that happened on ``node``, in order."""
        return [e for e in self._ring if e.node == node]

    def of_type(self, *types: str) -> List[TraceEvent]:
        """Events whose type is in ``types``, in order."""
        wanted = frozenset(types)
        return [e for e in self._ring if e.type in wanted]

    def milestones(self, *types: str) -> List[Tuple[str, str]]:
        """``(type, node)`` projection — the backend-comparable skeleton.

        Defaults to the failure-and-completion milestones (FAILOVER,
        FORGET, QUIT, DONE) whose causal order the protocol dictates, so
        a real TCP run and its simulated twin of the same scenario yield
        the *same* sequence despite incomparable clocks.
        """
        wanted = frozenset(types) if types else frozenset(
            (FAILOVER, FORGET, QUIT, DONE)
        )
        return [(e.type, e.node) for e in self._ring if e.type in wanted]

    # -- rendering -------------------------------------------------------

    def to_jsonl(self, path: Optional[str] = None) -> str:
        """Serialize as JSON Lines (one event object per line).

        Returns the text; also writes it to ``path`` when given.
        """
        text = "\n".join(json.dumps(e.to_dict(), sort_keys=True)
                         for e in self._ring)
        if text:
            text += "\n"
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    @classmethod
    def from_jsonl(cls, text_or_lines) -> List[TraceEvent]:
        """Parse JSONL (a string or an iterable of lines) back to events."""
        if isinstance(text_or_lines, str):
            lines: Iterable[str] = text_or_lines.splitlines()
        else:
            lines = text_or_lines
        return [TraceEvent.from_dict(json.loads(line))
                for line in lines if line.strip()]

    def failure_chronology(self) -> str:
        """Human-readable timeline of everything fault-tolerance did.

        One line per STALL / PING / FAILOVER / PGET / FORGET / QUIT /
        REPORT event — the §IV-G narrative ("did the upstream really
        disambiguate congestion from death via ping?") read straight off
        the trace instead of out of the code.
        """
        interesting = self.of_type(STALL, PING, FAILOVER, ELECTION, PGET,
                                   FORGET, QUIT, REPORT)
        if not interesting:
            return "(no failure activity traced)"
        lines = ["failure chronology:"]
        for e in interesting:
            what = e.type.upper()
            where = f" @{e.offset}" if e.offset is not None else ""
            who = f" -> {e.peer}" if e.peer else ""
            via = f" [{e.detector}]" if e.detector else ""
            why = f": {e.detail}" if e.detail else ""
            lines.append(
                f"  {e.t:10.4f}s  {e.node:>8s}  {what}{who}{where}{via}{why}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line census of the trace."""
        counts: dict = {}
        for e in self._ring:
            counts[e.type] = counts.get(e.type, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"{len(self._ring)} events ({parts or 'empty'})"
