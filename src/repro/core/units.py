"""Byte/bandwidth unit helpers.

The paper mixes decimal network units (1 Gbit/s = 125 MB/s) with binary
file sizes (2 GB files).  To keep experiment definitions readable and free
of magic numbers, this module provides named constants and parsing helpers.

Conventions used throughout the library:

* sizes and offsets are ``int`` bytes;
* bandwidths are ``float`` bytes/second;
* times are ``float`` seconds.
"""

from __future__ import annotations

import re

#: Decimal multiples (used for network rates, as in "1 Gbit/s").
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: Binary multiples (used for memory/file sizes, as in "a 2 GiB file").
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

#: Line rates of the fabrics evaluated in the paper, in bytes/second.
GIGABIT = 1e9 / 8.0          # 125 MB/s
TEN_GIGABIT = 10e9 / 8.0     # 1250 MB/s
TWENTY_GIGABIT = 20e9 / 8.0  # 2500 MB/s (IPoIB on DDR InfiniBand)

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]i?B?|B)?\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    None: 1,
    "B": 1,
    "K": KB, "KB": KB, "KIB": KiB,
    "M": MB, "MB": MB, "MIB": MiB,
    "G": GB, "GB": GB, "GIB": GiB,
    "T": 1_000_000_000_000, "TB": 1_000_000_000_000, "TIB": 1 << 40,
}


def parse_size(text: str | int) -> int:
    """Parse a human-readable size such as ``"2GB"``, ``"512MiB"``, ``"50M"``.

    Integers pass through unchanged.  Uppercase/lowercase is ignored; the
    ``i`` infix selects binary multiples.

    >>> parse_size("1KB")
    1000
    >>> parse_size("1KiB")
    1024
    """
    if isinstance(text, int):
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size: {text!r}")
    unit = m.group("unit")
    factor = _UNIT_FACTORS[unit.upper() if unit else None]
    return int(float(m.group("num")) * factor)


def mbps(byte_rate: float) -> float:
    """Convert bytes/second to the paper's MB/s axis (decimal megabytes)."""
    return byte_rate / MB


def gbit(byte_rate: float) -> float:
    """Convert bytes/second to Gbit/s."""
    return byte_rate * 8.0 / 1e9


def fmt_rate(byte_rate: float) -> str:
    """Human-readable rate, e.g. ``"117.3 MB/s"``."""
    return f"{mbps(byte_rate):.1f} MB/s"


def fmt_size(nbytes: int) -> str:
    """Human-readable size using decimal units, e.g. ``"2.0 GB"``."""
    if nbytes >= GB:
        return f"{nbytes / GB:.1f} GB"
    if nbytes >= MB:
        return f"{nbytes / MB:.1f} MB"
    if nbytes >= KB:
        return f"{nbytes / KB:.1f} KB"
    return f"{nbytes} B"
