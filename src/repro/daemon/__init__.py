"""Broadcast-as-a-service: a persistent agent fleet running many
concurrent named sessions over one windowed launch.

The one-shot backends pay process launch per broadcast; the daemon pays
it once.  :class:`DaemonServer` owns the fleet and multiplexes sessions
(push chains, cache-served re-broadcasts, late-joiner pull catch-up);
:class:`DaemonClient` talks to a ``kascade serve`` over its submit
socket; :class:`LateJoin` names a node that enters a session mid-flight.

    with DaemonServer(["n1", "n2", "n3"]) as server:
        cold = server.submit(FileSource(path))   # push chain
        warm = server.submit(FileSource(path))   # served from cache

Or across processes::

    kascade serve --fleet 4 --listen 127.0.0.1:7641
    kascade submit --server 127.0.0.1:7641 -i artifact.tgz
"""

from .client import DaemonClient, serve_clients
from .server import DaemonServer, FleetCoordinator, LateJoin

__all__ = [
    "DaemonClient",
    "DaemonServer",
    "FleetCoordinator",
    "LateJoin",
    "serve_clients",
]
