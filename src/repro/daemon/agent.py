"""The fleet agent: one long-lived process, many broadcast sessions.

The one-shot ``kascade agent`` (:mod:`repro.deploy.agent`) lives for
exactly one transfer: register, wait for ``start``, run, report, exit.
A *fleet* agent registers once and then loops, multiplexing named
sessions over the same control connection — the windowed-launch cost
(interpreter start, import, register) is paid once per fleet, not once
per broadcast.  Per session it can play three roles:

``session_start``
    Run the push chain for this session: bind happened at
    ``session_open``, the transfer itself is the shared
    :func:`repro.deploy.agent.execute_transfer` on a worker thread,
    with the process-wide :class:`~repro.core.cache.ChunkCache` tapping
    every received chunk.

``session_serve_cached``
    The re-broadcast short-circuit: every chunk of the artifact is
    already in the local cache, so the agent never touches upstream —
    it replays the cached chunks through a fresh
    :class:`~repro.deploy.agent.DigestSink` into the session's sink and
    reports the same digest-bearing status a wire transfer would.

``session_join``
    Late-joiner catch-up: pull the artifact chunk-by-chunk from
    cache-warm peers' pull servers (§III-D2's PGET, aimed at a peer
    cache instead of an upstream ring) while the push chain — which
    this node is *not* part of — continues undisturbed.

Every fleet agent also runs a :class:`PullServer`: a dumb
request/response loop over its cache (JSON header + raw chunk bytes)
that late joiners — and nothing else — dial.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import tracing
from ..core.cache import ArtifactMeta, ChunkCache
from ..core.perfstats import get_stats
from ..core.sinks import FileSink, NullSink, Sink
from ..core.tracing import TraceCollector
from ..deploy.agent import (
    EXIT_FAILED,
    EXIT_OK,
    EXIT_USAGE,
    DigestSink,
    TransferSetupError,
    _Heartbeat,
    execute_transfer,
)
from ..deploy.protocol import ControlChannel, DeployError, connect_control
from ..runtime.transport import Listener

#: How long a late joiner keeps retrying a chunk no peer has *yet*
#: before each re-ask (the push chain is still filling peer caches).
PULL_RETRY_S = 0.05


class PullServer:
    """Serve cached chunks to late joiners over a trivial TCP protocol.

    One request per line: ``{"digest": ..., "index": n}``; the reply is
    one JSON header line ``{"n": <len>}`` followed by exactly ``len``
    raw payload bytes — or ``{"n": -1}`` when the chunk is not (yet) in
    the cache, which a joiner treats as "retry, the push is still
    ahead of me".  Connections are persistent: a joiner pulls a whole
    prefix over one socket.
    """

    def __init__(self, cache: ChunkCache, host: str = "127.0.0.1") -> None:
        self._cache = cache
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = False
        self._thread = threading.Thread(
            target=self._accept_loop, name="pull-server", daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             name="pull-conn", daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            for line in reader:
                try:
                    req = json.loads(line)
                    digest = str(req["digest"])
                    index = int(req["index"])
                except (ValueError, KeyError, TypeError):
                    break
                data = self._cache.get(digest, index)
                if data is None:
                    conn.sendall(b'{"n":-1}\n')
                else:
                    conn.sendall(b'{"n":%d}\n' % len(data) + data)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


def pull_chunk(
    conn: socket.socket,
    digest: str,
    index: int,
) -> Optional[bytes]:
    """One request/response against an open pull-server connection.

    ``None`` means the peer does not have the chunk yet (the ``n = -1``
    reply); a broken connection raises ``OSError`` so the caller can
    rotate to the next peer.
    """
    conn.sendall(json.dumps({"digest": digest, "index": index}).encode()
                 + b"\n")
    header = b""
    while not header.endswith(b"\n"):
        byte = conn.recv(1)
        if not byte:
            raise OSError("pull peer closed mid-header")
        header += byte
    n = int(json.loads(header)["n"])
    if n < 0:
        return None
    buf = bytearray()
    while len(buf) < n:
        piece = conn.recv(n - len(buf))
        if not piece:
            raise OSError("pull peer closed mid-chunk")
        buf += piece
    return bytes(buf)


def _open_sink(output: Optional[str]) -> Sink:
    return FileSink(output) if output else NullSink()


def serve_from_cache(
    name: str,
    cache: ChunkCache,
    artifact: ArtifactMeta,
    output: Optional[str],
) -> dict:
    """Replay a fully-cached artifact into the session sink; no wire I/O.

    Returns a status payload shaped exactly like
    :func:`~repro.deploy.agent.execute_transfer`'s, with ``bytes = 0``
    (nothing crossed the data plane) and ``from_cache`` carrying the
    replayed byte count — the coordinator's proof that the re-broadcast
    cost zero upstream traffic.
    """
    tracer = TraceCollector()
    trace_epoch = time.time()
    stats_before = get_stats().snapshot()
    digest_sink = DigestSink(_open_sink(output))
    served = 0
    error: Optional[str] = None
    for index in range(artifact.chunks):
        data = cache.get(artifact.digest, index)
        if data is None:
            error = (f"cache lost chunk {index}/{artifact.chunks} of "
                     f"{artifact.digest[:12]} mid-serve")
            break
        digest_sink.write_chunk(data)
        tracer.emit(tracing.CACHE_HIT, name,
                    offset=index * artifact.chunk_size)
        served += len(data)
    if error is None and digest_sink.hexdigest() != artifact.digest:
        error = "cached artifact digest mismatch"
    if error is None:
        digest_sink.finish()
    else:
        digest_sink.abort()
    stats_after = get_stats().snapshot()
    return {
        "name": name,
        "ok": error is None,
        "bytes": 0,
        "crashed": False,
        "error": error,
        "digest": digest_sink.hexdigest(),
        "report": None,
        "failures": [],
        "from_cache": served,
        "perfstats": {k: stats_after[k] - stats_before.get(k, 0)
                      for k in stats_after},
        "trace": tracer.to_jsonl(),
        "trace_epoch": trace_epoch,
    }


def pull_catch_up(
    name: str,
    cache: ChunkCache,
    artifact: ArtifactMeta,
    peers: Sequence[Tuple[str, int]],
    output: Optional[str],
    *,
    progress_send,
    progress_every: int = 1 << 18,
    deadline: Optional[float] = None,
    retry_s: float = PULL_RETRY_S,
) -> dict:
    """Late-joiner pull phase: fetch the artifact prefix from warm peers.

    Chunks are pulled strictly in order (the sink is a stream) from the
    first peer that has them; a ``n = -1`` miss everywhere means the
    push chain has not produced that chunk yet, so the joiner sleeps
    ``retry_s`` and asks again — catch-up converges as the push runs.
    Pulled chunks also land in the *local* cache, so a joiner becomes a
    pull peer for the next joiner.
    """
    tracer = TraceCollector()
    trace_epoch = time.time()
    stats_before = get_stats().snapshot()
    digest_sink = DigestSink(_open_sink(output))
    conns: Dict[int, socket.socket] = {}
    pulled = 0
    last_progress = 0
    error: Optional[str] = None

    def connect(i: int) -> Optional[socket.socket]:
        if i in conns:
            return conns[i]
        host, port = peers[i]
        try:
            conn = socket.create_connection((host, port), timeout=5.0)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            return None
        conns[i] = conn
        return conn

    try:
        for index in range(artifact.chunks):
            data = cache.get(artifact.digest, index)
            while data is None:
                if deadline is not None and time.monotonic() > deadline:
                    error = (f"pull timed out at chunk "
                             f"{index}/{artifact.chunks}")
                    break
                seen_peer = False
                for i in range(len(peers)):
                    conn = connect(i)
                    if conn is None:
                        continue
                    seen_peer = True
                    try:
                        data = pull_chunk(conn, artifact.digest, index)
                    except OSError:
                        conns.pop(i, None)
                        try:
                            conn.close()
                        except OSError:
                            pass
                        continue
                    if data is not None:
                        host, port = peers[i]
                        tracer.emit(tracing.PGET, name,
                                    offset=index * artifact.chunk_size,
                                    peer=f"{host}:{port}")
                        break
                if data is None:
                    if not seen_peer:
                        error = "no pull peer reachable"
                        break
                    time.sleep(retry_s)
            if error is not None:
                break
            digest_sink.write_chunk(data)
            cache.put(artifact.digest, index, data)
            pulled += len(data)
            if pulled - last_progress >= progress_every:
                last_progress = pulled
                progress_send(pulled)
    finally:
        for conn in conns.values():
            try:
                conn.close()
            except OSError:
                pass
    if error is None and digest_sink.hexdigest() != artifact.digest:
        error = "pulled artifact digest mismatch"
    if error is None:
        digest_sink.finish()
    else:
        digest_sink.abort()
    stats_after = get_stats().snapshot()
    return {
        "name": name,
        "ok": error is None,
        "bytes": pulled,
        "crashed": False,
        "error": error,
        "digest": digest_sink.hexdigest(),
        "report": None,
        "failures": [],
        "from_cache": 0,
        "perfstats": {k: stats_after[k] - stats_before.get(k, 0)
                      for k in stats_after},
        "trace": tracer.to_jsonl(),
        "trace_epoch": trace_epoch,
    }


class _SessionState:
    """Agent-side record of one open session."""

    def __init__(self, session: str, listeners: List[Listener],
                 artifact: Optional[ArtifactMeta]) -> None:
        self.session = session
        self.listeners = listeners
        self.artifact = artifact
        self.worker: Optional[threading.Thread] = None

    def close_listeners(self) -> None:
        for listener in self.listeners:
            try:
                listener.close()
            except OSError:
                pass
        self.listeners = []


def run_fleet_agent(
    coordinator: Tuple[str, int],
    name: str,
    *,
    bind: str = "127.0.0.1",
    advertise: Optional[str] = None,
    start_timeout: float = 60.0,
    cache_bytes: int = 0,
    heartbeat_interval: float = 0.5,
) -> int:
    """Run one fleet agent until the server says ``quit``.

    Registers once (``hello`` with ``fleet: true`` and the pull-server
    port), then serves sessions forever: per ``session_open`` it binds
    fresh per-session data-plane listeners and acks with its cache
    state for the artifact; ``session_start`` / ``session_serve_cached``
    / ``session_join`` each run on their own worker thread, so many
    sessions overlap inside one process.  ``quit`` drains: active
    workers finish, then the process exits 0 — ``SIGKILL`` stays the
    server's abort path, not its happy path.
    """
    cache = ChunkCache(cache_bytes, stats=get_stats())
    pull_server = PullServer(cache, host=bind)
    try:
        channel = connect_control(coordinator[0], coordinator[1],
                                  timeout=start_timeout)
    except DeployError:
        pull_server.close()
        return EXIT_USAGE
    advertise_host = advertise or bind
    channel.send({
        "op": "hello",
        "name": name,
        "pid": os.getpid(),
        "host": advertise_host,
        "fleet": True,
        # The fleet agent has no boot-time data port: sessions bind
        # their own.  The registered "port" is the pull server, which
        # *is* this agent's one stable, always-on data endpoint.
        "port": pull_server.port,
        "ports": [pull_server.port],
        "pull_port": pull_server.port,
    })
    heartbeat = _Heartbeat(channel, heartbeat_interval)
    heartbeat.start()
    sessions: Dict[str, _SessionState] = {}
    lock = threading.Lock()
    exit_code = EXIT_OK

    def finish_session(state: _SessionState, status: dict) -> None:
        channel.send({"op": "session_status", "session": state.session,
                      **status})
        state.close_listeners()
        if state.artifact is not None:
            cache.unpin_artifact(state.artifact.digest)
        with lock:
            sessions.pop(state.session, None)

    def start_worker(state: _SessionState, fn) -> None:
        def run() -> None:
            try:
                status = fn()
            except TransferSetupError as exc:
                status = {"name": name, "ok": False, "bytes": 0,
                          "crashed": False, "error": str(exc),
                          "digest": None, "report": None, "failures": [],
                          "from_cache": 0, "perfstats": {}, "trace": "",
                          "trace_epoch": time.time()}
            except Exception as exc:  # a session must never kill the fleet
                status = {"name": name, "ok": False, "bytes": 0,
                          "crashed": True, "error": f"{type(exc).__name__}: {exc}",
                          "digest": None, "report": None, "failures": [],
                          "from_cache": 0, "perfstats": {}, "trace": "",
                          "trace_epoch": time.time()}
            finish_session(state, status)

        state.worker = threading.Thread(
            target=run, name=f"session-{state.session}", daemon=True)
        state.worker.start()

    try:
        while True:
            try:
                msg = channel.recv(timeout=0.5)
            except TimeoutError:
                continue
            except DeployError:
                exit_code = EXIT_FAILED
                break
            if msg is None:
                # Control EOF: the server is gone; drain and exit.
                break
            op = msg.get("op")
            if op == "quit":
                break
            if op == "cancel":
                break

            if op == "session_open":
                session = str(msg["session"])
                stripes = int(msg.get("stripes", 1))
                artifact = (ArtifactMeta.from_wire(msg["artifact"])
                            if msg.get("artifact") else None)
                listeners = [Listener(host=bind, port=0)
                             for _ in range(max(1, stripes))]
                state = _SessionState(session, listeners, artifact)
                with lock:
                    sessions[session] = state
                cached = has_all = 0
                if artifact is not None:
                    # Pin for the session's lifetime: a serve-cached or
                    # pull peer must not lose chunks to LRU mid-session.
                    cache.pin_artifact(artifact.digest)
                    cached = cache.contiguous_chunks(artifact.digest)
                    has_all = cache.has_artifact(artifact.digest,
                                                 artifact.chunks)
                channel.send({
                    "op": "session_ack",
                    "session": session,
                    "name": name,
                    "ports": [ln.address.port for ln in listeners],
                    "cached": int(cached),
                    "has_all": bool(has_all),
                })
                continue

            session = str(msg.get("session", ""))
            with lock:
                state = sessions.get(session)
            if op == "session_start":
                if state is None:
                    continue  # opened elsewhere / cancelled
                run_msg = dict(msg)
                listeners = state.listeners

                def progress_send(total: int, _sid=session) -> None:
                    channel.send({"op": "progress", "session": _sid,
                                  "bytes": total})

                start_worker(state, lambda m=run_msg, l=listeners,
                             p=progress_send: {
                                 **execute_transfer(m, l, name,
                                                    progress_send=p,
                                                    cache=cache),
                                 "from_cache": 0,
                             })
            elif op == "session_serve_cached":
                if state is None or state.artifact is None:
                    continue
                output = msg.get("output")
                start_worker(state, lambda a=state.artifact, o=output:
                             serve_from_cache(name, cache, a, o))
            elif op == "session_join":
                artifact = (ArtifactMeta.from_wire(msg["artifact"])
                            if msg.get("artifact") else None)
                if artifact is None:
                    continue
                if state is None:
                    # A joiner needs no data-plane listeners, so join is
                    # self-contained: open-on-arrival.
                    state = _SessionState(session, [], artifact)
                    cache.pin_artifact(artifact.digest)
                    with lock:
                        sessions[session] = state
                peers = [(str(h), int(p)) for h, p in msg.get("peers", [])]
                output = msg.get("output")
                every = int(msg.get("progress_every", 1 << 18))
                run_deadline = time.monotonic() + float(
                    msg.get("run_timeout", 600.0))

                def join_progress(total: int, _sid=session) -> None:
                    channel.send({"op": "progress", "session": _sid,
                                  "bytes": total})

                start_worker(state, lambda a=artifact, pe=peers, o=output,
                             ev=every, dl=run_deadline, pr=join_progress:
                             pull_catch_up(name, cache, a, pe, o,
                                           progress_send=pr,
                                           progress_every=ev, deadline=dl))
            elif op == "session_cancel":
                if state is not None and state.worker is None:
                    state.close_listeners()
                    if state.artifact is not None:
                        cache.unpin_artifact(state.artifact.digest)
                    with lock:
                        sessions.pop(session, None)
            # anything else: ignore — forward compatibility
    finally:
        # Drain: let in-flight sessions finish before exiting cleanly.
        with lock:
            workers = [s.worker for s in sessions.values()
                       if s.worker is not None]
        for worker in workers:
            worker.join(timeout=10.0)
        heartbeat.stop()
        pull_server.close()
        channel.close()
    return exit_code
