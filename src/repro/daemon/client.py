"""Submit socket for ``kascade serve`` and the matching client.

The server side (:func:`serve_clients`) is a tiny newline-JSON request
loop in front of a running :class:`~repro.daemon.server.DaemonServer` —
deliberately the same boring wire style as the deploy control plane, so
``nc HOST PORT`` shows the whole conversation.  One request per line:

=============  ======================================================
``ping``       liveness + fleet census
``submit``     run one session; the reply is the result summary
``shutdown``   graceful fleet teardown, then the server loop exits
=============  ======================================================

:class:`DaemonClient` is the programmatic caller ``kascade submit``
wraps; each request opens a fresh connection (submissions are long —
holding one socket per outstanding submit keeps the server loop dumb).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, List, Optional, Sequence

from ..core.errors import KascadeError
from ..core.sources import FileSource
from .server import DaemonServer, LateJoin


def _result_summary(result) -> dict:
    """The JSON-safe slice of a BroadcastResult a submit reply carries."""
    return {
        "ok": result.ok,
        "bytes": result.total_bytes,
        "duration": result.duration,
        "digests": {name: outcome.digest
                    for name, outcome in result.outcomes.items()
                    if outcome.digest},
        "failed": result.failed_nodes,
        "perfstats": dict(result.perfstats),
        "report": result.report.summary(),
    }


def serve_clients(
    server: DaemonServer,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: Optional[threading.Event] = None,
    on_bound=None,
) -> None:
    """Accept submit/ping/shutdown requests until a shutdown arrives.

    Blocks the calling thread (``kascade serve`` *is* this loop).  Each
    connection is handled on its own thread so long submits do not block
    pings or concurrent submits — concurrent sessions on one fleet is
    the entire point of the daemon.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(16)
    bound = sock.getsockname()[:2]
    if on_bound is not None:
        on_bound(*bound)
    if ready is not None:
        ready.set()
    done = threading.Event()

    def handle(conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            line = reader.readline()
            if not line:
                return
            try:
                req = json.loads(line)
            except ValueError:
                conn.sendall(b'{"ok":false,"error":"bad request"}\n')
                return
            reply = _dispatch(server, req, done)
            conn.sendall(json.dumps(reply).encode() + b"\n")
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    try:
        while not done.is_set():
            sock.settimeout(0.25)
            try:
                conn, _peer = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=handle, args=(conn,),
                             name="daemon-client", daemon=True).start()
    finally:
        sock.close()
        server.shutdown()


def _dispatch(server: DaemonServer, req: dict,
              done: threading.Event) -> dict:
    cmd = req.get("cmd")
    if cmd == "ping":
        return {
            "ok": True,
            "fleet": list(server.fleet),
            "registered": server.registered,
            "sessions_completed": server.sessions_completed,
        }
    if cmd == "shutdown":
        done.set()
        return {"ok": True}
    if cmd == "submit":
        try:
            late = [LateJoin(str(n), int(b))
                    for n, b in req.get("late_join") or []]
            result = server.submit(
                FileSource(str(req["source"])),
                req.get("receivers"),
                head=req.get("head"),
                output_template=req.get("output_template"),
                late_join=late,
                session=req.get("session"),
                timeout=float(req.get("timeout", 120.0)),
            )
        except (KascadeError, OSError, KeyError, ValueError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return _result_summary(result)
    return {"ok": False, "error": f"unknown cmd {cmd!r}"}


class DaemonClient:
    """Talk to a running ``kascade serve`` over its submit socket."""

    def __init__(self, host: str, port: int, *,
                 connect_timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout

    def _request(self, payload: dict, timeout: Optional[float]) -> dict:
        try:
            conn = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
        except OSError as exc:
            raise KascadeError(
                f"kascade serve at {self.host}:{self.port} unreachable: "
                f"{exc}") from None
        try:
            conn.settimeout(timeout)
            conn.sendall(json.dumps(payload).encode() + b"\n")
            reader = conn.makefile("rb")
            line = reader.readline()
        finally:
            conn.close()
        if not line:
            raise KascadeError("server closed without a reply")
        return json.loads(line)

    def ping(self, timeout: float = 5.0) -> dict:
        return self._request({"cmd": "ping"}, timeout)

    def shutdown(self, timeout: float = 10.0) -> dict:
        return self._request({"cmd": "shutdown"}, timeout)

    def submit(
        self,
        source_path: str,
        receivers: Optional[Sequence[str]] = None,
        *,
        head: Optional[str] = None,
        output_template: Optional[str] = None,
        late_join: Sequence = (),
        session: Optional[str] = None,
        timeout: float = 120.0,
    ) -> dict:
        """Submit one session; blocks until the session completes.

        ``late_join`` takes ``(node, after_bytes)`` pairs.  Returns the
        server's result summary (ok / bytes / digests / perfstats).
        """
        payload = {
            "cmd": "submit",
            "source": source_path,
            "receivers": list(receivers) if receivers is not None else None,
            "head": head,
            "output_template": output_template,
            "late_join": [[n, b] for n, b in late_join],
            "session": session,
            "timeout": timeout,
        }
        # Generous socket timeout: the session itself enforces the real
        # deadline server-side.
        return self._request(payload, timeout + 30.0)
