"""The ``kascade serve`` coordinator: one warm fleet, many sessions.

:class:`DaemonServer` owns a persistent agent fleet (launched once,
windowed, exactly like the procs backend) and multiplexes *named
broadcast sessions* over it.  The per-broadcast cost model changes
shape: the one-shot procs backend pays interpreter start + import +
register per broadcast; here that is paid once at :meth:`start` and
amortised over every :meth:`submit` — a warm-session submit carries
``launch=None`` on its :class:`~repro.runtime.BroadcastResult` because
no process was launched for it.

A session runs in three phases, any of which may be empty:

1. **Warm partition** — the ``session_open`` acks carry each agent's
   content-addressed cache state for the artifact; receivers that
   already hold every chunk are told ``session_serve_cached`` and never
   touch upstream (local replay + digest proof, zero wire bytes).
2. **Push** — the remaining cold receivers get a fresh
   :class:`~repro.core.plan.ChainPlan` and run the ordinary pipelined
   chain via ``session_start``.
3. **Pull** — late joiners (registered mid-session via
   :class:`LateJoin`) catch up on the already-broadcast prefix by
   PGETting chunks from cache-warm peers' pull servers while the push
   continues undisturbed.

Per-session chaos plans are validated against the *session's*
participants: naming a fleet member that is not in the session is its
own, clearer error than naming an unknown node (see
:meth:`repro.deploy.chaos.ChaosEngine.validate`).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import tracing
from ..core.cache import ArtifactMeta
from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.perfstats import get_stats
from ..core.plan import ChainPlan
from ..core.report import TransferReport
from ..core.sources import FileSource, Source
from ..core.tracing import NULL_TRACER, TraceCollector
from ..deploy.agent import config_to_wire
from ..deploy.chaos import ChaosEngine, ChaosPlan
from ..deploy.coordinator import (
    Coordinator,
    describe_exit,
    rebase_events,
)
from ..deploy.launcher import LaunchReport, WindowedLauncher
from ..runtime.cluster import BroadcastResult
from ..runtime.node import NodeOutcome


@dataclass(frozen=True)
class LateJoin:
    """Register ``node`` into a running session once the push has moved
    ``after_bytes`` — the node then *pulls* the missing prefix from
    cache-warm peers instead of restarting the broadcast."""

    node: str
    after_bytes: int = 0


@dataclass
class _Session:
    """Server-side record of one in-flight session."""

    id: str
    artifact: ArtifactMeta
    head: str
    receivers: Tuple[str, ...]
    chaos: ChaosEngine
    output_template: Optional[str]
    wall0: float
    deadline: float
    cond: threading.Condition = field(default_factory=threading.Condition)
    acks: Dict[str, dict] = field(default_factory=dict)
    statuses: Dict[str, dict] = field(default_factory=dict)
    dead: Dict[str, str] = field(default_factory=dict)
    progress: Dict[str, int] = field(default_factory=dict)
    #: Names a final status is expected from (grows as joiners trigger).
    expected: set = field(default_factory=set)
    #: The push participants (head + cold receivers) — "push done" means
    #: all of these resolved, which force-triggers any remaining joins.
    push_nodes: set = field(default_factory=set)
    pending_joins: List[LateJoin] = field(default_factory=list)
    joined: List[str] = field(default_factory=list)
    crashed_by_chaos: Dict[str, str] = field(default_factory=dict)
    #: (t_relative, detail) server-side session milestones, emitted into
    #: the merged trace at collect time.
    events: List[Tuple[float, str]] = field(default_factory=list)
    active_hwm: int = 1

    def resolved(self, name: str) -> bool:
        return name in self.statuses or name in self.dead

    def note(self, detail: str) -> None:
        self.events.append((time.time() - self.wall0, detail))


class FleetCoordinator(Coordinator):
    """A :class:`~repro.deploy.coordinator.Coordinator` whose read loop
    routes session-scoped messages to the server instead of assuming the
    one-broadcast-per-process shape."""

    def __init__(self, *, router: Callable[[object, dict], None],
                 **kwargs) -> None:
        self._router = router
        super().__init__(**kwargs)

    def _read_loop(self, agent) -> None:
        while not self._closed:
            try:
                msg = agent.channel.recv(timeout=0.5)
            except TimeoutError:
                continue
            except Exception:
                break
            if msg is None:
                break
            with self._cond:
                agent.last_heard = time.monotonic()
            if msg.get("op") == "heartbeat":
                continue
            self._router(agent, msg)


def _materialize_source(source: Source) -> Tuple[str, Callable[[], None]]:
    """A filesystem path agents can open, plus its cleanup (same rules
    as the procs backend: file sources by path, everything else spooled
    once — the head needs a seekable file for PGET recovery anyway)."""
    if isinstance(source, FileSource):
        return source.path, lambda: None
    fd, path = tempfile.mkstemp(prefix="kascade-src-")
    try:
        with os.fdopen(fd, "wb") as spool:
            while True:
                chunk = source.read_chunk(1 << 20)
                if not chunk:
                    break
                spool.write(chunk)
    except BaseException:
        os.unlink(path)
        raise
    return path, lambda: os.unlink(path)


def _sha256_file(path: str) -> Tuple[str, int]:
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
            size += len(block)
    return digest.hexdigest(), size


class DaemonServer:
    """Broadcast-as-a-service: launch a fleet once, submit many times.

    Parameters
    ----------
    fleet:
        Agent names, e.g. ``["n1", ..., "n8"]``.  Every session's head,
        receivers, and late joiners must come from this set.
    config:
        Protocol tunables shared by every session (``config.cache_bytes``
        sizes each agent's chunk cache unless ``cache_bytes`` overrides).
    window / spawn_retries / startup_timeout / backoff:
        Windowed-launcher knobs, paid once at :meth:`start`.
    heartbeat_interval / heartbeat_timeout / progress_every / python /
    bind_host / stderr_dir:
        As on :class:`~repro.deploy.ProcBroadcast`.

    Usage::

        with DaemonServer(["n1", "n2", "n3"], config=cfg) as server:
            first = server.submit(FileSource(path))       # cold: push chain
            again = server.submit(FileSource(path))       # warm: from cache
    """

    def __init__(
        self,
        fleet: Sequence[str],
        *,
        config: KascadeConfig = DEFAULT_CONFIG,
        cache_bytes: Optional[int] = None,
        window: int = 8,
        spawn_retries: int = 1,
        startup_timeout: float = 15.0,
        backoff: float = 0.2,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: Optional[float] = None,
        progress_every: int = 1 << 18,
        python: Optional[str] = None,
        bind_host: str = "127.0.0.1",
        stderr_dir: Optional[str] = None,
        coordinator_replicas: int = 0,
        tracer=NULL_TRACER,
    ) -> None:
        if len(fleet) < 2:
            raise KascadeError("a fleet needs at least a head and a receiver")
        if len(set(fleet)) != len(fleet):
            raise KascadeError("duplicate names in fleet")
        self.fleet = tuple(fleet)
        self.config = config
        self.cache_bytes = (cache_bytes if cache_bytes is not None
                            else config.cache_bytes)
        self.window = window
        self.spawn_retries = spawn_retries
        self.startup_timeout = startup_timeout
        self.backoff = backoff
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else max(2.0, 5 * heartbeat_interval))
        self.progress_every = progress_every
        self.python = python or sys.executable
        self.bind_host = bind_host
        self.stderr_dir = stderr_dir
        self.coordinator_replicas = coordinator_replicas
        self.tracer = tracer
        #: Filled by :meth:`start` — the one windowed launch the whole
        #: server lifetime amortises.
        self.launch_report: Optional[LaunchReport] = None

        self._coordinator: Optional[FleetCoordinator] = None
        self._quorum = None
        self._replica_procs: List[subprocess.Popen] = []
        self._procs: Dict[str, subprocess.Popen] = {}
        self._lock = threading.Lock()
        self._sessions: Dict[str, _Session] = {}
        self._session_seq = 0
        self._sessions_completed = 0
        self._artifact_memo: Dict[Tuple[str, int, int], Tuple[str, int]] = {}
        self._stop_reaper = threading.Event()
        self._reaper: Optional[threading.Thread] = None
        self._pump: Optional[threading.Thread] = None
        self._started = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "DaemonServer":
        """Launch the fleet (windowed) and start supervision."""
        if self._started:
            return self
        if self.coordinator_replicas >= 1:
            from ..control.client import QuorumClient
            from ..control.replica import spawn_replicas

            self._replica_procs, addrs = spawn_replicas(
                self.coordinator_replicas, python=self.python,
                bind_host=self.bind_host, env=self._spawn_base_env(),
            )
            self._quorum = QuorumClient(addrs, proposer_id=os.getpid())
        self._coordinator = FleetCoordinator(router=self._route,
                                             tracer=self.tracer)
        launcher = WindowedLauncher(
            self._make_spawn(self._coordinator.address),
            window=self.window,
            retries=self.spawn_retries,
            backoff=self.backoff,
            startup_timeout=self.startup_timeout,
        )
        report = launcher.launch(self.fleet, self._coordinator.wait_registered)
        self.launch_report = report
        self._procs = {name: nl.proc for name, nl in report.nodes.items()
                       if nl.ok}
        if not report.launched:
            self._coordinator.close()
            self._stop_replicas()
            raise KascadeError("no fleet agent launched")
        for name in self._coordinator.registered_names():
            agent = self._coordinator.agent(name)
            if agent is not None and agent.address is not None:
                self._commit({"kind": "register", "node": name,
                              "host": agent.address.host,
                              "port": agent.address.port,
                              "pid": agent.pid})
        self._reaper = threading.Thread(target=self._reaper_loop,
                                        name="fleet-reaper", daemon=True)
        self._reaper.start()
        if self._quorum is not None:
            self._pump = threading.Thread(target=self._watermark_pump,
                                          name="fleet-watermarks",
                                          daemon=True)
            self._pump.start()
        self._started = True
        return self

    # -- the replicated control plane ------------------------------------

    def _commit(self, command: dict) -> None:
        """Replicate ``command`` to the control quorum, best-effort.

        The fleet's data plane never depends on a commit: a minority of
        dead replicas commits fine (majority rule), and even full quorum
        loss only stops state from being replicated — open sessions ride
        on, which is the availability contract the replicas exist to
        serve in the first place.
        """
        if self._quorum is None:
            return
        from ..control.client import QuorumError
        try:
            self._quorum.commit(command)
        except QuorumError:
            pass

    def _watermark_pump(self) -> None:
        """Replicate per-session progress high-water marks (0.25s tick).

        Watermark keys are ``<session>/<node>`` — the fleet multiplexes
        sessions, so progress is per (session, node), not per node.
        """
        last: Dict[str, int] = {}
        while not self._stop_reaper.wait(0.25):
            with self._lock:
                sessions = list(self._sessions.values())
            for sess in sessions:
                with sess.cond:
                    marks = dict(sess.progress)
                for node, received in sorted(marks.items()):
                    key = f"{sess.id}/{node}"
                    if received > last.get(key, -1):
                        last[key] = received
                        self._commit({"kind": "watermark", "node": key,
                                      "bytes": received})

    def _stop_replicas(self) -> None:
        if self._quorum is not None:
            try:
                self._quorum.shutdown_replicas()
            finally:
                self._quorum.close()
        for proc in self._replica_procs:
            try:
                proc.kill()
            except OSError:
                pass
        for proc in self._replica_procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass

    def shutdown(self, grace: float = 5.0) -> None:
        """Graceful fleet teardown: quit, drain, kill only stragglers."""
        if self._closed:
            return
        self._closed = True
        self._stop_reaper.set()
        if self._reaper is not None:
            self._reaper.join(timeout=2.0)
        if self._pump is not None:
            self._pump.join(timeout=2.0)
        if self._coordinator is not None:
            for name in self._coordinator.registered_names():
                self._coordinator.send(name, {"op": "quit"})
        deadline = time.monotonic() + grace
        for proc in self._procs.values():
            if proc is None:
                continue
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                try:
                    proc.kill()
                except (OSError, ProcessLookupError):
                    pass
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
        if self._coordinator is not None:
            self._coordinator.close()
        self._stop_replicas()

    def __enter__(self) -> "DaemonServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def registered(self) -> List[str]:
        return (self._coordinator.registered_names()
                if self._coordinator is not None else [])

    @property
    def sessions_completed(self) -> int:
        with self._lock:
            return self._sessions_completed

    # -- fleet spawning --------------------------------------------------

    def _spawn_base_env(self) -> dict:
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return env

    def _make_spawn(self, control) -> Callable[[str, int], subprocess.Popen]:
        env = self._spawn_base_env()
        base = [
            self.python, "-m", "repro.cli.kascade", "agent", "--fleet",
            "--coordinator", f"{control.host}:{control.port}",
            "--bind", self.bind_host,
            "--cache-bytes", str(self.cache_bytes),
            "--start-timeout", str(max(60.0, self.startup_timeout * 4)),
        ]

        def spawn(name: str, attempt: int) -> subprocess.Popen:
            cmd = base + ["--name", name]
            if self.stderr_dir is not None:
                stderr_path = os.path.join(self.stderr_dir,
                                           f"{name}.stderr.log")
                with open(stderr_path, "ab") as err:
                    return subprocess.Popen(cmd, stdin=subprocess.DEVNULL,
                                            stdout=subprocess.DEVNULL,
                                            stderr=err, env=env)
            return subprocess.Popen(cmd, stdin=subprocess.DEVNULL,
                                    stdout=subprocess.DEVNULL,
                                    stderr=subprocess.DEVNULL, env=env)

        return spawn

    # -- supervision -----------------------------------------------------

    def _reaper_loop(self) -> None:
        """waitpid + heartbeat supervision over the whole fleet.

        A dead fleet agent resolves every session it owed a status to —
        sessions must never hang on a process that no longer exists.
        """
        assert self._coordinator is not None
        reaped: set = set()
        self._coordinator.forgive_silence(self.fleet)
        while not self._stop_reaper.wait(0.05):
            for name, proc in self._procs.items():
                if proc is None or name in reaped:
                    continue
                rc = proc.poll()
                if rc is None:
                    continue
                reaped.add(name)
                reason = describe_exit(rc)
                if self._coordinator.mark_dead(name, reason):
                    self.tracer.emit(
                        tracing.FAILOVER, "server", peer=name,
                        detail=reason,
                        detector=tracing.DETECTOR_PROC_EXIT)
                self._fail_open_sessions(name, reason)
            for name in self._coordinator.silent_agents(
                    self.fleet, self.heartbeat_timeout):
                if name in reaped:
                    continue
                reason = (f"control-heartbeat silent > "
                          f"{self.heartbeat_timeout}s")
                if self._coordinator.mark_dead(name, reason):
                    self._fail_open_sessions(name, reason)

    def _fail_open_sessions(self, name: str, reason: str) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
        for sess in sessions:
            with sess.cond:
                if name in sess.expected and not sess.resolved(name):
                    sess.dead[name] = reason
                    sess.note(f"{name} died: {reason}")
                    sess.cond.notify_all()
            self._maybe_trigger_joins(sess)

    # -- message routing -------------------------------------------------

    def _route(self, agent, msg: dict) -> None:
        op = msg.get("op")
        sid = msg.get("session")
        if sid is None:
            return
        with self._lock:
            sess = self._sessions.get(str(sid))
        if sess is None:
            return
        if op == "session_ack":
            with sess.cond:
                sess.acks[agent.name] = msg
                sess.cond.notify_all()
        elif op == "progress":
            received = int(msg.get("bytes", 0))
            with sess.cond:
                sess.progress[agent.name] = max(
                    sess.progress.get(agent.name, 0), received)
            fired = sess.chaos.on_progress(agent.name, received, agent.pid)
            if fired is not None:
                with sess.cond:
                    sess.crashed_by_chaos[agent.name] = fired
                    sess.note(f"chaos fired {fired} at {agent.name}")
            self._maybe_trigger_joins(sess)
        elif op == "session_status":
            with sess.cond:
                sess.statuses[agent.name] = msg
                sess.cond.notify_all()
            self._maybe_trigger_joins(sess)

    # -- late-joiner triggering ------------------------------------------

    def _maybe_trigger_joins(self, sess: _Session) -> None:
        with sess.cond:
            if not sess.pending_joins:
                return
            push_done = all(sess.resolved(n) for n in sess.push_nodes)
            top = max(sess.progress.values(), default=0)
            ready = [lj for lj in sess.pending_joins
                     if push_done or top >= lj.after_bytes]
            if not ready:
                return
            sess.pending_joins = [lj for lj in sess.pending_joins
                                  if lj not in ready]
        for lj in ready:
            self._send_join(sess, lj)

    def _send_join(self, sess: _Session, lj: LateJoin) -> None:
        assert self._coordinator is not None
        # Nearest-cache-warm-first: peers ordered by how much of the
        # artifact they had at ack time (receivers keep caching as the
        # push runs, so even a cold-at-ack peer fills in behind us).
        def warmth(name: str) -> int:
            ack = sess.acks.get(name, {})
            return int(ack.get("cached", 0))

        candidates = [n for n in (*sess.receivers, *sess.joined)
                      if n not in sess.dead and n != lj.node]
        peers = []
        for name in sorted(candidates, key=warmth, reverse=True):
            agent = self._coordinator.agent(name)
            if agent is not None:
                peers.append([agent.address.host, agent.address.port])
        output = (sess.output_template.replace("{node}", lj.node)
                  if sess.output_template else None)
        with sess.cond:
            sess.expected.add(lj.node)
            sess.joined.append(lj.node)
            sess.note(f"late join {lj.node} after {lj.after_bytes} bytes "
                      f"({len(peers)} pull peers)")
            sess.cond.notify_all()
        self._coordinator.send(lj.node, {
            "op": "session_join",
            "session": sess.id,
            "artifact": sess.artifact.to_wire(),
            "peers": peers,
            "output": output,
            "progress_every": self.progress_every,
            "run_timeout": max(1.0, sess.deadline - time.monotonic()),
        })

    # -- artifact identity -----------------------------------------------

    def _artifact_for(self, path: str, chunk_size: int) -> ArtifactMeta:
        """Content identity of the file at ``path`` (sha256 + size),
        memoized on (path, size, mtime) so repeat submits of the same
        artifact skip the hash pass."""
        stat = os.stat(path)
        key = (os.path.abspath(path), stat.st_size, stat.st_mtime_ns)
        with self._lock:
            memo = self._artifact_memo.get(key)
        if memo is None:
            memo = _sha256_file(path)
            with self._lock:
                self._artifact_memo[key] = memo
        digest, size = memo
        return ArtifactMeta(digest, size=size, chunk_size=chunk_size)

    # -- session orchestration -------------------------------------------

    def submit(
        self,
        source: Source,
        receivers: Optional[Sequence[str]] = None,
        *,
        head: Optional[str] = None,
        output_template: Optional[str] = None,
        chaos: Sequence[ChaosPlan] = (),
        late_join: Sequence[LateJoin] = (),
        session: Optional[str] = None,
        trace=None,
        timeout: float = 120.0,
    ) -> BroadcastResult:
        """Run one named session on the warm fleet; blocks until done.

        Thread-safe: concurrent ``submit`` calls multiplex over the same
        fleet (that is the point).  Returns the same
        :class:`~repro.runtime.BroadcastResult` shape as every other
        backend, with ``backend="daemon"`` and ``launch=None`` — the
        fleet launch happened once, at :meth:`start`, not here.
        """
        if not self._started or self._closed:
            raise KascadeError("DaemonServer is not running (call start())")
        assert self._coordinator is not None
        registered = set(self._coordinator.registered_names())
        head = head or self.fleet[0]
        if receivers is None:
            receivers = tuple(n for n in self.fleet
                              if n != head and n in registered)
        receivers = tuple(receivers)
        joiners = tuple(lj.node for lj in late_join)
        for name in (head, *receivers, *joiners):
            if name not in self.fleet:
                raise KascadeError(
                    f"{name!r} is not a fleet member "
                    f"(fleet: {sorted(self.fleet)})")
            if name not in registered:
                raise KascadeError(f"fleet member {name!r} is not registered "
                                   f"(died or never launched)")
        if head in receivers:
            raise KascadeError(f"head {head!r} cannot also be a receiver")
        overlap = set(joiners) & ({head} | set(receivers))
        if overlap:
            raise KascadeError(
                f"late joiners must not be in the session already: "
                f"{sorted(overlap)}")
        engine = ChaosEngine(chaos)
        engine.validate((*receivers, *joiners), known=self.fleet,
                        what="session")

        from ..core.tracing import NullRecorder
        from ..session import _resolve_trace
        if isinstance(trace, NullRecorder):
            tracer, trace_path = trace, None  # explicitly disabled
        else:
            tracer, trace_path = _resolve_trace(trace)

        with self._lock:
            self._session_seq += 1
            sid = str(session) if session else f"s{self._session_seq}"
            if sid in self._sessions:
                raise KascadeError(f"session {sid!r} already running")

        path, cleanup_source = _materialize_source(source)
        started = time.monotonic()
        wall0 = time.time()
        try:
            artifact = self._artifact_for(path, self.config.chunk_size)
            sess = _Session(
                id=sid, artifact=artifact, head=head, receivers=receivers,
                chaos=engine, output_template=output_template, wall0=wall0,
                deadline=started + timeout,
                pending_joins=list(late_join),
            )
            self._register(sess)
            try:
                result = self._run_session(sess, path, tracer,
                                           started, timeout)
            finally:
                with self._lock:
                    self._sessions.pop(sid, None)
                    self._sessions_completed += 1
        finally:
            cleanup_source()
        if trace_path is not None and isinstance(tracer, TraceCollector):
            tracer.to_jsonl(trace_path)
        return result

    def _register(self, sess: _Session) -> None:
        with self._lock:
            self._sessions[sess.id] = sess
            active = len(self._sessions)
            for other in self._sessions.values():
                other.active_hwm = max(other.active_hwm, active)
        get_stats().note_sessions_active(active)

    def _run_session(
        self,
        sess: _Session,
        source_path: str,
        tracer,
        started: float,
        timeout: float,
    ) -> BroadcastResult:
        assert self._coordinator is not None
        coordinator = self._coordinator
        deadline = started + timeout
        artifact = sess.artifact
        sess.note(f"open artifact={artifact.digest[:12]} "
                  f"size={artifact.size} nodes={len(sess.receivers) + 1}")

        open_targets = [sess.head, *sess.receivers]
        for name in open_targets:
            coordinator.send(name, {
                "op": "session_open",
                "session": sess.id,
                "stripes": self.config.stripes,
                "artifact": artifact.to_wire(),
            })
        ack_deadline = min(deadline, time.monotonic() + 15.0)
        with sess.cond:
            sess.cond.wait_for(
                lambda: all(n in sess.acks or n in sess.dead
                            for n in open_targets),
                timeout=max(0.0, ack_deadline - time.monotonic()))
            missing = [n for n in open_targets
                       if n not in sess.acks and n not in sess.dead]
            for name in missing:
                sess.dead[name] = "no session_ack"
            warm = tuple(r for r in sess.receivers
                         if r in sess.acks and sess.acks[r].get("has_all"))
            cold = tuple(r for r in sess.receivers
                         if r not in warm and r not in sess.dead)

        plan: Optional[ChainPlan] = None
        head_runs = bool(cold) and sess.head in sess.acks
        if head_runs:
            plan = ChainPlan.build(sess.head, cold,
                                   stripes=self.config.stripes,
                                   order="given")
            self._commit({"kind": "plan", "plan": plan.to_dict()})
            self._send_session_starts(sess, plan, source_path, deadline)
            with sess.cond:
                sess.push_nodes = set(plan.base.chain)
                sess.expected |= sess.push_nodes
            sess.note(f"push chain over {len(cold)} cold receiver(s)")
        else:
            # Nothing to push: the head never runs, so its listeners —
            # bound at open — are released right away.
            coordinator.send(sess.head, {"op": "session_cancel",
                                         "session": sess.id})
        for name in warm:
            output = (sess.output_template.replace("{node}", name)
                      if sess.output_template else None)
            coordinator.send(name, {
                "op": "session_serve_cached",
                "session": sess.id,
                "artifact": artifact.to_wire(),
                "output": output,
            })
            with sess.cond:
                sess.expected.add(name)
        if warm:
            sess.note(f"{len(warm)} receiver(s) fully cached: "
                      f"serving locally, zero upstream")
        self._maybe_trigger_joins(sess)

        # Wait for every expected status; ``expected`` grows as joins
        # trigger, and a drained join queue is part of "done".
        while True:
            with sess.cond:
                unresolved = [n for n in sess.expected
                              if not sess.resolved(n)]
                pending = list(sess.pending_joins)
                if not unresolved and not pending:
                    break
                if time.monotonic() >= deadline:
                    for name in unresolved:
                        sess.dead[name] = (f"no status within the "
                                           f"{timeout}s session deadline")
                    sess.pending_joins = []
                    break
                sess.cond.wait(timeout=0.2)
            if pending and not unresolved:
                # Push finished with joins still queued (e.g. trigger
                # threshold above the artifact size): fire them now.
                self._maybe_trigger_joins(sess)
        # Final watermarks: a short session can finish between pump
        # ticks, so replicate the settled per-node byte counts here.
        with sess.cond:
            marks = dict(sess.progress)
            for name, status in sess.statuses.items():
                marks[name] = max(marks.get(name, 0),
                                  int(status.get("bytes", 0)))
        for name, received in sorted(marks.items()):
            self._commit({"kind": "watermark", "node": f"{sess.id}/{name}",
                          "bytes": received})
        return self._collect(sess, plan, head_runs, tracer, started)

    def _send_session_starts(self, sess: _Session, plan: ChainPlan,
                             source_path: str, deadline: float) -> None:
        assert self._coordinator is not None
        base_plan = plan.base
        nodes_wire = []
        ports_wire = {}
        for name in base_plan.chain:
            agent = self._coordinator.agent(name)
            ack = sess.acks.get(name) or {}
            ports = [int(p) for p in ack.get("ports") or []]
            assert agent is not None and ports
            nodes_wire.append([name, agent.address.host, ports[0]])
            ports_wire[name] = ports
        base = {
            "op": "session_start",
            "session": sess.id,
            "nodes": nodes_wire,
            "head": base_plan.head,
            "plan": plan.to_dict(),
            "ports": ports_wire,
            "config": config_to_wire(self.config),
            "artifact": sess.artifact.to_wire(),
            "run_timeout": max(1.0, deadline - time.monotonic()),
            "progress_every": self.progress_every,
        }
        for name in base_plan.chain:
            msg = dict(base)
            if name == base_plan.head:
                msg["source"] = source_path
            elif sess.output_template is not None:
                msg["output"] = sess.output_template.replace("{node}", name)
            self._coordinator.send(name, msg)

    def _collect(self, sess: _Session, plan: Optional[ChainPlan],
                 head_runs: bool, tracer, started: float) -> BroadcastResult:
        duration = time.monotonic() - started
        outcomes: Dict[str, NodeOutcome] = {}
        perfstats: Dict[str, int] = {}
        head_report: Optional[TransferReport] = None
        merged_events: list = []
        from_cache = 0

        with sess.cond:
            statuses = dict(sess.statuses)
            dead = dict(sess.dead)
            participants = [sess.head, *sess.receivers, *sess.joined]
            session_events = list(sess.events)

        for name in participants:
            status = statuses.get(name)
            if status is not None:
                outcomes[name] = NodeOutcome(
                    name=name,
                    ok=bool(status.get("ok")),
                    bytes_received=int(status.get("bytes", 0)),
                    crashed=bool(status.get("crashed")),
                    error=status.get("error"),
                    digest=status.get("digest"),
                )
                from_cache += int(status.get("from_cache", 0))
                for key, value in (status.get("perfstats") or {}).items():
                    perfstats[key] = perfstats.get(key, 0) + int(value)
                merged_events.extend(rebase_events(status, sess.wall0))
                if name == sess.head and status.get("report"):
                    head_report = TransferReport.decode(
                        bytes.fromhex(status["report"]))
                    outcomes[name].failures_detected = list(
                        head_report.failures)
            elif name in dead:
                outcomes[name] = NodeOutcome(
                    name=name, ok=False, crashed=True, error=dead[name],
                    bytes_received=sess.progress.get(name, 0),
                )
            elif name == sess.head and not head_runs:
                # All-warm session: the head never ran, by design.
                outcomes[name] = NodeOutcome(name=name, ok=True)
            else:
                outcomes[name] = NodeOutcome(
                    name=name, ok=False, crashed=True,
                    error="agent never resolved")

        for t_rel, detail in session_events:
            tracer.emit(tracing.SESSION, "server", t=t_rel,
                        detail=f"{sess.id}: {detail}")
        for event in sorted(merged_events, key=lambda e: e.t):
            tracer.emit(event.type, event.node, t=event.t,
                        offset=event.offset, peer=event.peer,
                        detail=event.detail, detector=event.detector)

        report = head_report if head_report is not None else TransferReport()
        # Per-session cache accounting: the agents' perfstats deltas
        # overlap under concurrent sessions in one process, so the
        # worker-counted ``from_cache`` in each status is authoritative.
        perfstats["bytes_from_cache"] = max(
            perfstats.get("bytes_from_cache", 0), from_cache)
        with self._lock:
            completed = self._sessions_completed + 1
        perfstats["sessions_active"] = sess.active_hwm
        if self.launch_report is not None:
            perfstats["launch_amortized_s"] = (
                self.launch_report.total_s / completed)

        excused = set(sess.chaos.targets())
        intended = [n for n in (*sess.receivers, *sess.joined)
                    if n not in excused]
        head_ok = outcomes[sess.head].ok
        ok = head_ok and all(outcomes[n].ok for n in intended)
        if head_runs:
            total_bytes = outcomes[sess.head].bytes_received
        else:
            total_bytes = sess.artifact.size
        return BroadcastResult(
            ok=ok,
            duration=duration,
            total_bytes=total_bytes,
            report=report,
            outcomes=outcomes,
            trace=(tracer if isinstance(tracer, TraceCollector) else None),
            perfstats=perfstats,
            backend="daemon",
            launch=None,
            plan=plan,
        )
