"""Process-per-node deployment: the paper's startup phase, for real.

Until now every "node" of the TCP runtime was a thread inside one
process, so crash injection could only *simulate* process death by
closing sockets.  This package runs each pipeline node as its own OS
process (§III-B):

* :mod:`repro.deploy.agent` — the ``kascade agent`` entrypoint: one
  process per node that binds its data port, registers with the
  coordinator over a control socket, runs the existing
  :mod:`repro.runtime` node logic, and exits with a structured status;
* :mod:`repro.deploy.launcher` — windowed parallel spawn (TakTuk's
  windowed mode) with per-node retry/backoff and startup-timeout
  detection; nodes that never register are re-planned around *before*
  data flows, mirroring §III-B's "launcher failures are handled before
  the transfer";
* :mod:`repro.deploy.coordinator` — collects registrations, distributes
  the ordered node list, supervises liveness (``waitpid`` + control
  heartbeats), gathers the ring-closure report, and tears everything
  down;
* :mod:`repro.deploy.chaos` — kills agents with real ``SIGKILL`` /
  ``SIGSTOP`` mid-transfer, so §III-D failover is exercised against
  genuine RSTs and silent hangs across process boundaries.

The blessed entry point is ``repro.run_broadcast(..., backend="procs")``.
"""

from .chaos import ChaosEngine, ChaosPlan
from .coordinator import ProcBroadcast
from .launcher import LaunchReport, NodeLaunch, WindowedLauncher
from .protocol import ControlChannel, DeployError

__all__ = [
    "ChaosEngine",
    "ChaosPlan",
    "ControlChannel",
    "DeployError",
    "LaunchReport",
    "NodeLaunch",
    "ProcBroadcast",
    "WindowedLauncher",
]
