"""The ``kascade agent`` process: one pipeline node, one OS process.

An agent is what the launcher starts on every node (locally today; the
command line is ssh-able by construction).  Its life cycle mirrors the
paper's startup phase (§III-B):

1. bind the data-plane listen socket on an ephemeral port;
2. dial the coordinator's control socket and register (``hello`` with
   name, pid, and the bound address);
3. wait for ``start`` — the final node list (re-planned around launch
   failures), the config, and this node's source/sink assignment;
4. run the unmodified :mod:`repro.runtime` node logic (head or
   receiver) over real TCP, heartbeating on the control socket and
   reporting throttled progress (which drives the chaos hook);
5. send a structured ``status`` — outcome, payload digest, the encoded
   ring report (head only), perfstats, and the agent's trace events —
   then exit with a structured code.

Exit codes: 0 ok, 1 transfer failed, 2 usage/registration error,
3 deliberate startup death (the ``--die-on-start`` test hook),
4 cancelled by the coordinator.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import threading
import time
from typing import Callable, List, Optional, Tuple

from ..core.config import KascadeConfig
from ..core.perfstats import get_stats
from ..core.plan import ChainPlan
from ..core.report import TransferReport
from ..core.sinks import FileSink, NullSink, Sink
from ..core.sources import FileSource, ResumeView
from ..core.stripes import StripeMergeSink, StripeSource
from ..core.tracing import TraceCollector
from ..runtime.node import HeadNode, ReceiverNode
from ..runtime.registry import Registry
from ..runtime.transport import Address, Listener
from .protocol import ControlChannel, DeployError, connect_control

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_DIED_ON_START = 3
EXIT_CANCELLED = 4


class DigestSink(Sink):
    """Hash every chunk on its way into the real sink.

    Gives the coordinator an end-to-end payload digest per node without
    shipping payload bytes over the control plane — survivors of a chaos
    run prove byte-exactness with one hex string.
    """

    def __init__(self, inner: Sink) -> None:
        self.inner = inner
        self._hash = hashlib.sha256()
        self.bytes_written = 0

    def write_chunk(self, data) -> None:
        self._hash.update(data)
        self.bytes_written += len(data)
        self.inner.write_chunk(data)

    def preallocate(self, size: int) -> None:
        self.inner.preallocate(size)

    def finish(self) -> None:
        self.inner.finish()

    def abort(self) -> None:
        self.inner.abort()

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


class _Heartbeat:
    """Background liveness tick on the control channel.

    A SIGSTOPped agent stops ticking — that silence is exactly what the
    coordinator's supervision (and the peers' data-plane pings) must
    resolve, so the thread deliberately has no failure handling beyond
    "stop quietly when the channel is gone".
    """

    def __init__(self, channel: ControlChannel, interval: float) -> None:
        self._channel = channel
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="agent-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._channel.send({"op": "heartbeat"}):
                return


def _progress_gate(send: Callable[[int], None], every: int):
    """A :data:`~repro.runtime.node.CrashGate` that never crashes.

    Reuses the receiver's per-chunk gate slot to stream throttled
    progress (via ``send(total_bytes)``) to the coordinator — the
    signal the chaos engine keys on.
    """
    last = [0]

    def gate(received: int) -> Optional[str]:
        if received - last[0] >= every:
            last[0] = received
            send(received)
        return None

    return gate


def _progress_gates(send: Callable[[int], None], every: int, stripes: int):
    """Per-stripe gates reporting the host's *aggregate* byte count.

    Chaos thresholds are host-level on a striped run, so the progress
    stream the chaos engine keys on must be too.
    """
    lock = threading.Lock()
    seen = [0] * stripes
    last = [0]

    def for_stripe(stripe: int):
        def gate(received: int) -> Optional[str]:
            with lock:
                seen[stripe] = received
                total = sum(seen)
                if total - last[0] < every:
                    return None
                last[0] = total
            send(total)
            return None

        return gate

    return for_stripe


def run_agent(
    coordinator: Tuple[str, int],
    name: str,
    *,
    bind: str = "127.0.0.1",
    advertise: Optional[str] = None,
    start_timeout: float = 60.0,
    die_on_start: bool = False,
    stripes: int = 1,
) -> int:
    """Run one agent to completion; returns the process exit code.

    ``stripes > 1`` binds one data-plane listener per stripe; the hello
    advertises every port and the start message carries the
    :class:`~repro.core.plan.ChainPlan` naming this node's feeder and
    successor per stripe.
    """
    if die_on_start:
        # Test hook: a node whose process dies before it can register,
        # exercising the launcher's retry + re-plan path for real.
        return EXIT_DIED_ON_START

    listeners = [Listener(host=bind, port=0) for _ in range(max(1, stripes))]
    try:
        channel = connect_control(coordinator[0], coordinator[1],
                                  timeout=start_timeout)
    except DeployError:
        for listener in listeners:
            listener.close()
        return EXIT_USAGE
    try:
        return _run_registered(channel, listeners, name,
                               advertise or listeners[0].address.host,
                               start_timeout)
    finally:
        channel.close()
        for listener in listeners:
            listener.close()


def _run_registered(
    channel: ControlChannel,
    listeners: List[Listener],
    name: str,
    advertise_host: str,
    start_timeout: float,
) -> int:
    channel.send({
        "op": "hello",
        "name": name,
        "pid": os.getpid(),
        "host": advertise_host,
        # "port" stays for pre-stripe readers; "ports" is the full set.
        "port": listeners[0].address.port,
        "ports": [ln.address.port for ln in listeners],
    })
    try:
        msg = channel.recv(timeout=start_timeout)
    except (TimeoutError, DeployError):
        return EXIT_USAGE
    if msg is None or msg.get("op") == "cancel":
        return EXIT_CANCELLED
    if msg.get("op") != "start":
        return EXIT_USAGE

    heartbeat = _Heartbeat(channel, float(msg.get("heartbeat_interval", 0.5)))
    heartbeat.start()
    progress_send = lambda total: channel.send(  # noqa: E731
        {"op": "progress", "bytes": total})
    try:
        if msg.get("failover"):
            # The coordinator runs a replicated control plane and may
            # re-root the chain mid-transfer: stay on the control
            # channel while the node runs.
            status = _run_failover_capable(channel, listeners, name, msg,
                                           progress_send=progress_send)
        else:
            status = execute_transfer(
                msg, listeners, name, progress_send=progress_send,
            )
    except TransferSetupError:
        return EXIT_USAGE
    finally:
        heartbeat.stop()
    channel.send({"op": "status", **status})
    return EXIT_OK if status["ok"] else EXIT_FAILED


class TransferSetupError(Exception):
    """The start message and this agent's bound resources disagree
    (e.g. stripe-count mismatch) — a usage error, not a transfer failure."""


def execute_transfer(
    msg: dict,
    listeners: List[Listener],
    name: str,
    *,
    progress_send: Callable[[int], None],
    cache=None,
) -> dict:
    """Run the transfer one ``start``-shaped message describes.

    The reusable heart of an agent: the one-shot ``kascade agent``
    process calls this exactly once; a persistent daemon fleet agent
    (:mod:`repro.daemon.agent`) calls it once *per session*, from an
    already-registered process, with per-session listeners.

    Returns the status payload (everything but the ``op`` field).  The
    trace collector — and therefore ``trace_epoch`` — is created *here*,
    at transfer start, so a long-lived agent running many sessions gets
    per-session time bases and the coordinator's merge rebases each
    session independently (not against the agent's process start).

    ``cache`` is an optional :class:`~repro.core.cache.ChunkCache`;
    when the message carries an ``artifact`` identity, a receiving
    agent taps the merged stream into it chunk-by-chunk, becoming
    cache-warm for repeat broadcasts and pull-phase peers while this
    push is still running.
    """
    config = KascadeConfig(**msg["config"])
    nodes = [(n, Address(h, p)) for n, h, p in msg["nodes"]]
    head = msg["head"]
    if msg.get("plan"):
        chain_plan = ChainPlan.from_dict(msg["plan"])
    else:
        chain_plan = ChainPlan.single(
            head, tuple(n for n, _ in nodes if n != head))
    k = chain_plan.stripe_count
    if k != len(listeners):
        raise TransferSetupError(
            f"{k}-stripe plan vs {len(listeners)} bound listeners")
    # Stripe j of every node listens on its j-th advertised port; the
    # legacy single-port start message is the k == 1 degenerate case.
    ports = {n: [a.port] for n, a in nodes}
    for node_name, node_ports in (msg.get("ports") or {}).items():
        ports[node_name] = [int(p) for p in node_ports]
    hosts = {n: a.host for n, a in nodes}
    registries = [
        Registry({n: Address(hosts[n], ports[n][j]) for n in hosts})
        for j in range(k)
    ]
    run_timeout = float(msg.get("run_timeout", 600.0))
    artifact = msg.get("artifact")

    tracer = TraceCollector()
    trace_epoch = time.time()
    stats_before = get_stats().snapshot()

    # data_plane travels inside the config: the coordinator's choice
    # reaches every agent without a new wire field.  Receivers always
    # wrap their sink in DigestSink (the coordinator's byte-exactness
    # proof), which is not a bare NullSink — so evloop agents take the
    # userspace relay path and digests stay comparable across planes.
    evloop_plane = config.data_plane == "evloop"
    if evloop_plane:
        from ..runtime.evloop import EvHeadNode, EvReceiverNode, run_nodes
        head_cls, recv_cls = EvHeadNode, EvReceiverNode
    else:
        head_cls, recv_cls = HeadNode, ReceiverNode

    digest_sink: Optional[DigestSink] = None
    source: Optional[FileSource] = None
    progress_every = int(msg.get("progress_every", 1 << 18))
    agent_nodes = []
    if name == head:
        source = FileSource(msg["source"])
        for j in range(k):
            src = (source if k == 1
                   else StripeSource(source, j, k, config.chunk_size))
            agent_nodes.append(head_cls(
                name, chain_plan.stripe(j), registries[j], listeners[j],
                config, src, tracer=tracer,
            ))
    else:
        inner: Sink = (FileSink(msg["output"]) if msg.get("output")
                       else NullSink())
        # The digest hashes the *merged* stream, so it is comparable
        # across any stripe count (and with the head's source digest).
        digest_sink = DigestSink(inner)
        top: Sink = digest_sink
        if cache is not None and artifact:
            from ..core.cache import ArtifactMeta, CacheTapSink
            top = CacheTapSink(digest_sink, cache,
                               ArtifactMeta.from_wire(artifact))
        if k == 1:
            stripe_sinks: List[Sink] = [top]
            gate_for = lambda j: _progress_gate(progress_send, progress_every)
        else:
            merger = StripeMergeSink(top, k, config.chunk_size)
            stripe_sinks = [merger.port(j) for j in range(k)]
            gates = _progress_gates(progress_send, progress_every, k)
            gate_for = gates
        for j in range(k):
            agent_nodes.append(recv_cls(
                name, chain_plan.stripe(j), registries[j], listeners[j],
                config, stripe_sinks[j], crash_gate=gate_for(j),
                tracer=tracer,
            ))

    if evloop_plane:
        # This thread *is* the event loop (heartbeat stays threaded).
        run_nodes(agent_nodes, duration=run_timeout)
        for node in agent_nodes:
            if not node.finished:
                node.outcome.error = node.outcome.error or (
                    f"agent run exceeded {run_timeout}s"
                )
    else:
        deadline = time.monotonic() + run_timeout
        for node in agent_nodes:
            node.start()
        for node in agent_nodes:
            node.join(max(0.0, deadline - time.monotonic()))
            if node.thread.is_alive():
                node.outcome.error = node.outcome.error or (
                    f"agent run exceeded {run_timeout}s"
                )
                node.shutdown()
                node.join(2.0)
    if source is not None:
        source.close()

    outcomes = [node.outcome for node in agent_nodes]
    ok = all(o.ok for o in outcomes)
    total = sum(o.bytes_received for o in outcomes)
    error = next((o.error for o in outcomes if o.error), None)
    crashed = any(o.crashed for o in outcomes)
    report_hex: Optional[str] = None
    failures: List[str] = []
    if name == head:
        if k == 1:
            final_report = agent_nodes[0].final_report
        else:
            # Pool the per-stripe ring reports (no single source digest
            # spans a striped stream, so the merged report carries none).
            final_report = TransferReport()
            for node in agent_nodes:
                if node.final_report is not None:
                    final_report.extend(node.final_report.failures)
        if final_report is not None:
            report_hex = final_report.encode().hex()
            failures = final_report.failed_nodes
    stats_after = get_stats().snapshot()
    return {
        "name": name,
        "ok": bool(ok),
        "bytes": int(total),
        "crashed": bool(crashed),
        "error": error,
        "digest": digest_sink.hexdigest() if digest_sink is not None else None,
        "report": report_hex,
        "failures": failures,
        "perfstats": {k_: stats_after[k_] - stats_before.get(k_, 0)
                      for k_ in stats_after},
        "trace": tracer.to_jsonl(),
        "trace_epoch": trace_epoch,
    }


class _FinishGuard(Sink):
    """Protects a sink retained across a failover hand-off.

    ``finish`` becomes idempotent (a node that completed before the
    failover already finished the chain; the resumed node finishes it
    again), and ``abort`` after a successful finish is a no-op — a
    completed output file must never be unlinked by a hiccup in the
    trivial resumed transfer that follows.
    """

    def __init__(self, inner: Sink) -> None:
        self.inner = inner
        self._settled = False

    def write_chunk(self, data) -> None:
        self.inner.write_chunk(data)

    def preallocate(self, size: int) -> None:
        self.inner.preallocate(size)

    def finish(self) -> None:
        if not self._settled:
            self._settled = True
            self.inner.finish()

    def abort(self) -> None:
        if not self._settled:
            self._settled = True
            self.inner.abort()


def _run_failover_capable(
    msg_channel: ControlChannel,
    listeners: List[Listener],
    name: str,
    msg: dict,
    *,
    progress_send: Callable[[int], None],
) -> dict:
    """Run the transfer while serving ``failover``/``resume`` ops.

    The head-failover variant of :func:`execute_transfer`: the node runs
    on its own threads while *this* thread stays on the control channel.
    When the coordinator announces head death (``failover``), the node
    is detached — loops interrupted, writeback drained, sink preserved,
    stream offset captured — a fresh listener is bound, and the offset +
    new port go back as ``failover_ready``.  The quorum's ``resume``
    then rebuilds the node under the re-rooted plan: the promoted
    survivor becomes a head streaming the source from the election
    watermark (serving PGET below it), everyone else becomes a receiver
    that keeps its sink and asks for bytes from where it stopped.

    Single-stripe, threaded data plane only — the coordinator enforces
    both before opting a run into failover.
    """
    config = KascadeConfig(**msg["config"])
    nodes = [(n, Address(h, p)) for n, h, p in msg["nodes"]]
    head = msg["head"]
    if msg.get("plan"):
        chain_plan = ChainPlan.from_dict(msg["plan"])
    else:
        chain_plan = ChainPlan.single(
            head, tuple(n for n, _ in nodes if n != head))
    if chain_plan.stripe_count != 1 or len(listeners) != 1:
        raise TransferSetupError("head failover requires a 1-stripe plan")
    if config.data_plane == "evloop":
        raise TransferSetupError(
            "head failover is not survivable on data_plane='evloop'")
    ports = {n: [a.port] for n, a in nodes}
    for node_name, node_ports in (msg.get("ports") or {}).items():
        ports[node_name] = [int(p) for p in node_ports]
    hosts = {n: a.host for n, a in nodes}
    registry = Registry({n: Address(hosts[n], ports[n][0]) for n in hosts})
    run_timeout = float(msg.get("run_timeout", 600.0))
    progress_every = int(msg.get("progress_every", 1 << 18))

    tracer = TraceCollector()
    trace_epoch = time.time()
    stats_before = get_stats().snapshot()

    digest_sink: Optional[DigestSink] = None
    guard: Optional[_FinishGuard] = None
    source: Optional[FileSource] = None
    if name == head:
        source = FileSource(msg["source"])
        node = HeadNode(name, chain_plan.stripe(0), registry, listeners[0],
                        config, source, tracer=tracer)
    else:
        inner: Sink = (FileSink(msg["output"]) if msg.get("output")
                       else NullSink())
        digest_sink = DigestSink(inner)
        guard = _FinishGuard(digest_sink)
        node = ReceiverNode(
            name, chain_plan.stripe(0), registry, listeners[0], config, guard,
            crash_gate=_progress_gate(progress_send, progress_every),
            tracer=tracer,
        )
    node.start()

    deadline = time.monotonic() + run_timeout
    awaiting_resume = False
    promoted = False
    promoted_source: Optional[FileSource] = None
    prefix_bytes = 0  # bytes already in this node's sink at detach time

    while True:
        if not node.thread.is_alive() and not awaiting_resume:
            break
        if time.monotonic() > deadline:
            node.outcome.error = node.outcome.error or (
                f"agent run exceeded {run_timeout}s")
            node.shutdown()
            node.join(2.0)
            break
        try:
            ctl = msg_channel.recv(timeout=0.25)
        except TimeoutError:
            continue
        except DeployError:
            continue  # one poisoned control line must not kill the agent
        if ctl is None:
            # Coordinator gone.  Mid-failover there is nothing left to
            # resume against; otherwise let the transfer run out.
            if awaiting_resume:
                break
            node.join(max(0.0, deadline - time.monotonic()))
            break
        op = ctl.get("op")
        if op == "failover" and name != head and not promoted:
            node.begin_failover()
            node.join(5.0)
            prefix_bytes = node.state.offset
            node.detach_sink()
            bind_host = listeners[0].address.host
            listeners[0].close()
            listeners[0] = Listener(host=bind_host, port=0)
            awaiting_resume = True
            msg_channel.send({
                "op": "failover_ready",
                "offset": prefix_bytes,
                "ports": [listeners[0].address.port],
            })
        elif op == "resume" and awaiting_resume:
            rconfig = KascadeConfig(**ctl["config"])
            rplan = ChainPlan.from_dict(ctl["plan"])
            rhosts = {n: h for n, h, _ in ctl["nodes"]}
            rports = {n: [int(p) for p in ps]
                      for n, ps in ctl["ports"].items()}
            rregistry = Registry({n: Address(rhosts[n], rports[n][0])
                                  for n in rhosts})
            if name == ctl["head"]:
                promoted = True
                resume_at = int(ctl["resume_offset"])
                promoted_source = FileSource(ctl["source"])
                node = HeadNode(
                    name, rplan.stripe(0), rregistry, listeners[0], rconfig,
                    ResumeView(promoted_source, resume_at), tracer=tracer,
                    resume_offset=resume_at,
                )
            else:
                node = ReceiverNode(
                    name, rplan.stripe(0), rregistry, listeners[0], rconfig,
                    guard,
                    crash_gate=_progress_gate(progress_send, progress_every),
                    tracer=tracer, resume_offset=prefix_bytes,
                )
            awaiting_resume = False
            node.start()
        elif op in ("cancel", "quit"):
            node.shutdown()
            node.join(2.0)
            break

    outcome = node.outcome
    ok = outcome.ok and not awaiting_resume
    total = outcome.bytes_received
    if promoted and promoted_source is not None:
        # The promoted head streamed [watermark, size) to the chain but
        # its *own* copy ends at its receiver-phase prefix.  Complete it
        # straight from the source so this node, too, holds (and can
        # prove, via the digest) the full payload.
        if ok:
            size = promoted_source.size
            pos = prefix_bytes
            while pos < size:
                piece = promoted_source.read_range(
                    pos, min(config.chunk_size, size - pos))
                guard.write_chunk(piece)
                pos += len(piece)
            guard.finish()
            total = size
        else:
            guard.abort()
        promoted_source.close()
    if source is not None:
        source.close()

    report_hex: Optional[str] = None
    failures: List[str] = []
    final_report = getattr(node, "final_report", None)
    if final_report is not None:
        report_hex = final_report.encode().hex()
        failures = final_report.failed_nodes
    stats_after = get_stats().snapshot()
    return {
        "name": name,
        "ok": bool(ok),
        "bytes": int(total),
        "crashed": bool(outcome.crashed),
        "error": None if ok else (outcome.error or "failover interrupted"),
        "digest": digest_sink.hexdigest() if digest_sink is not None else None,
        "report": report_hex,
        "failures": failures,
        "promoted": promoted,
        "perfstats": {k_: stats_after[k_] - stats_before.get(k_, 0)
                      for k_ in stats_after},
        "trace": tracer.to_jsonl(),
        "trace_epoch": trace_epoch,
    }


def config_to_wire(config: KascadeConfig) -> dict:
    """JSON-safe dict for the ``start`` message (coordinator side)."""
    return dataclasses.asdict(config)
