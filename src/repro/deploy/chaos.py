"""Real-signal fault injection for the process-per-node backend.

The thread-based runtime can only *simulate* process death (closing
sockets from within).  Here the coordinator sends genuine signals to a
separate OS process, so peers observe exactly what §III-D describes:

* ``SIGKILL`` — abrupt death: the kernel closes every socket, peers see
  RST on the next read/write (the error-detector path);
* ``SIGSTOP`` — silent hang: the process is frozen with all its sockets
  open, so peers must disambiguate congestion from death with the
  timeout + liveness-ping mechanism of §III-D1.

Triggering is progress-driven: agents report bytes received over the
control socket (throttled, see ``progress_every``), and the engine fires
once a node's reported progress crosses its plan's threshold — the same
semantics as the thread runtime's :class:`~repro.runtime.CrashPlan`
(``after_bytes`` is a floor, not an exact offset).
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..core.errors import KascadeError

#: Chaos signal name → the real signal the coordinator sends.
SIGNALS = {
    "kill": signal.SIGKILL,
    "stop": signal.SIGSTOP,
}

#: CrashPlan mode → chaos signal with the same observable effect.
MODE_TO_SIGNAL = {"close": "kill", "silent": "stop"}


@dataclass(frozen=True)
class ChaosPlan:
    """Send ``sig`` to ``node`` once it has received ``after_bytes``."""

    node: str
    after_bytes: int = 0
    sig: str = "kill"  # "kill" | "stop"

    def __post_init__(self) -> None:
        if self.sig not in SIGNALS:
            raise KascadeError(
                f"unknown chaos signal {self.sig!r}; "
                f"choose from {sorted(SIGNALS)}"
            )
        if self.after_bytes < 0:
            raise KascadeError("after_bytes must be >= 0")


class ChaosEngine:
    """Fires each plan at most once, keyed on reported progress.

    ``kill_fn`` defaults to :func:`os.kill`; tests inject a recorder.
    Thread-safe: progress callbacks arrive from per-agent reader threads.
    """

    def __init__(
        self,
        plans: Sequence[ChaosPlan],
        *,
        kill_fn: Callable[[int, int], None] = os.kill,
    ) -> None:
        dupes = {p.node for p in plans if sum(q.node == p.node for q in plans) > 1}
        if dupes:
            raise KascadeError(f"multiple chaos plans for: {sorted(dupes)}")
        self._pending: Dict[str, ChaosPlan] = {p.node: p for p in plans}
        self._fired: Dict[str, ChaosPlan] = {}
        self._kill = kill_fn
        self._lock = threading.Lock()
        #: Externally supervised targets (the head, control-plane
        #: replicas): they never self-report progress, so their plans
        #: fire once *any* node's reported progress crosses the
        #: threshold, against a pid the coordinator registered.
        self._external: Dict[str, int] = {}

    def targets(self):
        """Names of nodes any plan targets (pending or fired)."""
        with self._lock:
            return set(self._pending) | set(self._fired)

    def register_external(self, name: str, pid: int) -> None:
        """Register a target that never reports its own progress.

        The head streams (it receives nothing) and control-plane
        replicas are not broadcast participants at all, so neither ever
        appears in the progress feed the engine keys on.  A registered
        external target is killed when any node's progress crosses its
        plan's ``after_bytes`` — "once the broadcast is this far along,
        take it down" — which is the semantics a head/replica kill test
        actually wants.
        """
        with self._lock:
            self._external[name] = pid

    def validate(self, participants, *, known=None, what="plan",
                 allow=()) -> None:
        """Every chaos target must be a receiver in ``participants``.

        ``allow`` lists extra names a backend explicitly opted into
        killing — the head and ``replica:<i>`` pseudo-nodes on backends
        that can survive them.  It widens nothing by default: killing
        the head without head-failover support just wedges the run.

        ``known`` widens the diagnostic, not the rule: when the caller
        runs many sessions over one fleet (the daemon), a target that
        *is* a fleet member but sits outside this session's plan gets
        its own message — "you named a real node, just not one in this
        session" — instead of the generic unknown-node error.
        """
        stray = self.targets() - set(participants) - set(allow)
        if not stray:
            return
        if known is not None:
            fleet_only = stray & set(known)
            if fleet_only:
                raise KascadeError(
                    f"chaos targets fleet members outside this {what}: "
                    f"{sorted(fleet_only)} (session nodes: "
                    f"{sorted(participants)})"
                )
        raise KascadeError(f"chaos plans for unknown nodes: {sorted(stray)}")

    @property
    def fired(self) -> Dict[str, ChaosPlan]:
        """Plans that have been executed, by node name."""
        with self._lock:
            return dict(self._fired)

    def on_progress(self, node: str, bytes_received: int,
                    pid: Optional[int]) -> Optional[str]:
        """Maybe fire the plan for ``node``; returns the signal name fired.

        A dead or unknown pid makes the plan a no-op (the node died on
        its own first); the plan still counts as fired so the run's
        ``ok`` accounting stays consistent.
        """
        external_due = []
        with self._lock:
            # Externally supervised targets ride on everyone's progress.
            for ext_name, ext_pid in self._external.items():
                ext_plan = self._pending.get(ext_name)
                if ext_plan is not None and bytes_received >= ext_plan.after_bytes:
                    del self._pending[ext_name]
                    self._fired[ext_name] = ext_plan
                    external_due.append((ext_plan, ext_pid))
            plan = self._pending.get(node)
            if plan is not None and bytes_received >= plan.after_bytes:
                del self._pending[node]
                self._fired[node] = plan
            else:
                plan = None
        for ext_plan, ext_pid in external_due:
            try:
                self._kill(ext_pid, SIGNALS[ext_plan.sig])
            except (OSError, ProcessLookupError):
                pass
        if plan is None:
            return None
        if pid is not None:
            try:
                self._kill(pid, SIGNALS[plan.sig])
            except (OSError, ProcessLookupError):
                pass
        return plan.sig
