"""Real-signal fault injection for the process-per-node backend.

The thread-based runtime can only *simulate* process death (closing
sockets from within).  Here the coordinator sends genuine signals to a
separate OS process, so peers observe exactly what §III-D describes:

* ``SIGKILL`` — abrupt death: the kernel closes every socket, peers see
  RST on the next read/write (the error-detector path);
* ``SIGSTOP`` — silent hang: the process is frozen with all its sockets
  open, so peers must disambiguate congestion from death with the
  timeout + liveness-ping mechanism of §III-D1.

Triggering is progress-driven: agents report bytes received over the
control socket (throttled, see ``progress_every``), and the engine fires
once a node's reported progress crosses its plan's threshold — the same
semantics as the thread runtime's :class:`~repro.runtime.CrashPlan`
(``after_bytes`` is a floor, not an exact offset).
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..core.errors import KascadeError

#: Chaos signal name → the real signal the coordinator sends.
SIGNALS = {
    "kill": signal.SIGKILL,
    "stop": signal.SIGSTOP,
}

#: CrashPlan mode → chaos signal with the same observable effect.
MODE_TO_SIGNAL = {"close": "kill", "silent": "stop"}


@dataclass(frozen=True)
class ChaosPlan:
    """Send ``sig`` to ``node`` once it has received ``after_bytes``."""

    node: str
    after_bytes: int = 0
    sig: str = "kill"  # "kill" | "stop"

    def __post_init__(self) -> None:
        if self.sig not in SIGNALS:
            raise KascadeError(
                f"unknown chaos signal {self.sig!r}; "
                f"choose from {sorted(SIGNALS)}"
            )
        if self.after_bytes < 0:
            raise KascadeError("after_bytes must be >= 0")


class ChaosEngine:
    """Fires each plan at most once, keyed on reported progress.

    ``kill_fn`` defaults to :func:`os.kill`; tests inject a recorder.
    Thread-safe: progress callbacks arrive from per-agent reader threads.
    """

    def __init__(
        self,
        plans: Sequence[ChaosPlan],
        *,
        kill_fn: Callable[[int, int], None] = os.kill,
    ) -> None:
        dupes = {p.node for p in plans if sum(q.node == p.node for q in plans) > 1}
        if dupes:
            raise KascadeError(f"multiple chaos plans for: {sorted(dupes)}")
        self._pending: Dict[str, ChaosPlan] = {p.node: p for p in plans}
        self._fired: Dict[str, ChaosPlan] = {}
        self._kill = kill_fn
        self._lock = threading.Lock()

    def targets(self):
        """Names of nodes any plan targets (pending or fired)."""
        with self._lock:
            return set(self._pending) | set(self._fired)

    def validate(self, participants, *, known=None, what="plan") -> None:
        """Every chaos target must be a receiver in ``participants``.

        ``known`` widens the diagnostic, not the rule: when the caller
        runs many sessions over one fleet (the daemon), a target that
        *is* a fleet member but sits outside this session's plan gets
        its own message — "you named a real node, just not one in this
        session" — instead of the generic unknown-node error.
        """
        stray = self.targets() - set(participants)
        if not stray:
            return
        if known is not None:
            fleet_only = stray & set(known)
            if fleet_only:
                raise KascadeError(
                    f"chaos targets fleet members outside this {what}: "
                    f"{sorted(fleet_only)} (session nodes: "
                    f"{sorted(participants)})"
                )
        raise KascadeError(f"chaos plans for unknown nodes: {sorted(stray)}")

    @property
    def fired(self) -> Dict[str, ChaosPlan]:
        """Plans that have been executed, by node name."""
        with self._lock:
            return dict(self._fired)

    def on_progress(self, node: str, bytes_received: int,
                    pid: Optional[int]) -> Optional[str]:
        """Maybe fire the plan for ``node``; returns the signal name fired.

        A dead or unknown pid makes the plan a no-op (the node died on
        its own first); the plan still counts as fired so the run's
        ``ok`` accounting stays consistent.
        """
        with self._lock:
            plan = self._pending.get(node)
            if plan is None or bytes_received < plan.after_bytes:
                return None
            del self._pending[node]
            self._fired[node] = plan
        if pid is not None:
            try:
                self._kill(pid, SIGNALS[plan.sig])
            except (OSError, ProcessLookupError):
                pass
        return plan.sig
