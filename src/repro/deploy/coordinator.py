"""Coordinator: drive a real process-per-node broadcast end to end.

The coordinator is the §III-B root: it launches agents (windowed, via
:class:`~repro.deploy.launcher.WindowedLauncher`), collects their
registrations on a control socket, distributes the final ordered node
list (re-planned around launch failures *before* any payload byte
flows), supervises liveness during the transfer (``waitpid`` for real
process death, control-socket heartbeats for silent hangs), gathers the
ring-closure report from the head's structured status, and tears every
process down at the end — including ``SIGKILL`` for agents frozen by
the chaos hook.

:class:`ProcBroadcast` mirrors :class:`repro.runtime.LocalBroadcast`
(same constructor shape, same :class:`BroadcastResult`), which is what
lets :func:`repro.run_broadcast` offer it as ``backend="procs"``.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import tracing
from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.pipeline import PipelinePlan
from ..core.plan import ChainPlan
from ..core.report import FailureRecord, TransferReport
from ..core.sources import FileSource, Source
from ..core.tracing import NULL_TRACER, TraceCollector
from ..runtime.cluster import BroadcastResult
from ..runtime.node import NodeOutcome
from ..runtime.transport import Address
from .agent import config_to_wire
from .chaos import ChaosEngine, ChaosPlan
from .launcher import LaunchReport, WindowedLauncher
from .protocol import ControlChannel, DeployError

def rebase_events(status: dict, wall0: float) -> list:
    """Agent trace events shifted onto the caller's time base.

    Agents stamp events relative to their own collector; the status
    carries that collector's wall-clock epoch, so on one host (or
    NTP-disciplined hosts) the rebased events interleave correctly.
    ``wall0`` is *the run's* epoch — for the one-shot procs backend
    that is the broadcast start, for the daemon it is the session
    start, so a fleet agent's tenth session rebases against session
    ten's zero, not the agent's process birth.
    """
    trace_text = status.get("trace")
    if not trace_text:
        return []
    shift = float(status.get("trace_epoch", wall0)) - wall0
    events = TraceCollector.from_jsonl(trace_text)
    return [
        tracing.TraceEvent(
            seq=e.seq, t=e.t + shift, type=e.type, node=e.node,
            offset=e.offset, peer=e.peer, detail=e.detail,
            detector=e.detector,
        )
        for e in events
    ]


#: How an agent's exit status renders in failure reasons and trace events.
def describe_exit(code: int) -> str:
    if code < 0:
        try:
            name = signal.Signals(-code).name
        except ValueError:
            name = str(-code)
        return f"proc-exit: signal {name}"
    return f"proc-exit: code {code}"


@dataclass
class _Agent:
    """Coordinator-side view of one registered agent."""

    name: str
    channel: ControlChannel
    address: Address
    pid: int
    registered_at: float
    last_heard: float
    #: Every data-plane port the agent bound (one per stripe);
    #: ``address.port`` is always ``ports[0]``.
    ports: Tuple[int, ...] = ()
    bytes_received: int = 0
    status: Optional[dict] = None
    dead_reason: Optional[str] = None
    #: The agent's ``failover_ready`` reply (offset + fresh ports), set
    #: while a head re-root is in flight.
    failover_ready: Optional[dict] = None

    @property
    def resolved(self) -> bool:
        return self.status is not None or self.dead_reason is not None


class Coordinator:
    """Control-plane endpoint: registration, supervision, status collection.

    One reader thread per agent connection keeps the implementation
    obvious (a deployment has tens of agents, not tens of thousands);
    all shared state is guarded by one condition variable that doubles
    as the wake-up for ``wait_registered`` / ``wait_statuses``.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        tracer=NULL_TRACER,
        on_progress: Optional[Callable[[str, int, int], None]] = None,
        hello_timeout: float = 10.0,
    ) -> None:
        self._tracer = tracer
        self._on_progress = on_progress
        self._hello_timeout = hello_timeout
        self._cond = threading.Condition()
        self._agents: Dict[str, _Agent] = {}
        self._closed = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(64)
        self.address = Address(*self._sock.getsockname()[:2])
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="coord-accept", daemon=True
        )
        self._accept_thread.start()

    # -- connection handling --------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return
            channel = ControlChannel(conn)
            threading.Thread(
                target=self._serve, args=(channel,),
                name="coord-agent", daemon=True,
            ).start()

    def _serve(self, channel: ControlChannel) -> None:
        try:
            hello = channel.recv(timeout=self._hello_timeout)
        except (TimeoutError, DeployError):
            channel.close()
            return
        if hello is None or hello.get("op") != "hello":
            channel.close()
            return
        name = str(hello["name"])
        ports = tuple(int(p) for p in
                      hello.get("ports") or [hello["port"]])
        agent = _Agent(
            name=name,
            channel=channel,
            address=Address(str(hello["host"]), ports[0]),
            pid=int(hello["pid"]),
            registered_at=time.monotonic(),
            last_heard=time.monotonic(),
            ports=ports,
        )
        with self._cond:
            # Latest registration wins: a retried spawn replaces the
            # attempt the launcher already killed.
            self._agents[name] = agent
            self._cond.notify_all()
        self._tracer.emit(tracing.CONNECT, "coordinator", peer=name,
                          detail=f"register pid={agent.pid}")
        self._read_loop(agent)

    def _read_loop(self, agent: _Agent) -> None:
        while not self._closed:
            try:
                msg = agent.channel.recv(timeout=0.5)
            except TimeoutError:
                continue
            except DeployError:
                break
            if msg is None:
                break  # EOF: death vs normal exit is the reaper's call
            with self._cond:
                agent.last_heard = time.monotonic()
            op = msg.get("op")
            if op == "progress":
                received = int(msg.get("bytes", 0))
                with self._cond:
                    agent.bytes_received = max(agent.bytes_received, received)
                if self._on_progress is not None:
                    self._on_progress(agent.name, received, agent.pid)
            elif op == "status":
                with self._cond:
                    agent.status = msg
                    self._cond.notify_all()
            elif op == "failover_ready":
                # The agent detached its node and rebound: adopt the new
                # data-plane address so the resume wiring is correct.
                ports = tuple(int(p) for p in msg.get("ports") or ())
                with self._cond:
                    agent.failover_ready = msg
                    if ports:
                        agent.ports = ports
                        agent.address = Address(agent.address.host, ports[0])
                    self._cond.notify_all()
            # heartbeats only refresh last_heard

    # -- queries used by the launcher / run loop ------------------------

    def wait_registered(self, name: str, timeout: float) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: name in self._agents, timeout)

    def agent(self, name: str) -> Optional[_Agent]:
        with self._cond:
            return self._agents.get(name)

    def registered_names(self) -> List[str]:
        with self._cond:
            return list(self._agents)

    def mark_dead(self, name: str, reason: str) -> bool:
        """Record a supervised death; False if already resolved."""
        with self._cond:
            agent = self._agents.get(name)
            if agent is None or agent.resolved:
                return False
            agent.dead_reason = reason
            self._cond.notify_all()
            return True

    def send(self, name: str, message: dict) -> bool:
        agent = self.agent(name)
        return agent is not None and agent.channel.send(message)

    def wait_statuses(self, names: Sequence[str], deadline: float) -> List[str]:
        """Block until every name is resolved (status or declared dead);
        returns the names still unresolved when ``deadline`` passes."""
        def _unresolved() -> List[str]:
            return [n for n in names
                    if n not in self._agents or not self._agents[n].resolved]

        with self._cond:
            self._cond.wait_for(
                lambda: not _unresolved(),
                timeout=max(0.0, deadline - time.monotonic()),
            )
            return _unresolved()

    def wait_failover_ready(self, names: Sequence[str],
                            timeout: float) -> List[str]:
        """Block until every name replied ``failover_ready`` (or resolved
        some other way); returns names still pending at timeout."""
        def _pending() -> List[str]:
            return [n for n in names
                    if (a := self._agents.get(n)) is not None
                    and a.failover_ready is None and not a.resolved]

        with self._cond:
            self._cond.wait_for(lambda: not _pending(), timeout)
            return _pending()

    def silent_agents(self, names: Sequence[str], max_age: float) -> List[str]:
        """Registered, unresolved agents whose control plane went quiet."""
        now = time.monotonic()
        with self._cond:
            return [
                n for n in names
                if (a := self._agents.get(n)) is not None
                and not a.resolved
                and now - a.last_heard > max_age
            ]

    def forgive_silence(self, names: Sequence[str]) -> None:
        """Reset the silence clocks after a supervision stall.

        If the coordinator process itself was starved off the CPU (a
        saturated single-core host running dozens of agents), every
        ``last_heard`` is stale because *we* were not listening, not
        because the agents stopped talking.  Evidence accumulated while
        the supervisor was asleep is void — restart the clocks and let
        a full, actually-observed window elapse before declaring death.
        """
        now = time.monotonic()
        with self._cond:
            for name in names:
                agent = self._agents.get(name)
                if agent is not None and not agent.resolved:
                    agent.last_heard = now

    def close(self) -> None:
        self._closed = True
        self._sock.close()
        with self._cond:
            agents = list(self._agents.values())
        for agent in agents:
            agent.channel.close()


class ProcBroadcast:
    """One Kascade broadcast with a real OS process per pipeline node.

    Mirrors :class:`~repro.runtime.LocalBroadcast`; prefer
    ``repro.run_broadcast(..., backend="procs")``.

    Parameters beyond the common set
    --------------------------------
    chaos:
        :class:`~repro.deploy.chaos.ChaosPlan` sequence — real
        ``SIGKILL``/``SIGSTOP`` injection, receivers only.
    window / spawn_retries / startup_timeout / backoff:
        Windowed-launcher knobs (§III-B), see
        :class:`~repro.deploy.launcher.WindowedLauncher`.
    heartbeat_interval / heartbeat_timeout:
        Agent liveness tick and how long the coordinator tolerates
        control-plane silence before declaring an agent dead.
    progress_every:
        Bytes between agent progress reports (chaos trigger resolution).
    output_template:
        Per-receiver output path; ``{node}`` expands to the node name.
        ``None`` = agents discard payload (digest still computed).
    python:
        Interpreter for agent processes (default ``sys.executable``).
    bind_host:
        Address agents bind their data port on (default localhost).
    agent_args:
        ``fn(name, attempt) -> [extra argv]`` hook appended to the agent
        command line — how tests make specific spawn attempts fail.
    stderr_dir:
        When set, each agent's stderr goes to ``<dir>/<name>.stderr.log``
        instead of ``/dev/null``.
    plan:
        Pre-built :class:`~repro.core.plan.ChainPlan` overriding
        ``order``/``config.stripes``-derived planning.  On a striped
        plan every agent binds one data-plane listener per stripe and
        runs one chain instance per stripe; the start message ships the
        (possibly re-planned) ChainPlan and the full port map.
    """

    def __init__(
        self,
        source: Source,
        receivers: Sequence[str],
        *,
        config: KascadeConfig = DEFAULT_CONFIG,
        head: str = "n1",
        order: str = "given",
        chaos: Sequence[ChaosPlan] = (),
        tracer=NULL_TRACER,
        window: int = 8,
        spawn_retries: int = 1,
        startup_timeout: float = 15.0,
        backoff: float = 0.2,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: Optional[float] = None,
        progress_every: int = 1 << 18,
        output_template: Optional[str] = None,
        python: Optional[str] = None,
        bind_host: str = "127.0.0.1",
        agent_args: Optional[Callable[[str, int], Sequence[str]]] = None,
        stderr_dir: Optional[str] = None,
        plan: Optional[ChainPlan] = None,
        coordinator_replicas: int = 0,
        allow_head_chaos: bool = False,
    ) -> None:
        self.source = source
        self.config = config
        self.tracer = tracer
        if plan is not None:
            if set(plan.receivers) != set(receivers):
                raise KascadeError(
                    "chain plan covers different receivers than requested: "
                    f"{sorted(plan.receivers)} vs {sorted(receivers)}"
                )
            if config.stripes not in (1, plan.stripe_count):
                raise KascadeError(
                    f"config.stripes={config.stripes} conflicts with a "
                    f"{plan.stripe_count}-stripe plan"
                )
            self.chain_plan = plan
        else:
            self.chain_plan = ChainPlan.build(
                head, receivers, stripes=config.stripes, order=order)
        self.stripes = self.chain_plan.stripe_count
        self.plan = self.chain_plan.base
        self.coordinator_replicas = coordinator_replicas
        self.allow_head_chaos = allow_head_chaos
        self.chaos = ChaosEngine(chaos)
        chaos_targets = self.chaos.targets()
        replica_names = {f"replica:{i}" for i in range(coordinator_replicas)}
        if self.plan.head in chaos_targets and not allow_head_chaos:
            raise KascadeError(
                f"chaos targets the head {self.plan.head!r}: killing the "
                "head interrupts the stream for every receiver; opt in "
                "with allow_head_chaos=True (requires coordinator "
                "replicas for quorum-backed head failover)"
            )
        if allow_head_chaos:
            if coordinator_replicas < 1:
                raise KascadeError(
                    "head failover needs a replicated control plane to "
                    "elect from: set coordinator_replicas >= 1 "
                    "(3 recommended for minority-failure tolerance)"
                )
            if config.data_plane == "evloop":
                raise KascadeError(
                    "head failover is not survivable on "
                    "data_plane='evloop': the event-loop agent cannot "
                    "detach its nodes mid-run; use data_plane='threaded'"
                )
            if self.stripes != 1:
                raise KascadeError(
                    "head failover currently requires a 1-stripe plan: "
                    "per-stripe watermark re-rooting of a striped merge "
                    "is not supported"
                )
        stray_replicas = {t for t in chaos_targets
                         if t.startswith("replica:")} - replica_names
        if stray_replicas:
            raise KascadeError(
                f"chaos targets control replicas that will not exist: "
                f"{sorted(stray_replicas)} (coordinator_replicas="
                f"{coordinator_replicas})"
            )
        allow = set(replica_names)
        if allow_head_chaos:
            allow.add(self.plan.head)
        self.chaos.validate(self.plan.receivers, allow=allow)
        self._failover_enabled = (allow_head_chaos
                                  and coordinator_replicas >= 1)
        if (output_template is not None and len(self.plan.receivers) > 1
                and "{node}" not in output_template):
            raise KascadeError(
                "output_template needs a {node} placeholder for >1 receiver"
            )
        self.window = window
        self.spawn_retries = spawn_retries
        self.startup_timeout = startup_timeout
        self.backoff = backoff
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else max(2.0, 5 * heartbeat_interval)
        )
        self.progress_every = progress_every
        self.output_template = output_template
        self.python = python or sys.executable
        self.bind_host = bind_host
        self.agent_args = agent_args
        self.stderr_dir = stderr_dir
        #: Filled by :meth:`run`.
        self.launch_report: Optional[LaunchReport] = None

    # -- source materialisation -----------------------------------------

    def _materialize_source(self) -> Tuple[str, Callable[[], None]]:
        """A filesystem path agents can open, plus its cleanup.

        A :class:`FileSource` is passed by path; anything else (bytes,
        pattern, stdin) is spooled to a temp file once — the head agent
        needs a seekable file anyway so PGET recovery works (§III-D2).
        """
        if isinstance(self.source, FileSource):
            return self.source.path, lambda: None
        fd, path = tempfile.mkstemp(prefix="kascade-src-")
        try:
            with os.fdopen(fd, "wb") as spool:
                while True:
                    chunk = self.source.read_chunk(1 << 20)
                    if not chunk:
                        break
                    spool.write(chunk)
        except BaseException:
            os.unlink(path)
            raise
        return path, lambda: os.unlink(path)

    # -- agent spawning --------------------------------------------------

    def _spawn_env(self) -> dict:
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return env

    def _spawn_replicas(self) -> Tuple[List[subprocess.Popen],
                                       List[Tuple[str, int]]]:
        """Start the control-plane replica processes; returns procs and
        their (host, port) addresses, harvested from the stdout
        announcement each replica prints once bound."""
        from ..control.replica import spawn_replicas

        procs, addrs = spawn_replicas(
            self.coordinator_replicas, python=self.python,
            bind_host=self.bind_host, env=self._spawn_env(),
        )
        for i, proc in enumerate(procs):
            self.chaos.register_external(f"replica:{i}", proc.pid)
        return procs, addrs

    def _make_spawn(self, control: Address):
        env = self._spawn_env()
        base = [
            self.python, "-m", "repro.cli.kascade", "agent",
            "--coordinator", f"{control.host}:{control.port}",
            "--bind", self.bind_host,
            "--start-timeout", str(max(60.0, self.startup_timeout * 4)),
        ]
        if self.stripes > 1:
            base += ["--stripes", str(self.stripes)]

        def spawn(name: str, attempt: int) -> subprocess.Popen:
            cmd = base + ["--name", name]
            if self.agent_args is not None:
                cmd += [str(a) for a in self.agent_args(name, attempt)]
            if self.stderr_dir is not None:
                stderr_path = os.path.join(self.stderr_dir,
                                           f"{name}.stderr.log")
                with open(stderr_path, "ab") as err:
                    return subprocess.Popen(cmd, stdin=subprocess.DEVNULL,
                                            stdout=subprocess.DEVNULL,
                                            stderr=err, env=env)
            return subprocess.Popen(cmd, stdin=subprocess.DEVNULL,
                                    stdout=subprocess.DEVNULL,
                                    stderr=subprocess.DEVNULL, env=env)

        return spawn

    # -- supervision -----------------------------------------------------

    def _reaper_loop(
        self,
        coordinator: Coordinator,
        procs: Dict[str, subprocess.Popen],
        supervised: Sequence[str],
        stop: threading.Event,
    ) -> None:
        """waitpid + heartbeat supervision (the §III-D coordinator view).

        Process death yields a FAILOVER with the ``proc-exit`` detector —
        categorically different from the peers' timeout+ping detection,
        and only available because nodes are real processes now.
        """
        reaped: set = set()
        exit_seen: Dict[str, float] = {}
        # An agent that exits normally sends its status *first*, but the
        # reader thread may not have parsed it yet when waitpid fires —
        # give plain exits a grace window before declaring death.  Signal
        # deaths (rc < 0) never produce a status, so they are immediate.
        status_grace = 1.0
        # Heartbeat silence is only evidence when this loop actually ran
        # to observe it.  On a saturated host the coordinator can lose
        # the CPU for longer than heartbeat_timeout; declaring the whole
        # fleet dead on wake-up would be a false positive, so a stalled
        # pass voids the silence clocks instead of reading them.
        stall_limit = self.heartbeat_timeout / 2
        # Launch storms starve everyone: interpreters starting up soak
        # the CPU, so ``last_heard`` stamps from before this loop began
        # reflect the launcher's contention, not agent health.  Void
        # them — death is only declared after a silence window this
        # loop was actually awake to observe.
        coordinator.forgive_silence(supervised)
        last_pass = time.monotonic()
        while not stop.wait(0.05):
            now = time.monotonic()
            stalled = now - last_pass > stall_limit
            last_pass = now
            for name in supervised:
                proc = procs.get(name)
                if proc is None or name in reaped:
                    continue
                rc = proc.poll()
                if rc is None:
                    continue
                agent = coordinator.agent(name)
                if agent is not None and agent.resolved:
                    reaped.add(name)
                    continue
                if rc >= 0:
                    first = exit_seen.setdefault(name, time.monotonic())
                    if time.monotonic() - first < status_grace:
                        continue
                reaped.add(name)
                reason = describe_exit(rc)
                if coordinator.mark_dead(name, reason):
                    agent = coordinator.agent(name)
                    offset = agent.bytes_received if agent else None
                    self.tracer.emit(
                        tracing.FAILOVER, "coordinator", peer=name,
                        offset=offset, detail=reason,
                        detector=tracing.DETECTOR_PROC_EXIT,
                    )
            if stalled:
                coordinator.forgive_silence(supervised)
                continue
            for name in coordinator.silent_agents(supervised,
                                                  self.heartbeat_timeout):
                if coordinator.mark_dead(
                    name, f"control-heartbeat silent > {self.heartbeat_timeout}s"
                ):
                    self.tracer.emit(
                        tracing.FAILOVER, "coordinator", peer=name,
                        detail="control-heartbeat lost",
                        detector=tracing.DETECTOR_PING,
                    )

    # -- the run ---------------------------------------------------------

    def run(self, timeout: float = 120.0) -> BroadcastResult:
        """Launch, transfer, supervise, collect, tear down."""
        started = time.monotonic()
        wall0 = time.time()
        source_path, cleanup_source = self._materialize_source()
        crashed_by_chaos: Dict[str, str] = {}

        def on_progress(name: str, received: int, pid: int) -> None:
            fired = self.chaos.on_progress(name, received, pid)
            if fired is not None:
                crashed_by_chaos[name] = fired

        replica_procs: List[subprocess.Popen] = []
        quorum = None
        if self.coordinator_replicas >= 1:
            from ..control.client import QuorumClient

            replica_procs, replica_addrs = self._spawn_replicas()
            quorum = QuorumClient(replica_addrs, proposer_id=os.getpid())

        coordinator = Coordinator(tracer=self.tracer,
                                  on_progress=on_progress)
        launcher = WindowedLauncher(
            self._make_spawn(coordinator.address),
            window=self.window,
            retries=self.spawn_retries,
            backoff=self.backoff,
            startup_timeout=self.startup_timeout,
        )
        procs: Dict[str, subprocess.Popen] = {}
        stop_reaper = threading.Event()
        stop_pump = threading.Event()
        reaper: Optional[threading.Thread] = None
        try:
            launch_report = launcher.launch(self.plan.chain,
                                            coordinator.wait_registered)
            self.launch_report = launch_report
            procs = {name: nl.proc for name, nl in launch_report.nodes.items()
                     if nl.ok}
            launch_failures = self._record_launch_failures(launch_report)

            head_nl = launch_report.nodes[self.plan.head]
            final_receivers = tuple(r for r in self.plan.receivers
                                    if launch_report.nodes[r].ok)
            if not head_nl.ok or not final_receivers:
                why = ("head agent failed to launch" if not head_nl.ok
                       else "no receiver agent launched")
                return self._failed_result(
                    started, launch_report, launch_failures, why)

            # §III-B: the chain is re-planned around launch failures
            # before a single payload byte flows — every stripe drops
            # the dead node while keeping its surviving order.
            dead = tuple(r for r in self.plan.receivers
                         if not launch_report.nodes[r].ok)
            final_chain = self.chain_plan.replan_without(dead)
            final_plan = final_chain.base
            reaper = threading.Thread(
                target=self._reaper_loop,
                args=(coordinator, procs, final_plan.chain, stop_reaper),
                name="coord-reaper", daemon=True,
            )
            reaper.start()
            if quorum is not None:
                # Replicate everything a restarted (or surviving)
                # coordinator needs: who is where, and the active plan.
                for node_name in final_plan.chain:
                    agent = coordinator.agent(node_name)
                    if agent is not None:
                        quorum.commit({
                            "kind": "register", "node": node_name,
                            "host": agent.address.host,
                            "port": agent.address.port, "pid": agent.pid,
                        })
                quorum.commit({"kind": "plan",
                               "plan": final_chain.to_dict()})
                pump = threading.Thread(
                    target=self._watermark_pump,
                    args=(coordinator, final_plan.receivers, quorum,
                          stop_pump),
                    name="coord-watermarks", daemon=True,
                )
                pump.start()
            if self._failover_enabled:
                head_agent = coordinator.agent(final_plan.head)
                if head_agent is not None:
                    self.chaos.register_external(final_plan.head,
                                                 head_agent.pid)
            self._send_starts(coordinator, final_chain, source_path, timeout)

            deadline = started + timeout
            current_chain = final_chain
            failover_done = False
            while True:
                unresolved = coordinator.wait_statuses(
                    final_plan.chain, min(deadline, time.monotonic() + 0.25))
                if not unresolved:
                    break
                if time.monotonic() >= deadline:
                    for name in unresolved:
                        coordinator.mark_dead(
                            name,
                            f"no status within the {timeout}s run deadline")
                    break
                if (self._failover_enabled and not failover_done
                        and quorum is not None):
                    head_agent = coordinator.agent(final_plan.head)
                    if (head_agent is not None and head_agent.dead_reason
                            and head_agent.status is None):
                        failover_done = True
                        new_chain = self._orchestrate_failover(
                            coordinator, current_chain, source_path, quorum)
                        if new_chain is not None:
                            current_chain = new_chain
            return self._collect(coordinator, final_chain, launch_report,
                                 launch_failures, crashed_by_chaos,
                                 started, wall0,
                                 effective_chain=current_chain)
        finally:
            stop_reaper.set()
            stop_pump.set()
            if reaper is not None:
                reaper.join(timeout=2.0)
            self._teardown(procs, coordinator)
            coordinator.close()
            if quorum is not None:
                quorum.close()
            for proc in replica_procs:
                try:
                    proc.kill()
                except OSError:
                    pass
            for proc in replica_procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            cleanup_source()

    # -- the replicated control plane ------------------------------------

    def _watermark_pump(
        self,
        coordinator: Coordinator,
        receivers: Sequence[str],
        quorum,
        stop: threading.Event,
    ) -> None:
        """Replicate per-node progress watermarks into the quorum.

        Runs beside the hot progress path, not on it: agents report
        every ``progress_every`` bytes, but a quorum commit costs three
        round trips, so the pump snapshots the latest counters on a
        fixed tick and commits only what grew.  The watermarks are what
        the election reads — they only need to be *recent*, not exact;
        the failover handshake re-commits each survivor's precise
        detach offset before anyone is elected.
        """
        from ..control.client import QuorumError

        last: Dict[str, int] = {}
        while not stop.wait(0.25):
            for name in receivers:
                agent = coordinator.agent(name)
                if agent is None:
                    continue
                received = agent.bytes_received
                if received > last.get(name, -1):
                    last[name] = received
                    try:
                        quorum.commit({"kind": "watermark", "node": name,
                                       "bytes": received})
                    except QuorumError:
                        return  # majority gone: nothing left to replicate to

    def _orchestrate_failover(
        self,
        coordinator: Coordinator,
        chain: ChainPlan,
        source_path: str,
        quorum,
    ) -> Optional[ChainPlan]:
        """Re-root the chain around its dead head; returns the new plan.

        Two-phase: every surviving receiver is detached first (it
        interrupts its transfer loops, drains writeback, keeps its sink,
        rebinds a fresh data port, and replies ``failover_ready`` with
        its exact stream offset), *then* the quorum decides — authoritative
        watermarks are committed, the most-complete survivor is elected
        and recorded as a replicated decree, and everyone resumes under
        the re-rooted plan.  The promoted node serves PGET below the
        election watermark from the source file, so survivors behind it
        recover their gap exactly like a §III-D2 hole.

        Returns ``None`` when nothing survives to resume (no live
        receivers, or the control quorum itself is gone) — the run then
        fails through the normal unresolved-agent path.
        """
        from ..control.client import QuorumError

        plan = chain.base
        old_head = plan.head
        dead: List[str] = []
        finished: List[str] = []
        survivors: List[str] = []
        for name in plan.receivers:
            agent = coordinator.agent(name)
            if agent is None or agent.dead_reason:
                dead.append(name)
            elif agent.status is not None:
                finished.append(name)
            else:
                survivors.append(name)
        if not survivors:
            return None

        for name in survivors:
            coordinator.send(name, {"op": "failover", "dead": [old_head]})
        coordinator.wait_failover_ready(survivors, 10.0)

        ready: Dict[str, dict] = {}
        for name in survivors:
            agent = coordinator.agent(name)
            if agent is None or agent.dead_reason:
                dead.append(name)
            elif agent.failover_ready is not None:
                ready[name] = agent.failover_ready
            elif agent.status is not None:
                finished.append(name)
            else:
                dead.append(name)  # never detached: cannot be re-wired
        if not ready:
            return None

        try:
            # Authoritative watermarks: the detach offsets are exact,
            # unlike the throttled progress feed the pump replicates.
            for name, reply in ready.items():
                quorum.commit({"kind": "watermark", "node": name,
                               "bytes": int(reply.get("offset", 0))})
            for name in finished:
                agent = coordinator.agent(name)
                done = (int(agent.status.get("bytes", 0))
                        if agent is not None and agent.status else 0)
                quorum.commit({"kind": "watermark", "node": name,
                               "bytes": done})
            state = quorum.read_state()
            excluded = [old_head] + dead + finished
            new_head = state.most_complete(exclude=excluded)
            if new_head is None or new_head not in ready:
                # Replicated view is behind our local one (a replica
                # minority answered the read); fall back to what we
                # just measured directly.
                new_head = max(
                    ready,
                    key=lambda n: (int(ready[n].get("offset", 0)), n))
            resume_offset = int(ready[new_head].get("offset", 0))
            quorum.commit({"kind": "election", "head": new_head,
                           "dead": [old_head]})
        except QuorumError:
            return None

        self.tracer.emit(
            tracing.ELECTION, "coordinator", peer=new_head,
            offset=resume_offset,
            detail=(f"quorum elected {new_head} to replace {old_head} "
                    f"at watermark {resume_offset}"),
        )
        drop = [n for n in set(dead) | set(finished) if n != new_head]
        try:
            new_chain = chain.reroot(new_head, dead=drop)
        except KascadeError:
            return None
        try:
            quorum.commit({"kind": "plan", "plan": new_chain.to_dict()})
        except QuorumError:
            return None

        new_plan = new_chain.base
        nodes_wire = []
        ports_wire = {}
        for name in new_plan.chain:
            agent = coordinator.agent(name)
            if agent is None:
                return None
            nodes_wire.append([name, agent.address.host, agent.address.port])
            ports_wire[name] = list(agent.ports)
        config = config_to_wire(self.config)
        # Resumed nodes only hash the bytes they stream after the
        # re-root, so an in-protocol end-to-end digest check would be a
        # false alarm; byte-exactness is still proven by the per-node
        # digests in the collected statuses (the sinks — and their
        # hashes — survived the hand-off intact).
        config["verify_digest"] = False
        base = {
            "op": "resume",
            "nodes": nodes_wire,
            "head": new_plan.head,
            "plan": new_chain.to_dict(),
            "ports": ports_wire,
            "config": config,
            "resume_offset": resume_offset,
        }
        for name in new_plan.chain:
            msg = dict(base)
            if name == new_plan.head:
                msg["source"] = source_path
            coordinator.send(name, msg)
        return new_chain

    # -- pieces of run() -------------------------------------------------

    def _record_launch_failures(
        self, launch_report: LaunchReport
    ) -> List[FailureRecord]:
        records = []
        for name in launch_report.failed:
            nl = launch_report.nodes[name]
            reason = f"launch-failed: {nl.error} after {nl.attempts} attempt(s)"
            records.append(FailureRecord(
                node=name, detected_by="launcher", at_offset=0, reason=reason,
            ))
            detector = (tracing.DETECTOR_PROC_EXIT
                        if "exited before registering" in (nl.error or "")
                        else tracing.DETECTOR_CONNECT)
            self.tracer.emit(tracing.FAILOVER, "launcher", peer=name,
                             offset=0, detail=reason, detector=detector)
        return records

    def _send_starts(self, coordinator: Coordinator, final_chain: ChainPlan,
                     source_path: str, timeout: float) -> None:
        final_plan = final_chain.base
        nodes_wire = []
        ports_wire = {}
        for name in final_plan.chain:
            agent = coordinator.agent(name)
            assert agent is not None  # launched => registered
            nodes_wire.append([name, agent.address.host, agent.address.port])
            ports_wire[name] = list(agent.ports)
        base = {
            "op": "start",
            "nodes": nodes_wire,
            "head": final_plan.head,
            "plan": final_chain.to_dict(),
            "ports": ports_wire,
            "config": config_to_wire(self.config),
            "run_timeout": timeout,
            "heartbeat_interval": self.heartbeat_interval,
            "progress_every": self.progress_every,
        }
        if self._failover_enabled:
            # Agents stay on the control channel while the node runs so
            # a mid-transfer re-root can reach them.
            base["failover"] = True
        for name in final_plan.chain:
            msg = dict(base)
            if name == final_plan.head:
                msg["source"] = source_path
            elif self.output_template is not None:
                msg["output"] = self.output_template.replace("{node}", name)
            coordinator.send(name, msg)
        # Agents registered but re-planned out (e.g. a late duplicate
        # registration) must not sit waiting for a start that never comes.
        for name in set(coordinator.registered_names()) - set(final_plan.chain):
            coordinator.send(name, {"op": "cancel",
                                    "reason": "not in final chain"})

    def _collect(
        self,
        coordinator: Coordinator,
        final_chain: ChainPlan,
        launch_report: LaunchReport,
        launch_failures: List[FailureRecord],
        crashed_by_chaos: Dict[str, str],
        started: float,
        wall0: float,
        effective_chain: Optional[ChainPlan] = None,
    ) -> BroadcastResult:
        final_plan = final_chain.base
        # After a head failover the run is judged against the re-rooted
        # chain: the promoted node is the head whose report and byte
        # count matter, while every originally-started agent still gets
        # an outcome.
        effective = effective_chain if effective_chain is not None \
            else final_chain
        effective_head = effective.base.head
        duration = time.monotonic() - started
        outcomes: Dict[str, NodeOutcome] = {}
        perfstats: Dict[str, int] = {}
        head_report: Optional[TransferReport] = None
        merged_events: list = []

        for name in launch_report.failed:
            nl = launch_report.nodes[name]
            outcomes[name] = NodeOutcome(
                name=name, ok=False,
                error=f"launch failed: {nl.error}",
            )
        for name in final_plan.chain:
            agent = coordinator.agent(name)
            status = agent.status if agent is not None else None
            if status is not None:
                outcomes[name] = NodeOutcome(
                    name=name,
                    ok=bool(status.get("ok")),
                    bytes_received=int(status.get("bytes", 0)),
                    crashed=bool(status.get("crashed")),
                    error=status.get("error"),
                    digest=status.get("digest"),
                )
                for key, value in (status.get("perfstats") or {}).items():
                    perfstats[key] = perfstats.get(key, 0) + int(value)
                merged_events.extend(rebase_events(status, wall0))
                if name == effective_head and status.get("report"):
                    head_report = TransferReport.decode(
                        bytes.fromhex(status["report"]))
                    outcomes[name].failures_detected = list(
                        head_report.failures)
                    self.tracer.emit(tracing.REPORT, "coordinator",
                                     detail="ring-closure via head status")
            else:
                reason = (agent.dead_reason if agent is not None
                          and agent.dead_reason else "agent never resolved")
                outcomes[name] = NodeOutcome(
                    name=name, ok=False, crashed=True, error=reason,
                    bytes_received=(agent.bytes_received
                                    if agent is not None else 0),
                )

        for event in sorted(merged_events, key=lambda e: e.t):
            self.tracer.emit(event.type, event.node, t=event.t,
                             offset=event.offset, peer=event.peer,
                             detail=event.detail, detector=event.detector)

        report = head_report if head_report is not None else TransferReport()
        # Launch failures happened before the protocol's own report
        # existed; surface them to the caller alongside transfer failures.
        report.failures[:0] = launch_failures

        head_outcome = outcomes[effective_head]
        # Same accounting as LocalBroadcast: only *planned* deaths are
        # excused, so an unexpected launch failure fails the run even
        # though the survivors were served around it.
        intended = [r for r in self.plan.receivers
                    if r not in self.chaos.targets()]
        ok = head_outcome.ok and all(outcomes[r].ok for r in intended)
        return BroadcastResult(
            ok=ok,
            duration=duration,
            total_bytes=head_outcome.bytes_received,
            report=report,
            outcomes=outcomes,
            trace=(self.tracer if isinstance(self.tracer, TraceCollector)
                   else None),
            perfstats=perfstats,
            backend="procs",
            launch=launch_report,
            plan=effective,
        )

    def _failed_result(
        self,
        started: float,
        launch_report: LaunchReport,
        launch_failures: List[FailureRecord],
        why: str,
    ) -> BroadcastResult:
        outcomes = {
            name: NodeOutcome(
                name=name, ok=False,
                error=(None if nl.ok else f"launch failed: {nl.error}"),
            )
            for name, nl in launch_report.nodes.items()
        }
        report = TransferReport()
        report.extend(launch_failures)
        return BroadcastResult(
            ok=False,
            duration=time.monotonic() - started,
            total_bytes=0,
            report=report,
            outcomes=outcomes,
            trace=(self.tracer if isinstance(self.tracer, TraceCollector)
                   else None),
            perfstats={},
            backend="procs",
            launch=launch_report,
            plan=self.chain_plan,
        )

    def _teardown(
        self,
        procs: Dict[str, subprocess.Popen],
        coordinator: Optional[Coordinator] = None,
        grace: float = 2.0,
    ) -> None:
        """Guaranteed cleanup: no agent outlives the run.

        Agents that completed cleanly (status received, never targeted
        by chaos) are *drained*: they get a ``quit`` on the control
        socket and up to ``grace`` seconds to exit on their own, so a
        clean run ends with exit code 0 across the fleet instead of a
        blanket ``SIGKILL`` masquerading as a crash in process
        accounting.  Everything else — chaos-stopped, hung, or
        unresolved agents — is killed immediately: ``SIGKILL`` rather
        than ``SIGTERM`` because a chaos-stopped process cannot run a
        handler; kill is the one signal that works on a ``SIGSTOP``ped
        child.  Drained agents that overstay the grace window are
        killed too — graceful is a courtesy, not a liveness dependency.
        """
        chaos_hit = set(self.chaos.fired) if self.chaos is not None else set()
        drained: List[subprocess.Popen] = []
        for name, proc in procs.items():
            if proc is None or proc.poll() is not None:
                continue
            agent = coordinator.agent(name) if coordinator is not None else None
            if (agent is not None and agent.status is not None
                    and name not in chaos_hit):
                coordinator.send(name, {"op": "quit"})
                drained.append(proc)
            else:
                try:
                    proc.kill()
                except (OSError, ProcessLookupError):
                    pass
        deadline = time.monotonic() + grace
        for proc in drained:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                try:
                    proc.kill()
                except (OSError, ProcessLookupError):
                    pass
        for proc in procs.values():
            if proc is not None:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
