"""Windowed, fault-tolerant agent spawning (§III-B).

Kascade deploys with TakTuk's *windowed* mode: the root starts every
node itself, at most ``window`` launches in flight at a time.  The
adaptive tree is faster but a mid-tree failure orphans a whole subtree;
windowed launching confines a failure to the one node that failed —
which is why the paper picks it despite the extra latency.  This module
reproduces those semantics with real processes:

* at most ``window`` agents are simultaneously in their spawn→register
  phase (a ``ThreadPoolExecutor`` bounds the in-flight set);
* an agent that exits before registering, or never registers within
  ``startup_timeout`` seconds, is killed and retried with exponential
  backoff, up to ``retries`` extra attempts;
* a node whose every attempt fails is *dropped*: the caller re-plans the
  chain around it before any payload byte flows — "launcher failures
  are handled before the transfer" (§III-B).

The launcher records wall-clock timings per node and for the whole wave,
so a real deployment can be scored against the closed-form predictions
of :mod:`repro.launch.models` (see
:func:`repro.launch.models.compare_measured` and
:meth:`LaunchReport.compare`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .protocol import DeployError

#: ``spawn(name, attempt)`` → a process handle exposing the small subset
#: of the :class:`subprocess.Popen` surface the launcher needs.
SpawnFn = Callable[[str, int], "ProcessHandle"]

#: ``wait_registered(name, timeout)`` → True once the agent said hello.
WaitFn = Callable[[str, float], bool]


class ProcessHandle:
    """Duck-typed subset of ``subprocess.Popen`` used by the launcher."""

    pid: int

    def poll(self) -> Optional[int]:  # pragma: no cover - interface only
        raise NotImplementedError

    def kill(self) -> None:  # pragma: no cover - interface only
        raise NotImplementedError

    def wait(self, timeout: Optional[float] = None) -> int:  # pragma: no cover
        raise NotImplementedError


@dataclass
class NodeLaunch:
    """Launch record for one node: attempts, timing, and the live handle."""

    name: str
    ok: bool = False
    attempts: int = 0
    #: Seconds from launch-wave start to this node's last spawn.
    spawned_at: Optional[float] = None
    #: Seconds from launch-wave start to successful registration.
    registered_at: Optional[float] = None
    error: Optional[str] = None
    #: The registered agent's process handle (``None`` when launch failed).
    proc: Optional[ProcessHandle] = field(default=None, repr=False)

    @property
    def startup_s(self) -> Optional[float]:
        """Spawn→registered latency of the successful attempt."""
        if self.spawned_at is None or self.registered_at is None:
            return None
        return self.registered_at - self.spawned_at


@dataclass
class LaunchReport:
    """Measured windowed-startup timings for one deployment wave.

    ``total_s`` is the wall clock from first spawn until every node
    either registered or was given up on — the measured counterpart of
    ``Launcher.startup_time()`` in :mod:`repro.launch.models`.
    """

    window: int
    total_s: float
    nodes: Dict[str, NodeLaunch]

    @property
    def launched(self) -> List[str]:
        return [n for n, nl in self.nodes.items() if nl.ok]

    @property
    def failed(self) -> List[str]:
        return [n for n, nl in self.nodes.items() if not nl.ok]

    @property
    def retries(self) -> int:
        """Spawn attempts beyond the first, summed over all nodes."""
        return sum(max(0, nl.attempts - 1) for nl in self.nodes.values())

    def compare(self, launcher=None, *, rtt: float = 0.0):
        """Score these timings against an analytic launch model.

        Defaults to :class:`repro.launch.models.TakTukWindowed` with this
        report's window — the model Kascade's deployment mimics.  Returns
        a :class:`repro.launch.models.LaunchComparison`.
        """
        from ..launch.models import TakTukWindowed, compare_measured

        if launcher is None:
            launcher = TakTukWindowed(window=self.window)
        return compare_measured(self.total_s, launcher, len(self.nodes),
                                rtt=rtt)

    def summary(self) -> str:
        """One-line human rendering for CLI output."""
        slowest = max(
            (nl for nl in self.nodes.values() if nl.startup_s is not None),
            key=lambda nl: nl.startup_s, default=None,
        )
        parts = [
            f"{len(self.launched)}/{len(self.nodes)} agents "
            f"in {self.total_s:.2f}s (window {self.window}"
        ]
        if self.retries:
            parts.append(f", {self.retries} retr"
                         + ("y" if self.retries == 1 else "ies"))
        if slowest is not None:
            parts.append(f", slowest {slowest.name} {slowest.startup_s:.2f}s")
        return "".join(parts) + ")"


class WindowedLauncher:
    """Spawn agents ``window`` at a time with per-node retry/backoff.

    Parameters
    ----------
    spawn:
        ``spawn(name, attempt)`` starts one agent process and returns its
        handle.  ``attempt`` counts from 0 so test hooks can make early
        attempts fail.
    window:
        Max simultaneous spawn→register phases in flight (§III-B).
    retries:
        Extra attempts per node after the first fails.
    backoff:
        Base seconds slept before retry ``k`` (grows as ``backoff * 2**k``).
    startup_timeout:
        Seconds one attempt may take from spawn to registration.
    poll_interval:
        Granularity of the register-or-died wait loop.
    """

    def __init__(
        self,
        spawn: SpawnFn,
        *,
        window: int = 8,
        retries: int = 1,
        backoff: float = 0.2,
        startup_timeout: float = 15.0,
        poll_interval: float = 0.05,
    ) -> None:
        if window < 1:
            raise DeployError(f"window must be >= 1, got {window}")
        if retries < 0:
            raise DeployError(f"retries must be >= 0, got {retries}")
        if startup_timeout <= 0:
            raise DeployError("startup_timeout must be positive")
        self.spawn = spawn
        self.window = window
        self.retries = retries
        self.backoff = backoff
        self.startup_timeout = startup_timeout
        self.poll_interval = poll_interval

    # ------------------------------------------------------------------

    def launch(self, names: Sequence[str], wait_registered: WaitFn) -> LaunchReport:
        """Start every node in ``names``; never raises for a failed node.

        Returns the full :class:`LaunchReport`; the caller decides what a
        missing node means (drop a receiver, abort if it was the head).
        """
        if not names:
            raise DeployError("nothing to launch")
        t0 = time.monotonic()
        with ThreadPoolExecutor(
            max_workers=self.window, thread_name_prefix="launch"
        ) as pool:
            futures = {
                name: pool.submit(self._launch_one, name, wait_registered, t0)
                for name in names
            }
            nodes = {name: fut.result() for name, fut in futures.items()}
        return LaunchReport(
            window=self.window,
            total_s=time.monotonic() - t0,
            nodes=nodes,
        )

    def _launch_one(self, name: str, wait_registered: WaitFn,
                    t0: float) -> NodeLaunch:
        nl = NodeLaunch(name)
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            nl.attempts = attempt + 1
            nl.spawned_at = time.monotonic() - t0
            try:
                proc = self.spawn(name, attempt)
            except (OSError, DeployError) as exc:
                nl.error = f"spawn failed: {exc}"
                continue
            outcome = self._await_registration(name, proc, wait_registered)
            if outcome is None:
                nl.registered_at = time.monotonic() - t0
                nl.ok = True
                nl.error = None
                nl.proc = proc
                return nl
            nl.error = outcome
            self._reap(proc)
        return nl

    def _await_registration(self, name: str, proc: ProcessHandle,
                            wait_registered: WaitFn) -> Optional[str]:
        """``None`` on success, else the failure reason.

        Watches the process *and* the registration: an agent that dies on
        startup fails the attempt immediately instead of burning the full
        startup timeout (that is what makes retry-with-backoff cheap).
        """
        deadline = time.monotonic() + self.startup_timeout
        while True:
            if wait_registered(name, self.poll_interval):
                return None
            rc = proc.poll()
            if rc is not None:
                return f"agent exited before registering (code {rc})"
            if time.monotonic() >= deadline:
                return (
                    f"agent never registered within {self.startup_timeout}s"
                )

    @staticmethod
    def _reap(proc: ProcessHandle) -> None:
        try:
            proc.kill()
        except (OSError, ProcessLookupError):
            pass
        try:
            proc.wait(timeout=5.0)
        except Exception:  # noqa: BLE001 - reaping is best-effort
            pass
