"""Control-plane protocol between the coordinator and its agents.

The data plane speaks the binary Kascade wire protocol
(:mod:`repro.core.framing`); the *control* plane is deliberately boring:
newline-delimited JSON objects over one TCP connection per agent, alive
from registration to exit.  Volume is tiny (a handshake, throttled
progress updates, one final status), so readability and debuggability
win over compactness — ``nc`` against the coordinator port shows the
whole conversation.

Message vocabulary (``op`` field):

=============  =========  ==================================================
``hello``      agent →    registration: name, pid, and the agent's bound
                          data-plane address
``start``      → agent    the final (re-planned) node list, the config,
                          the head name, and this agent's source/sink spec
``cancel``     → agent    the agent is not part of the final chain; exit
``heartbeat``  agent →    liveness tick (a stopped process goes silent)
``progress``   agent →    bytes received so far (drives the chaos hook)
``status``     agent →    structured final outcome: ok/bytes/digest/error,
                          the encoded ring report (head only), perfstats,
                          and the agent's trace events
=============  =========  ==================================================

Every message is one JSON object terminated by ``\\n``.  A reader that
sees EOF returns ``None``; oversized lines (> :data:`MAX_LINE`) are a
protocol violation, not an allocation.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Optional

from ..core.errors import KascadeError

#: Ceiling for one control message.  Status messages carry a JSONL trace
#: dump, so this is generous; anything larger is a bug, not a payload.
MAX_LINE = 16 << 20


class DeployError(KascadeError):
    """Deployment-layer failure (control protocol, spawn, supervision)."""


class ControlChannel:
    """One agent↔coordinator control connection, framed as JSON lines.

    Sends are serialised by a lock (the agent's heartbeat thread and its
    node thread share the channel) and bounded by ``send_timeout`` so a
    wedged peer can never block the data plane; send failures after the
    channel is closed are reported as ``False``, not raised — losing a
    progress update must not kill an agent.
    """

    def __init__(self, sock: socket.socket, *, send_timeout: float = 5.0) -> None:
        self._sock = sock
        self._send_timeout = send_timeout
        self._send_lock = threading.Lock()
        self._recv_buf = bytearray()
        self._closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets in tests
            pass

    # -- sending ---------------------------------------------------------

    def send(self, message: dict) -> bool:
        """Send one message; True on success, False if the peer is gone."""
        data = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        with self._send_lock:
            if self._closed:
                return False
            self._sock.settimeout(self._send_timeout)
            try:
                self._sock.sendall(data)
                return True
            except (OSError, ValueError):
                return False

    # -- receiving -------------------------------------------------------

    def recv(self, timeout: Optional[float]) -> Optional[dict]:
        """Receive one message.

        Returns ``None`` on EOF (peer closed), raises ``TimeoutError``
        when nothing complete arrives in time (buffered partial bytes are
        kept), and :class:`DeployError` on an undecodable line.
        """
        while True:
            nl = self._recv_buf.find(b"\n")
            if nl >= 0:
                line = bytes(self._recv_buf[:nl])
                del self._recv_buf[: nl + 1]
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                except ValueError as exc:
                    raise DeployError(f"bad control message: {exc}") from None
                if not isinstance(msg, dict) or "op" not in msg:
                    raise DeployError(f"control message without op: {msg!r}")
                return msg
            if len(self._recv_buf) > MAX_LINE:
                raise DeployError(
                    f"control message exceeds {MAX_LINE} bytes"
                )
            self._sock.settimeout(timeout)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise TimeoutError("control read stalled") from None
            except OSError:
                return None
            if not chunk:
                return None
            self._recv_buf += chunk

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ControlChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect_control(host: str, port: int, timeout: float) -> ControlChannel:
    """Dial the coordinator's control port (agent side)."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise DeployError(f"coordinator {host}:{port} unreachable: {exc}")
    return ControlChannel(sock)
