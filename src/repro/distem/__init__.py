"""Distem-like virtual platform: node folding and failure injection
(the evaluation environment of §IV-G / Fig. 15)."""

from .emulator import (
    DistemPlatform,
    FailureScenario,
    SEQUENTIAL_SCENARIOS,
    SIMULTANEOUS_SCENARIOS,
    build_distem_platform,
    paper_scenarios,
)

__all__ = [
    "DistemPlatform",
    "FailureScenario",
    "build_distem_platform",
    "paper_scenarios",
    "SIMULTANEOUS_SCENARIOS",
    "SEQUENTIAL_SCENARIOS",
]
