"""Distem-style emulated platform with failure injection.

The paper's fault-tolerance experiment (§IV-G) runs 100 virtual nodes
folded onto 20 physical nodes (5 vnodes each) of a 1 GbE cluster, and
kills vnodes at scheduled times.  Two platform effects matter:

* **NIC sharing** — a physical node's single GbE interface carries all
  its vnodes' external traffic.  We model each pnode as a bridge switch
  behind one 1 Gb/s uplink; vnode-to-vnode traffic inside a pnode stays
  on fast veth links.
* **Folding/virtualisation overhead** — five relays share one CPU, so a
  vnode's copy budget is a fifth of what the (virtualisation-taxed)
  pnode can shuffle.  This is what pins the no-failure reference near
  80 MB/s instead of the 125 MB/s line rate — "the node folding and the
  virtualization technique ... induce an overhead" (§IV-G).

Failure scenarios are transcribed verbatim from the paper: ``{t, n_i}``
kills vnode *i* at *t* seconds after transfer start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.units import GIGABIT
from ..topology.graph import Network

#: Aggregate bytes/s one physical node can shuffle across its vnodes
#: (bridge + veth + LXC overhead included).  Divided by the folding
#: factor it yields each vnode's copy ceiling: 800 MB/s / 5 vnodes
#: = 160 MB/s, i.e. an 80 MB/s relay — the paper's reference value.
PNODE_COPY_BUDGET = 800e6


@dataclass(frozen=True)
class FailureScenario:
    """A named failure schedule: ``events`` are ``(time_s, vnode_name)``."""

    name: str
    events: Tuple[Tuple[float, str], ...]

    @property
    def n_failures(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class DistemPlatform:
    """The built virtual platform."""

    network: Network
    vnodes: Tuple[str, ...]          # v-node names in pipeline order
    pnode_of: Dict[str, str]         # vnode -> physical node


def build_distem_platform(
    n_pnodes: int = 20,
    vnodes_per_pnode: int = 5,
    *,
    pnode_rate: float = GIGABIT,
    pnode_copy_budget: float = PNODE_COPY_BUDGET,
) -> DistemPlatform:
    """Build the §IV-G platform: ``n_pnodes × vnodes_per_pnode`` vnodes.

    Vnode names follow the paper (``n1`` … ``n100``), assigned to
    physical nodes in contiguous blocks, so the sorted pipeline crosses
    each physical NIC exactly once per direction.
    """
    if n_pnodes < 1 or vnodes_per_pnode < 1:
        raise ValueError("need at least one pnode and one vnode per pnode")
    net = Network(name=f"distem-{n_pnodes}x{vnodes_per_pnode}")
    net.add_switch("cluster")
    vnode_copy = pnode_copy_budget / vnodes_per_pnode
    vnodes: List[str] = []
    pnode_of: Dict[str, str] = {}
    idx = 1
    for p in range(1, n_pnodes + 1):
        bridge = net.add_switch(f"pnode-{p}")
        # The physical NIC: all external traffic of this pnode's vnodes.
        net.add_link("cluster", bridge, pnode_rate, 30e-6)
        for _v in range(vnodes_per_pnode):
            name = f"n{idx}"
            net.add_host(name, nic_rate=pnode_rate, copy_limit=vnode_copy)
            # veth pair: fast, local.
            net.add_link(name, bridge, 10 * pnode_rate, 10e-6)
            vnodes.append(name)
            pnode_of[name] = f"pnode-{p}"
            idx += 1
    return DistemPlatform(network=net, vnodes=tuple(vnodes), pnode_of=pnode_of)


def _sim(time: float, nodes: List[int]) -> Tuple[Tuple[float, str], ...]:
    return tuple((time, f"n{i}") for i in nodes)


#: §IV-G scenario 2: simultaneous failures 10 s into the transfer.
SIMULTANEOUS_SCENARIOS = (
    FailureScenario("2% sim.", _sim(10.0, [29, 69])),
    FailureScenario("5% sim.", _sim(10.0, [9, 29, 49, 69, 89])),
    FailureScenario(
        "10% sim.", _sim(10.0, [9, 19, 29, 39, 49, 59, 69, 79, 89, 99])
    ),
)

#: §IV-G scenario 3: staggered (sequential) failures.
SEQUENTIAL_SCENARIOS = (
    FailureScenario("2% seq.", ((10.0, "n29"), (20.0, "n69"))),
    FailureScenario(
        "5% seq.",
        ((10.0, "n9"), (14.0, "n29"), (18.0, "n49"),
         (22.0, "n69"), (26.0, "n89")),
    ),
    FailureScenario(
        "10% seq.",
        ((10.0, "n9"), (12.0, "n19"), (14.0, "n29"), (16.0, "n39"),
         (18.0, "n49"), (20.0, "n59"), (22.0, "n69"), (24.0, "n79"),
         (26.0, "n89"), (28.0, "n99")),
    ),
)


def paper_scenarios() -> Tuple[FailureScenario, ...]:
    """All seven bars of Fig. 15, in plot order."""
    return (
        FailureScenario("no failure", ()),
        *SIMULTANEOUS_SCENARIOS,
        *SEQUENTIAL_SCENARIOS,
    )
