"""Startup substrate: models of the launchers that start a broadcast tool
on every node (§III-B, and the dominant cost for small files in §IV-F)."""

from .models import (
    ClusterShellWindowed,
    InstantLauncher,
    LaunchComparison,
    Launcher,
    MpirunLauncher,
    SSHSequential,
    TakTukAdaptiveTree,
    TakTukWindowed,
    compare_measured,
)

__all__ = [
    "Launcher",
    "TakTukWindowed",
    "TakTukAdaptiveTree",
    "ClusterShellWindowed",
    "SSHSequential",
    "MpirunLauncher",
    "InstantLauncher",
    "LaunchComparison",
    "compare_measured",
]
