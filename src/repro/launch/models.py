"""Startup-time models for remote-execution launchers.

Before any byte of payload flows, the broadcast tool must be started on
every node.  Kascade copies itself plus the node list to all targets with
TakTuk in *windowed* mode — the adaptive tree is faster but cannot handle
mid-tree failures (§III-B) — while MPI relies on ``mpirun``'s launch tree
and UDPCast on a lightweight parallel starter.  For a 2 GB payload this
cost vanishes; for the 50 MB file of §IV-F it decides the ranking
(Fig. 14), so it is modelled explicitly.

The models are deliberately simple closed forms with named constants
(connection setup ≈ an SSH handshake; window = concurrent connections).
They are *startup latency* models, not network simulations: launcher
traffic (a few kB of script + node list) is negligible next to payload.

Units, throughout this module:

* every cost constant (``base_cost``, ``per_node``, ``per_hop``,
  ``per_level``, :data:`SSH_SETUP`, :data:`SPAWN_COST`) and every
  returned ``startup_time`` is in **seconds**;
* ``rtt`` is the network round-trip time in **seconds** (the default
  ``1e-4`` is a 0.1 ms LAN);
* ``n_nodes`` / ``window`` / ``fanout`` are dimensionless counts.
  ``n_nodes = 0`` is valid (an empty wave costs only fixed overhead);
  negative counts raise, and degenerate concurrency (``window`` or
  ``fanout`` < 1) is rejected at construction.

:func:`compare_measured` closes the loop with the real deployment layer:
:class:`repro.deploy.WindowedLauncher` records wall-clock startup
timings, and the comparison scores them against these closed forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: One SSH connect + auth + fork on 2010s hardware, LAN.  Seconds.
SSH_SETUP = 0.35
#: Spawning the tool once the connection exists (interpreter start etc.).
#: Seconds.
SPAWN_COST = 0.15


@dataclass(frozen=True)
class Launcher:
    """Base launcher: fixed overhead only."""

    base_cost: float = 0.2

    def startup_time(self, n_nodes: int, rtt: float = 1e-4) -> float:
        """Seconds from invocation until the tool runs on all ``n_nodes``."""
        if n_nodes < 0:
            raise ValueError("negative node count")
        if rtt < 0:
            raise ValueError("negative rtt")
        return self.base_cost


@dataclass(frozen=True)
class InstantLauncher(Launcher):
    """Zero-cost launcher for experiments that ignore startup."""

    base_cost: float = 0.0


@dataclass(frozen=True)
class TakTukWindowed(Launcher):
    """TakTuk's windowed mode: the root connects to every node itself,
    ``window`` connections in flight at a time.  Failure of a node only
    costs that node — which is why Kascade uses it by default."""

    base_cost: float = 0.3
    window: int = 50
    per_node: float = SSH_SETUP

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def startup_time(self, n_nodes: int, rtt: float = 1e-4) -> float:
        super().startup_time(n_nodes, rtt)
        waves = math.ceil(n_nodes / self.window) if n_nodes else 0
        return self.base_cost + waves * (self.per_node + rtt) + SPAWN_COST


@dataclass(frozen=True)
class TakTukAdaptiveTree(Launcher):
    """TakTuk's work-stealing adaptive tree: already-reached nodes connect
    onward, giving logarithmic depth — faster, but a mid-tree failure
    orphans a whole subtree (§III-B)."""

    base_cost: float = 0.3
    fanout: int = 2
    per_hop: float = SSH_SETUP

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")

    def startup_time(self, n_nodes: int, rtt: float = 1e-4) -> float:
        super().startup_time(n_nodes, rtt)
        if n_nodes == 0:
            return self.base_cost
        depth = math.ceil(math.log(n_nodes + 1, self.fanout + 1))
        return self.base_cost + depth * (self.per_hop + rtt) + SPAWN_COST


@dataclass(frozen=True)
class ClusterShellWindowed(Launcher):
    """ClusterShell's windowed (fanout) execution — same shape as TakTuk
    windowed with its own constants (a tree mode was only planned at the
    time of the paper, §III-B)."""

    base_cost: float = 0.4
    window: int = 32
    per_node: float = SSH_SETUP

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def startup_time(self, n_nodes: int, rtt: float = 1e-4) -> float:
        super().startup_time(n_nodes, rtt)
        waves = math.ceil(n_nodes / self.window) if n_nodes else 0
        return self.base_cost + waves * (self.per_node + rtt) + SPAWN_COST


@dataclass(frozen=True)
class SSHSequential(Launcher):
    """Plain ssh loop fallback: one connection after another."""

    base_cost: float = 0.1
    per_node: float = SSH_SETUP

    def startup_time(self, n_nodes: int, rtt: float = 1e-4) -> float:
        super().startup_time(n_nodes, rtt)
        return self.base_cost + n_nodes * (self.per_node + rtt) + SPAWN_COST


@dataclass(frozen=True)
class MpirunLauncher(Launcher):
    """mpirun/orted launch tree: efficient parallel start (the paper's
    §IV-F: "methods that have efficient start-up (i.e., MPI and UDPCast)
    are clearly better" for small files)."""

    base_cost: float = 0.5
    per_level: float = 0.06

    def startup_time(self, n_nodes: int, rtt: float = 1e-4) -> float:
        super().startup_time(n_nodes, rtt)
        depth = math.ceil(math.log2(n_nodes + 1)) if n_nodes else 0
        return self.base_cost + depth * (self.per_level + rtt)


@dataclass(frozen=True)
class LaunchComparison:
    """A measured startup wave scored against one analytic model.

    All times in seconds.  ``ratio`` is measured/predicted (1.0 = the
    model nailed it; local process spawns typically land well under 1
    because there is no SSH handshake to pay).
    """

    launcher: Launcher
    n_nodes: int
    measured_s: float
    predicted_s: float

    @property
    def error_s(self) -> float:
        """Signed absolute error: measured − predicted, seconds."""
        return self.measured_s - self.predicted_s

    @property
    def ratio(self) -> float:
        """measured / predicted (``inf`` for a zero-cost prediction)."""
        if self.predicted_s == 0.0:
            return math.inf if self.measured_s else 1.0
        return self.measured_s / self.predicted_s

    def render(self) -> str:
        """One human-readable line for CLI output."""
        return (
            f"startup: measured {self.measured_s:.3f}s vs "
            f"{type(self.launcher).__name__} prediction "
            f"{self.predicted_s:.3f}s for {self.n_nodes} node(s) "
            f"(x{self.ratio:.2f})"
        )


def compare_measured(
    measured_s: float,
    launcher: Launcher,
    n_nodes: int,
    *,
    rtt: float = 1e-4,
) -> LaunchComparison:
    """Score a measured startup wall-clock against a launcher model.

    ``measured_s`` is the observed seconds from first spawn until every
    node registered (e.g. ``LaunchReport.total_s`` from
    :mod:`repro.deploy`); the prediction is the model's closed form for
    the same node count and round-trip time.
    """
    if measured_s < 0:
        raise ValueError("negative measured time")
    return LaunchComparison(
        launcher=launcher,
        n_nodes=n_nodes,
        measured_s=measured_s,
        predicted_s=launcher.startup_time(n_nodes, rtt),
    )
