"""Protocol-exact simulation: the complete Kascade protocol — the real
:class:`~repro.core.node_state.NodeTransferState`, the real message set,
the real recovery handshakes — executed as deterministic DES processes
over simulated channels.

Three implementations of one protocol now cross-check each other:

========================  ==========================  ====================
tier                      substrate                   what it is for
========================  ==========================  ====================
``repro.runtime``         threads + real TCP          the actual tool
``repro.protosim``        DES + message channels      deterministic
                                                      protocol testing at
                                                      exact failure timing
``repro.baselines``       DES + fluid flows           200-node performance
                                                      sweeps (the figures)
========================  ==========================  ====================
"""

from .broadcast import ProtoBroadcast, ProtoCrash, ProtoResult
from .fuzz import FuzzCase, FuzzReport, generate_case, run_campaign, run_case
from .msc import collapse_data_runs, render_msc

__all__ = [
    "ProtoBroadcast",
    "ProtoCrash",
    "ProtoResult",
    "render_msc",
    "collapse_data_runs",
    "FuzzCase",
    "FuzzReport",
    "generate_case",
    "run_case",
    "run_campaign",
]
