"""Orchestration of protocol-exact simulated broadcasts.

:class:`ProtoBroadcast` mirrors :class:`repro.runtime.LocalBroadcast`:
build a pipeline, run it, inject crashes — but on the DES, so failure
timing is *exact* (down to the simulated microsecond and byte offset)
and every run is perfectly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.pipeline import PipelinePlan
from ..core.report import TransferReport
from ..core.sinks import NullSink, Sink
from ..core.sources import Source
from ..core.tracing import NULL_TRACER, TraceCollector
from ..simnet.channels import SimNetHub
from ..simnet.engine import Engine
from .node import CrashNow, ProtoHead, ProtoReceiver


@dataclass(frozen=True)
class ProtoCrash:
    """Kill ``node`` either when it has stored ``after_bytes``
    (byte-exact, triggered from inside its receive path) or at simulated
    time ``at_time`` (wall-clock-exact, triggered externally)."""

    node: str
    after_bytes: Optional[int] = None
    at_time: Optional[float] = None
    mode: str = "close"  # "close" | "silent"

    def __post_init__(self) -> None:
        if self.mode not in ("close", "silent"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if (self.after_bytes is None) == (self.at_time is None):
            raise ValueError("set exactly one of after_bytes / at_time")


@dataclass
class ProtoResult:
    """Outcome of one protocol-exact broadcast."""

    ok: bool
    sim_time: float
    total_bytes: int
    report: TransferReport
    node_ok: Dict[str, bool] = field(default_factory=dict)
    node_bytes: Dict[str, int] = field(default_factory=dict)
    node_errors: Dict[str, Optional[str]] = field(default_factory=dict)
    crashed: List[str] = field(default_factory=list)
    #: Raw message trace when run with ``trace=True``:
    #: ``(time, src, dst, message, payload_len)`` tuples.
    message_log: Optional[List] = None
    #: Structured event trace when a collector was passed to ``run``.
    trace: Optional[TraceCollector] = None


class ProtoBroadcast:
    """One protocol-exact broadcast on the DES."""

    def __init__(
        self,
        source: Source,
        receivers: Sequence[str],
        *,
        sink_factory: Optional[Callable[[str], Sink]] = None,
        config: KascadeConfig = DEFAULT_CONFIG,
        head: str = "n1",
        crashes: Sequence[ProtoCrash] = (),
        bandwidth: float = 125e6,
        latency: float = 1e-4,
    ) -> None:
        self.source = source
        self.config = config
        self.plan = PipelinePlan.build(head, receivers, order="given")
        self.sink_factory = sink_factory or (lambda name: NullSink())
        self.crashes = {c.node: c for c in crashes}
        unknown = set(self.crashes) - set(self.plan.receivers)
        if unknown:
            raise KascadeError(f"crash plans for unknown nodes: {sorted(unknown)}")
        self.bandwidth = bandwidth
        self.latency = latency
        self.nodes: Dict[str, object] = {}

    def _gate(self, name: str):
        plan = self.crashes.get(name)
        if plan is None or plan.after_bytes is None:
            return None

        def gate(received: int, _p=plan):
            return _p.mode if received >= _p.after_bytes else None

        return gate

    def run(self, sim_horizon: float = 3600.0,
            trace: bool = False, tracer=NULL_TRACER) -> ProtoResult:
        """Run to completion (or ``sim_horizon``).

        ``trace=True`` records the raw per-message log; ``tracer`` takes
        a :class:`~repro.core.tracing.TraceCollector` for the structured
        event timeline shared with the real runtime (events are stamped
        with simulated seconds).
        """
        engine = Engine(tracer=tracer)
        hub = SimNetHub(engine, bandwidth=self.bandwidth,
                        latency=self.latency)
        message_log = hub.start_tracing() if trace else None

        head = ProtoHead(self.plan.head, self.plan, hub, self.config,
                         engine, self.source)
        receivers = [
            ProtoReceiver(name, self.plan, hub, self.config, engine,
                          self.sink_factory(name),
                          crash_gate=self._gate(name))
            for name in self.plan.receivers
        ]
        self.nodes = {head.name: head,
                      **{r.name: r for r in receivers}}
        crashed: List[str] = []

        def main_of(node, acceptor):
            def wrapper():
                try:
                    yield from node.run()
                except CrashNow as crash:
                    # The main process dies by returning; only the
                    # acceptor needs killing (we cannot close our own
                    # running generator).
                    node.crashed = crash.mode
                    node.error = f"injected crash ({crash.mode})"
                    crashed.append(node.name)
                    acceptor.kill()
                    if crash.mode == "silent":
                        hub.kill_silent(node.name)
                    else:
                        hub.kill(node.name)
                    node.done = True
                except (KascadeError,) as exc:
                    node.error = f"{type(exc).__name__}: {exc}"
                    node.done = True

            return wrapper

        for node in self.nodes.values():
            acceptor = engine.spawn(node.acceptor(),
                                    name=f"accept:{node.name}")
            main = engine.spawn(main_of(node, acceptor)(),
                                name=f"node:{node.name}")
            node.procs = [acceptor, main]

        def kill_at(node, mode):
            def do_kill():
                if node.done:
                    return
                for proc in node.procs:
                    proc.kill()
                node.crashed = mode
                node.error = f"injected crash ({mode})"
                crashed.append(node.name)
                if mode == "silent":
                    hub.kill_silent(node.name)
                else:
                    hub.kill(node.name)
                node.done = True
            return do_kill

        for crash in self.crashes.values():
            if crash.at_time is not None:
                engine.call_at(crash.at_time,
                               kill_at(self.nodes[crash.node], crash.mode))

        engine.run(until=sim_horizon)

        # Identity check: an all-clear TransferReport is falsy.
        report = (head.final_report if head.final_report is not None
                  else TransferReport())
        intended = [r for r in receivers if r.name not in self.crashes]
        ok = head.ok and all(r.ok for r in intended)
        return ProtoResult(
            ok=ok,
            sim_time=engine.now,
            total_bytes=head.bytes_received,
            report=report,
            node_ok={n.name: n.ok for n in self.nodes.values()},
            node_bytes={n.name: n.bytes_received
                        for n in self.nodes.values()},
            node_errors={n.name: n.error for n in self.nodes.values()},
            crashed=crashed,
            message_log=message_log,
            trace=tracer if isinstance(tracer, TraceCollector) else None,
        )
