"""Orchestration of protocol-exact simulated broadcasts.

:class:`ProtoBroadcast` mirrors :class:`repro.runtime.LocalBroadcast`:
build a pipeline, run it, inject crashes — but on the DES, so failure
timing is *exact* (down to the simulated microsecond and byte offset)
and every run is perfectly reproducible.

Striping (``config.stripes > 1`` or a multi-stripe ``plan``) runs one
chain instance per (host, stripe) on a single shared hub and engine.
Instances are registered under suffixed names (``n2@s1``); results are
aggregated back to host names.  Because every :class:`~repro.simnet.
channels.SimChannel` models its own link bandwidth, ``k`` interleaved
chains really do move ``k`` links' worth of bytes per simulated second —
this backend is where the predicted k-way speedup is validated before
trusting TCP numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.perfstats import get_stats
from ..core.plan import ChainPlan, StripePlan
from ..core.report import FailureRecord, TransferReport
from ..core.sinks import NullSink, Sink
from ..core.sources import Source
from ..core.stripes import StripeMergeSink, StripeSource
from ..core.tracing import NULL_TRACER, TraceCollector
from ..simnet.channels import SimNetHub
from ..simnet.engine import Engine
from .node import CrashNow, ProtoHead, ProtoReceiver


@dataclass(frozen=True)
class ProtoCrash:
    """Kill ``node`` either when it has stored ``after_bytes``
    (byte-exact, triggered from inside its receive path) or at simulated
    time ``at_time`` (wall-clock-exact, triggered externally).

    On a striped run the crash is host-level: ``after_bytes`` counts the
    host's aggregate across stripes and the death takes every one of
    its chain instances down, like one OS process dying."""

    node: str
    after_bytes: Optional[int] = None
    at_time: Optional[float] = None
    mode: str = "close"  # "close" | "silent"

    def __post_init__(self) -> None:
        if self.mode not in ("close", "silent"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if (self.after_bytes is None) == (self.at_time is None):
            raise ValueError("set exactly one of after_bytes / at_time")


@dataclass
class ProtoResult:
    """Outcome of one protocol-exact broadcast (host-level keys)."""

    ok: bool
    sim_time: float
    total_bytes: int
    report: TransferReport
    node_ok: Dict[str, bool] = field(default_factory=dict)
    node_bytes: Dict[str, int] = field(default_factory=dict)
    node_errors: Dict[str, Optional[str]] = field(default_factory=dict)
    crashed: List[str] = field(default_factory=list)
    #: Raw message trace when run with ``trace=True``:
    #: ``(time, src, dst, message, payload_len)`` tuples.
    message_log: Optional[List] = None
    #: Structured event trace when a collector was passed to ``run``.
    trace: Optional[TraceCollector] = None
    #: Simulation-kernel counters for this run (``sim_events_processed``,
    #: ``sim_cancelled_skips``, ``solver_rounds``, ``solver_full_rebuilds``
    #: as per-run deltas; ``sim_heap_peak`` as the process high-water mark).
    perfstats: Dict[str, int] = field(default_factory=dict)


class _AggregateGate:
    """Host crash threshold over the sum of its stripes' bytes."""

    def __init__(self, crash: ProtoCrash, stripes: int) -> None:
        self._crash = crash
        self._seen = [0] * stripes
        self._fired = False

    def for_stripe(self, stripe: int):
        def gate(received: int) -> Optional[str]:
            self._seen[stripe] = received
            if self._fired or sum(self._seen) >= self._crash.after_bytes:
                self._fired = True
                return self._crash.mode
            return None
        return gate


class ProtoBroadcast:
    """One protocol-exact broadcast on the DES."""

    def __init__(
        self,
        source: Source,
        receivers: Sequence[str],
        *,
        sink_factory: Optional[Callable[[str], Sink]] = None,
        config: KascadeConfig = DEFAULT_CONFIG,
        head: str = "n1",
        crashes: Sequence[ProtoCrash] = (),
        plan: Optional[ChainPlan] = None,
        bandwidth: float = 125e6,
        latency: float = 1e-4,
    ) -> None:
        self.source = source
        self.config = config
        if plan is not None:
            if set(plan.receivers) != set(receivers):
                raise KascadeError(
                    "chain plan covers different receivers than requested: "
                    f"{sorted(plan.receivers)} vs {sorted(receivers)}"
                )
            if config.stripes not in (1, plan.stripe_count):
                raise KascadeError(
                    f"config.stripes={config.stripes} conflicts with a "
                    f"{plan.stripe_count}-stripe plan"
                )
            self.chain_plan = plan
        else:
            self.chain_plan = ChainPlan.build(
                head, receivers, stripes=config.stripes, order="given"
            )
        self.stripes = self.chain_plan.stripe_count
        self.plan = self.chain_plan.stripe(0)
        self.sink_factory = sink_factory or (lambda name: NullSink())
        self.crashes = {c.node: c for c in crashes}
        unknown = set(self.crashes) - set(self.plan.receivers)
        if unknown:
            raise KascadeError(f"crash plans for unknown nodes: {sorted(unknown)}")
        self.bandwidth = bandwidth
        self.latency = latency
        self.nodes: Dict[str, object] = {}

    def _gate(self, name: str):
        plan = self.crashes.get(name)
        if plan is None or plan.after_bytes is None:
            return None

        def gate(received: int, _p=plan):
            return _p.mode if received >= _p.after_bytes else None

        return gate

    @staticmethod
    def _instance_name(host: str, stripe: int, stripes: int) -> str:
        return host if stripes == 1 else f"{host}@s{stripe}"

    @staticmethod
    def _host_of(instance: str) -> str:
        base, sep, tail = instance.rpartition("@s")
        return base if sep and tail.isdigit() else instance

    def run(self, sim_horizon: float = 3600.0,
            trace: bool = False, tracer=NULL_TRACER) -> ProtoResult:
        """Run to completion (or ``sim_horizon``).

        ``trace=True`` records the raw per-message log; ``tracer`` takes
        a :class:`~repro.core.tracing.TraceCollector` for the structured
        event timeline shared with the real runtime (events are stamped
        with simulated seconds).
        """
        engine = Engine(tracer=tracer)
        hub = SimNetHub(engine, bandwidth=self.bandwidth,
                        latency=self.latency)
        message_log = hub.start_tracing() if trace else None
        k = self.stripes

        if k == 1:
            sources: List[Source] = [self.source]
            instance_sinks = {
                name: [self.sink_factory(name)]
                for name in self.plan.receivers
            }
        else:
            sources = [
                StripeSource(self.source, j, k, self.config.chunk_size)
                for j in range(k)
            ]
            instance_sinks = {}
            for name in self.plan.receivers:
                sink = self.sink_factory(name)
                if type(sink) is NullSink:
                    instance_sinks[name] = [NullSink() for _ in range(k)]
                else:
                    merger = StripeMergeSink(sink, k, self.config.chunk_size)
                    instance_sinks[name] = [merger.port(j) for j in range(k)]
        gates = {
            name: _AggregateGate(crash, k)
            for name, crash in self.crashes.items()
            if crash.after_bytes is not None
        } if k > 1 else {}

        heads: List[ProtoHead] = []
        by_host: Dict[str, List] = {}
        for j in range(k):
            sp = self.chain_plan.stripe(j)
            plan_j = StripePlan(
                head=self._instance_name(sp.head, j, k),
                receivers=tuple(self._instance_name(r, j, k)
                                for r in sp.receivers),
                stripe=sp.stripe, of=sp.of,
            )
            head = ProtoHead(plan_j.head, plan_j, hub, self.config,
                             engine, sources[j])
            heads.append(head)
            by_host.setdefault(sp.head, []).append(head)
            for host, name in zip(sp.receivers, plan_j.receivers):
                if k == 1:
                    gate = self._gate(host)
                else:
                    agg = gates.get(host)
                    gate = agg.for_stripe(j) if agg else None
                recv = ProtoReceiver(name, plan_j, hub, self.config, engine,
                                     instance_sinks[host][j],
                                     crash_gate=gate)
                by_host.setdefault(host, []).append(recv)
        self.nodes = {n.name: n
                      for nodes in by_host.values() for n in nodes}
        crashed: List[str] = []

        def supervisor_of(node, acceptor):
            # Installed as ``Process.on_error`` instead of wrapping
            # ``node.run()`` in a try/except generator: a wrapper would
            # cost a delegation hop on every resume of every node.
            def absorb(exc: BaseException) -> bool:
                if isinstance(exc, CrashNow):
                    node.crashed = exc.mode
                    node.error = f"injected crash ({exc.mode})"
                    crashed.append(node.name)
                    acceptor.kill()
                    if exc.mode == "silent":
                        hub.kill_silent(node.name)
                    else:
                        hub.kill(node.name)
                    node.done = True
                    return True
                if isinstance(exc, KascadeError):
                    node.error = f"{type(exc).__name__}: {exc}"
                    node.done = True
                    return True
                return False

            return absorb

        for node in self.nodes.values():
            acceptor = engine.spawn(node.acceptor(),
                                    name=f"accept:{node.name}")
            main = engine.spawn(node.run(), name=f"node:{node.name}")
            main.on_error = supervisor_of(node, acceptor)
            node.procs = [acceptor, main]

        def kill_at(node, mode):
            def do_kill():
                if node.done:
                    return
                for proc in node.procs:
                    proc.kill()
                node.crashed = mode
                node.error = f"injected crash ({mode})"
                crashed.append(node.name)
                if mode == "silent":
                    hub.kill_silent(node.name)
                else:
                    hub.kill(node.name)
                node.done = True
            return do_kill

        for crash in self.crashes.values():
            if crash.at_time is not None:
                # Host death: every stripe instance dies at that instant.
                for node in by_host[crash.node]:
                    engine.call_at(crash.at_time, kill_at(node, crash.mode))

        stats = get_stats()
        before = stats.snapshot()
        engine.run(until=sim_horizon)
        after = stats.snapshot()
        perf = {
            key: after[key] - before[key]
            for key in ("sim_events_processed", "sim_cancelled_skips",
                        "solver_rounds", "solver_full_rebuilds")
        }
        perf["sim_heap_peak"] = after["sim_heap_peak"]

        # Pool the per-stripe head reports, projecting instance names
        # back to hosts.  Identity check: an all-clear TransferReport is
        # falsy.  A merged stream carries no single source digest (each
        # stripe ships its own), so only the single-chain report keeps
        # one.
        if k == 1:
            report = (heads[0].final_report
                      if heads[0].final_report is not None
                      else TransferReport())
        else:
            report = TransferReport()
            for head in heads:
                if head.final_report is not None:
                    report.extend(
                        FailureRecord(self._host_of(rec.node),
                                      self._host_of(rec.detected_by),
                                      rec.at_offset, rec.reason)
                        for rec in head.final_report.failures
                    )

        host_ok = {host: all(n.ok for n in nodes)
                   for host, nodes in by_host.items()}
        intended = [r for r in self.plan.receivers if r not in self.crashes]
        head_host = self.plan.head
        ok = host_ok[head_host] and all(host_ok[r] for r in intended)
        crashed_hosts: List[str] = []
        for name in crashed:
            host = self._host_of(name)
            if host not in crashed_hosts:
                crashed_hosts.append(host)
        return ProtoResult(
            ok=ok,
            sim_time=engine.now,
            total_bytes=sum(h.bytes_received for h in heads),
            report=report,
            node_ok=host_ok,
            node_bytes={host: sum(n.bytes_received for n in nodes)
                        for host, nodes in by_host.items()},
            node_errors={host: next((n.error for n in nodes if n.error), None)
                         for host, nodes in by_host.items()},
            crashed=crashed_hosts,
            message_log=message_log,
            trace=tracer if isinstance(tracer, TraceCollector) else None,
            perfstats=perf,
        )
