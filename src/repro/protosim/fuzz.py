"""Protocol soak-testing: randomized failure schedules, checked invariants.

One fuzz case builds a random pipeline (size, chunking, buffer depth,
crash schedule) from a seeded RNG, runs it protocol-exactly, and checks
the §IV-G contract:

* every non-crashed receiver completes with a byte-perfect copy
  (SHA-256 against the synthetic source);
* every crashed node — and only those — appears in the final report;
* the simulation terminates within a bounded horizon.

The same machinery backs the hypothesis test suite and the
``kascade-sim fuzz`` command; a failing case prints its seed, which
replays it exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.config import KascadeConfig
from ..core.sinks import HashingSink
from ..core.sources import PatternSource
from .broadcast import ProtoBroadcast, ProtoCrash


@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario (fully derived from its seed)."""

    seed: int
    n_receivers: int
    size: int
    chunk_size: int
    buffer_chunks: int
    crashes: Tuple[ProtoCrash, ...]

    def describe(self) -> str:
        kills = ", ".join(
            f"{c.node}@{c.after_bytes}B:{c.mode}" for c in self.crashes
        ) or "none"
        return (f"seed={self.seed} n={self.n_receivers} "
                f"size={self.size} chunk={self.chunk_size} "
                f"buffer={self.buffer_chunks} kills=[{kills}]")


@dataclass
class FuzzFailure:
    """A violated invariant, with everything needed to reproduce it."""

    case: FuzzCase
    problem: str


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    runs: int = 0
    crash_injections: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        lines = [
            f"{self.runs} randomized scenarios, "
            f"{self.crash_injections} crashes injected: {verdict}"
        ]
        for failure in self.failures:
            lines.append(f"  {failure.problem}")
            lines.append(f"    reproduce: {failure.case.describe()}")
        return "\n".join(lines)


def generate_case(seed: int) -> FuzzCase:
    """Derive a scenario deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 12))
    chunk = int(rng.choice([16, 64, 256])) * 1024
    size = int(rng.integers(4, 40)) * chunk
    buffer_chunks = int(rng.choice([1, 2, 8, 32]))
    receivers = [f"n{i}" for i in range(2, n + 2)]
    n_crashes = int(rng.integers(0, min(4, n)))
    victims = rng.choice(receivers, size=n_crashes, replace=False)
    crashes = tuple(
        ProtoCrash(
            str(v),
            after_bytes=int(rng.integers(1, size + 1)),
            mode=str(rng.choice(["close", "silent"])),
        )
        for v in victims
    )
    return FuzzCase(seed=seed, n_receivers=n, size=size,
                    chunk_size=chunk, buffer_chunks=buffer_chunks,
                    crashes=crashes)


def run_case(case: FuzzCase) -> Optional[str]:
    """Run one case; returns a problem description or None."""
    config = KascadeConfig(
        chunk_size=case.chunk_size,
        buffer_chunks=case.buffer_chunks,
        io_timeout=0.5, ping_timeout=0.3, connect_timeout=1.0,
        report_timeout=15.0, verify_digest=True,
    )
    source = PatternSource(case.size, seed=case.seed)
    expected = hashlib.sha256(
        source.expected_bytes(0, case.size)).hexdigest()
    receivers = [f"n{i}" for i in range(2, case.n_receivers + 2)]
    sinks = {}

    def factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    bc = ProtoBroadcast(
        PatternSource(case.size, seed=case.seed), receivers,
        sink_factory=factory, config=config, crashes=case.crashes,
    )
    result = bc.run(sim_horizon=600.0)
    if result.sim_time >= 600.0:
        return "simulation did not terminate within the horizon"

    victims = {c.node for c in case.crashes}
    survivors = [r for r in receivers if r not in victims]
    if not result.ok:
        return f"broadcast not ok: {result.node_errors}"
    for name in survivors:
        if sinks[name].hexdigest() != expected:
            return f"{name} delivered corrupted data"
    if set(result.report.failed_nodes) != victims:
        return (f"report mismatch: {result.report.failed_nodes} "
                f"vs victims {sorted(victims)}")
    return None


def run_campaign(runs: int, base_seed: int = 0,
                 progress=None) -> FuzzReport:
    """Run ``runs`` scenarios with seeds ``base_seed .. base_seed+runs-1``."""
    report = FuzzReport()
    for i in range(runs):
        case = generate_case(base_seed + i)
        report.runs += 1
        report.crash_injections += len(case.crashes)
        problem = run_case(case)
        if problem is not None:
            report.failures.append(FuzzFailure(case=case, problem=problem))
        if progress is not None:
            progress(i + 1, runs, problem)
    return report
