"""Message sequence charts from protocol-exact runs (paper Figs. 5–6).

The paper illustrates its protocol with two hand-drawn message sequence
charts: the three-node transfer without errors (Fig. 5) and the same
transfer with a mid-pipeline failure and recovery (Fig. 6).  Because
:mod:`repro.protosim` executes the real protocol, those charts can be
*generated* from actual runs instead of drawn — and they stay correct
when the protocol changes.

Consecutive DATA frames between the same pair collapse into one
annotated arrow (``DATA ×31``), as the paper's ellipses do.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.messages import Data

#: A raw trace entry: (time, src, dst, message, payload_len).
TraceEvent = Tuple[float, str, str, object, int]


def _label(msg) -> str:
    name = type(msg).__name__.upper()
    if name == "GET":
        return f"GET({msg.offset})"
    if name == "PGET":
        return f"PGET({msg.offset},{msg.until})"
    if name == "FORGET":
        return f"FORGET({msg.min_offset})"
    if name == "END":
        return f"END({msg.total})"
    if name == "DATA":
        return f"DATA({msg.offset})"
    if name == "REPORT":
        return f"REPORT({msg.size})"
    return name


def collapse_data_runs(events: Sequence[TraceEvent]) -> List[Tuple[float, str, str, str]]:
    """Reduce the trace to labelled arrows, collapsing DATA bursts."""
    out: List[Tuple[float, str, str, str]] = []
    run: Optional[Tuple[float, str, str, int]] = None  # (t0, src, dst, count)

    def flush() -> None:
        nonlocal run
        if run is not None:
            t0, src, dst, count = run
            label = "DATA" if count == 1 else f"DATA x{count}"
            out.append((t0, src, dst, label))
            run = None

    for t, src, dst, msg, _plen in events:
        if isinstance(msg, Data):
            if run is not None and (src, dst) == run[1:3]:
                run = (run[0], src, dst, run[3] + 1)
            else:
                flush()
                run = (t, src, dst, 1)
        else:
            flush()
            out.append((t, src, dst, _label(msg)))
    flush()
    return out


def render_msc(
    events: Sequence[TraceEvent],
    nodes: Sequence[str],
    *,
    annotations: Sequence[Tuple[float, str]] = (),
    col_width: int = 16,
) -> str:
    """Render an ASCII message sequence chart.

    ``nodes`` gives the column order (left to right); ``annotations``
    are ``(time, text)`` side notes (e.g. "n2 KILLED"), merged into the
    timeline.
    """
    arrows = collapse_data_runs(events)
    merged: List[Tuple[float, object]] = [(t, a) for t, *a0 in []]  # typing aid
    merged = [(t, ("arrow", src, dst, label)) for t, src, dst, label in arrows]
    merged += [(t, ("note", text)) for t, text in annotations]
    merged.sort(key=lambda item: item[0])

    col = {name: i for i, name in enumerate(nodes)}
    width = col_width * (len(nodes) - 1) + 1

    def lifelines() -> List[str]:
        return [" " if (i % col_width) else "|" for i in range(width)]

    header = "".join(f"{name:<{col_width}}" for name in nodes).rstrip()
    lines = [header]
    for t, item in merged:
        row = lifelines()
        if item[0] == "note":
            text = f"  *** {item[1]} ***"
            lines.append(f"{'':{width}}{text}  [t={t:.3f}s]".rstrip())
            continue
        _kind, src, dst, label = item
        if src not in col or dst not in col:
            continue
        a, b = col[src] * col_width, col[dst] * col_width
        lo, hi = (a, b) if a < b else (b, a)
        for i in range(lo + 1, hi):
            row[i] = "-"
        row[hi if a < b else lo] = ">" if a < b else "<"
        # Place the label in the middle of the arrow.
        mid = (lo + hi) // 2 - len(label) // 2
        for j, ch in enumerate(label):
            pos = mid + j
            if lo < pos < hi:
                row[pos] = ch
        lines.append("".join(row).rstrip() + f"   [t={t:.3f}s]")
    return "\n".join(lines)
