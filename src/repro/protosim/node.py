"""Protocol-exact Kascade nodes as DES processes.

A faithful port of :mod:`repro.runtime.node` onto simulated message
channels: the same per-node state machine
(:class:`~repro.core.node_state.NodeTransferState`), the same message
set, the same recovery handshakes — with blocking socket calls replaced
by ``yield from`` channel operations.  Where the runtime catches
``TimeoutError``/``ConnectionError``, this catches
:class:`~repro.simnet.channels.ChannelTimeout` /
:class:`~repro.simnet.channels.ChannelClosed`; everything else is the
protocol, unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.config import KascadeConfig
from ..core.messages import (
    Data,
    End,
    Forget,
    Get,
    Passed,
    PGet,
    Ping,
    Pong,
    Quit,
    Report,
)
from ..core.node_state import NodeTransferState, Phase
from ..core.pipeline import PipelinePlan
from ..core.plan import coerce_stripe_plan
from ..core.recovery import OfferKind, next_alive
from ..core.report import TransferReport
from ..core.sinks import Sink
from ..core.sources import Source
from ..core import tracing
from ..core.tracing import classify_detector
from ..simnet.channels import (
    _HEADER_BYTES, ChannelClosed, ChannelTimeout, SimNetHub,
)
from ..simnet.engine import Engine, Event

DATA_CONN = b"D"
PING_CONN = b"P"
PGET_CONN = b"G"
RING_CONN = b"R"


class CrashNow(Exception):
    """Raised by a crash gate inside a node process."""

    def __init__(self, mode: str) -> None:
        super().__init__(mode)
        self.mode = mode


class ProtoNode:
    """Shared state of one protocol-sim node."""

    def __init__(self, name: str, plan: PipelinePlan, hub: SimNetHub,
                 config: KascadeConfig, engine: Engine) -> None:
        self.name = name
        self.plan = coerce_stripe_plan(plan, owner=type(self).__name__)
        self.hub = hub
        self.config = config
        self.engine = engine
        self.listener = hub.register(name)
        self.data_inbox: Deque = deque()
        self._inbox_event: Optional[Event] = None
        self.procs: list = []
        self.done = False
        self.crashed: Optional[str] = None
        self.error: Optional[str] = None
        self.ok = False
        self.bytes_received = 0

    # -- acceptor ---------------------------------------------------------

    def acceptor(self):
        while True:
            try:
                kind, end = yield from self.listener.accept()
            except ChannelClosed:
                return
            if kind == PING_CONN:
                self.engine.spawn(self._answer_ping(end))
            elif kind == DATA_CONN:
                self.data_inbox.append(end)
                self._wake_inbox()
            elif kind in (PGET_CONN, RING_CONN) and hasattr(self, "serve_special"):
                self.engine.spawn(self.serve_special(kind, end))
            else:
                end.close()

    def _answer_ping(self, end):
        try:
            msg, _ = yield from end.recv(timeout=self.config.ping_timeout)
            if isinstance(msg, Ping):
                end.send(Pong(msg.nonce))
        except (ChannelClosed, ChannelTimeout):
            pass
        end.close()

    def _wake_inbox(self) -> None:
        ev, self._inbox_event = self._inbox_event, None
        if ev is not None and not ev.triggered:
            ev.succeed(None)

    def await_data_conn(self, timeout: float):
        """Sub-generator: next inbound data connection endpoint."""
        deadline = self.engine.now + timeout
        while True:
            if self.data_inbox:
                return self.data_inbox.popleft()
            remaining = deadline - self.engine.now
            if remaining <= 0:
                raise ChannelTimeout("no upstream connection arrived")
            ev = self.engine.event(name=f"inbox:{self.name}")
            self._inbox_event = ev
            token = self.engine.call_after(
                remaining,
                lambda e=ev: e.fail(ChannelTimeout("inbox wait timed out"))
                if not e.triggered else None,
            )
            try:
                yield ev
            except ChannelTimeout:
                raise
            finally:
                self._inbox_event = None
                self.engine._cancel_timeout(token)

    def poll_data_conn(self):
        return self.data_inbox.popleft() if self.data_inbox else None

    # -- liveness probe (the sender side's §III-D1 ping) -------------------

    def ping(self, target: str):
        """Sub-generator: True if ``target`` answers a liveness ping."""
        answered = yield from self._ping_attempt(target)
        self.engine.trace(tracing.PING, self.name, peer=target,
                          detail="answered" if answered else "unanswered")
        return answered

    def _ping_attempt(self, target: str):
        cfg = self.config
        try:
            probe = yield from self.hub.connect(self.name, target, PING_CONN)
        except ChannelClosed:
            return False
        try:
            probe.send(Ping(1))
            msg, _ = yield from probe.recv(timeout=cfg.ping_timeout)
            return isinstance(msg, Pong)
        except (ChannelClosed, ChannelTimeout):
            return False
        finally:
            probe.close()


class ProtoLink:
    """Generator-style port of the runtime's DownstreamLink."""

    def __init__(self, node: ProtoNode, state: NodeTransferState) -> None:
        self.node = node
        self.state = state
        self.end = None
        self.target: Optional[str] = None
        self.dead: set[str] = set()
        self.sent_offset = 0
        self.downstream_aborted = False

    # -- plumbing ---------------------------------------------------------

    def _mark_dead(self, node: str, reason: str) -> None:
        if node not in self.dead:
            self.dead.add(node)
            self.state.record_failure(node, reason)
            self.node.engine.trace(
                tracing.FAILOVER, self.node.name, peer=node,
                offset=self.sent_offset, detail=reason,
                detector=classify_detector(reason))

    def _drop(self) -> None:
        if self.end is not None:
            self.end.close()
        self.end = None
        self.target = None

    def _send_frame(self, msg, payload: bytes = b""):
        """Windowed send with stall detection + ping, like the runtime."""
        cfg = self.node.config
        while True:
            try:
                if not self.end.try_send(msg, payload):
                    yield from self.end.send_wait(msg, payload,
                                                  timeout=cfg.io_timeout)
                return
            except ChannelTimeout:
                self.node.engine.trace(tracing.STALL, self.node.name,
                                       peer=self.target,
                                       offset=self.sent_offset, detail="write")
                alive = yield from self.node.ping(self.target)
                if not alive:
                    raise ChannelClosed(
                        f"{self.target}: write stalled, ping unanswered"
                    )

    def _recv_gated(self, reason: str):
        cfg = self.node.config
        while True:
            try:
                item = self.end.recv_nowait()
                if item is not None:
                    return item
                return (yield from self.end.recv(timeout=cfg.io_timeout))
            except ChannelTimeout:
                self.node.engine.trace(tracing.STALL, self.node.name,
                                       peer=self.target,
                                       detail=f"read: {reason}")
                alive = yield from self.node.ping(self.target)
                if not alive:
                    raise ChannelClosed(
                        f"{self.target}: {reason}: silent, ping unanswered"
                    )

    # -- connection / handshake -------------------------------------------

    def _ensure_connected(self):
        cfg = self.node.config
        while not self.downstream_aborted:
            if self.end is not None:
                return True
            target = next_alive(self.node.plan, self.node.name, self.dead,
                                cfg.max_connect_attempts)
            if target is None:
                return False
            try:
                end = yield from self.node.hub.connect(
                    self.node.name, target, DATA_CONN)
            except ChannelClosed as exc:
                self._mark_dead(target, f"connect-failed: {exc}")
                continue
            try:
                msg, _ = yield from end.recv(
                    timeout=cfg.connect_timeout + cfg.io_timeout)
            except (ChannelTimeout, ChannelClosed) as exc:
                end.close()
                self._mark_dead(target, f"no-handshake: {exc}")
                continue
            if isinstance(msg, Quit):
                end.close()
                self.downstream_aborted = True
                return False
            if not isinstance(msg, Get):
                end.close()
                self._mark_dead(target, f"bad-handshake: {type(msg).__name__}")
                continue
            self.end, self.target = end, target
            self.node.engine.trace(tracing.CONNECT, self.node.name,
                                   peer=target, offset=msg.offset,
                                   detail="downstream")
            ok = yield from self._serve_handshake(msg.offset)
            if ok:
                return True
        return False

    def _serve_handshake(self, requested: int):
        try:
            offer = self.state.answer_get(requested)
        except ValueError as exc:
            self._mark_dead(self.target, f"bad-get: {exc}")
            self._drop()
            return False
        try:
            if offer.kind is OfferKind.SERVE_FROM_BUFFER:
                self.sent_offset = offer.resume_at
                for off, piece in self.state.buffer.iter_chunks_from(
                        offer.resume_at):
                    yield from self._send_frame(Data(off, len(piece)), piece)
                    self.sent_offset = off + len(piece)
                return True
            self.node.engine.trace(tracing.FORGET, self.node.name,
                                   peer=self.target,
                                   offset=offer.resume_at, detail="sent")
            yield from self._send_frame(Forget(offer.resume_at))
            msg, _ = yield from self._recv_gated("awaiting GET after FORGET")
            if isinstance(msg, Quit):
                self.downstream_aborted = True
                self._drop()
                return False
            if isinstance(msg, Get):
                return (yield from self._serve_handshake(msg.offset))
            raise ChannelClosed(f"expected GET/QUIT after FORGET, got {msg!r}")
        except (ChannelTimeout, ChannelClosed) as exc:
            self._mark_dead(self.target, f"handshake-lost: {exc}")
            self._drop()
            return False

    # -- public ops ---------------------------------------------------------

    def try_send_data(self, offset: int, payload: bytes) -> bool:
        """Synchronous fast path for :meth:`send_data`.

        Covers the steady state — connected, in order, window open —
        without allocating the sub-generator chain.  Returns False when
        the caller must fall back to ``yield from send_data(...)``
        (reconnect, replayed data, stalled window); a dead channel is
        marked/dropped here so the slow path starts at failover, exactly
        where the generator's own exception handler would land.
        """
        if self.end is None or self.downstream_aborted:
            return False
        n = len(payload)
        end_off = offset + n
        if self.sent_offset >= end_off:
            return True
        try:
            if self.end.try_send(Data(offset, n), payload):
                self.sent_offset = end_off
                return True
        except ChannelClosed as exc:
            self._mark_dead(self.target, str(exc))
            self._drop()
        return False

    def send_data(self, offset: int, payload: bytes):
        while True:
            if self.end is not None and not self.downstream_aborted:
                ok = True      # connected: skip the sub-generator
            else:
                ok = yield from self._ensure_connected()
            if not ok:
                return False
            if self.sent_offset >= offset + len(payload):
                return True
            try:
                yield from self._send_frame(Data(offset, len(payload)),
                                            payload)
                self.sent_offset = offset + len(payload)
                return True
            except ChannelClosed as exc:
                self._mark_dead(self.target, str(exc))
                self._drop()

    def finish(self, *, total: int, quit_first: bool):
        while True:
            ok = yield from self._ensure_connected()
            if not ok:
                return "tail"
            try:
                report_bytes = self.state.report.encode()
                yield from self._send_frame(Quit() if quit_first
                                            else End(total))
                yield from self._send_frame(Report(len(report_bytes)),
                                            report_bytes)
                msg, _ = yield from self._recv_gated("awaiting PASSED")
                if isinstance(msg, Passed):
                    return "passed"
                if isinstance(msg, Quit):
                    self.downstream_aborted = True
                    self._drop()
                    return "tail"
                raise ChannelClosed(f"expected PASSED, got {msg!r}")
            except (ChannelTimeout, ChannelClosed) as exc:
                self._mark_dead(self.target, str(exc))
                self._drop()

    def send_quit_best_effort(self) -> None:
        if self.end is not None:
            try:
                self.end.send(Quit())
            except ChannelClosed:
                pass
        self._drop()


class ProtoHead(ProtoNode):
    """The sending node."""

    def __init__(self, name, plan, hub, config, engine, source: Source):
        super().__init__(name, plan, hub, config, engine)
        self.source = source
        self.state = NodeTransferState(name, config,
                                       source_kind=source.kind)
        self.link = ProtoLink(self, self.state)
        self.final_report: Optional[TransferReport] = None
        self._ring_event = engine.event(name=f"ring:{name}")

    def serve_special(self, kind: bytes, end):
        if kind == PGET_CONN:
            yield from self._serve_pget(end)
        else:
            yield from self._handle_ring(end)

    def _serve_pget(self, end):
        cfg = self.config
        try:
            msg, _ = yield from end.recv(
                timeout=cfg.io_timeout + cfg.connect_timeout)
            if not isinstance(msg, PGet):
                raise ChannelClosed(f"expected PGET, got {msg!r}")
            self.engine.trace(tracing.PGET, self.name, offset=msg.offset,
                              detail=f"serve until={msg.until}")
            offer = self.state.answer_pget(msg.offset, msg.until)
            if offer.kind is OfferKind.FORGET:
                end.send(Forget(offer.resume_at))
                return
            pos = msg.offset
            while pos < msg.until:
                size = min(cfg.chunk_size, msg.until - pos)
                piece = self.source.read_range(pos, size)
                yield from end.send_wait(Data(pos, len(piece)), piece,
                                         timeout=cfg.report_timeout)
                pos += len(piece)
        except (ChannelTimeout, ChannelClosed):
            pass
        finally:
            end.close()

    def _handle_ring(self, end):
        cfg = self.config
        try:
            msg, payload = yield from end.recv(
                timeout=cfg.io_timeout + cfg.connect_timeout)
            if isinstance(msg, Report):
                self.final_report = TransferReport.decode(payload)
                self.engine.trace(tracing.REPORT, self.name,
                                  detail="ring-closure")
                end.send(Passed())
                if not self._ring_event.triggered:
                    self._ring_event.succeed(None)
        except (ChannelTimeout, ChannelClosed):
            pass
        finally:
            end.close()

    def run(self):
        cfg = self.config
        state = self.state
        while True:
            chunk = self.source.read_chunk(cfg.chunk_size)
            if not chunk:
                break
            off = state.offset
            state.on_data(off, chunk)
            if self.engine.tracer.enabled:
                self.engine.trace(tracing.CHUNK, self.name, offset=off,
                                  detail=f"read {len(chunk)}")
            if self.link.try_send_data(off, chunk):
                delivered = True
            else:
                delivered = yield from self.link.send_data(off, chunk)
            if not delivered:
                break
        total = state.offset
        state.on_end(total)
        state.attach_source_digest()
        outcome = yield from self.link.finish(total=total, quit_first=False)
        if outcome == "passed" and not self._ring_event.triggered:
            # Bounded wait for the tail's ring connection.
            token = self.engine.call_after(
                cfg.report_timeout,
                lambda: self._ring_event.succeed(None)
                if not self._ring_event.triggered else None,
            )
            yield self._ring_event
            self.engine._cancel_timeout(token)
        if self.final_report is None:
            self.final_report = state.report
        self.link._drop()       # process exit closes the data connection
        self.ok = outcome == "passed"
        self.bytes_received = total
        self.engine.trace(tracing.DONE, self.name, offset=total,
                          detail="ok" if self.ok else "failed")
        self.done = True


class ProtoReceiver(ProtoNode):
    """A receiving node: stores and forwards."""

    def __init__(self, name, plan, hub, config, engine, sink: Sink,
                 crash_gate=None):
        super().__init__(name, plan, hub, config, engine)
        self.sink = sink
        self.crash_gate = crash_gate
        self.state = NodeTransferState(name, config)
        self.link = ProtoLink(self, self.state)
        self.upstream = None

    # -- helpers ------------------------------------------------------------

    def _consume_chunk_fast(self, offset: int, payload: bytes) -> bool:
        """Store + forward one chunk without touching the engine.

        The synchronous twin of :meth:`_consume_chunk`: does everything
        except the blocking downstream send, and returns False when that
        slow path is needed (caller falls back to
        ``yield from _forward_slow(...)``).  In the pipelined steady
        state this is the entire per-chunk receiver path — no generator
        is allocated at all.
        """
        state = self.state
        state.on_data(offset, payload)
        engine = self.engine
        if engine.tracer.enabled:
            engine.trace(tracing.CHUNK, self.name, offset=offset,
                         detail=f"recv {len(payload)}")
        self.sink.write_chunk(payload)
        self.bytes_received = state.buffer.end_offset
        if not self.link.try_send_data(offset, payload):
            return False
        gate = self.crash_gate
        if gate is not None:
            mode = gate(state.offset)
            if mode is not None:
                raise CrashNow(mode)
        return True

    def _forward_slow(self, offset: int, payload: bytes):
        """The blocking tail of chunk consumption (send stalled/failover)."""
        yield from self.link.send_data(offset, payload)
        if self.crash_gate is not None:
            mode = self.crash_gate(self.state.offset)
            if mode is not None:
                raise CrashNow(mode)

    def _consume_chunk(self, offset: int, payload: bytes):
        if not self._consume_chunk_fast(offset, payload):
            yield from self._forward_slow(offset, payload)

    def _fetch_hole(self, until: int):
        cfg = self.config
        self.engine.trace(tracing.PGET, self.name, peer=self.plan.head,
                          offset=self.state.offset, detail=f"until={until}")
        try:
            end = yield from self.hub.connect(
                self.name, self.plan.head, PGET_CONN)
        except ChannelClosed:
            return False
        try:
            end.send(PGet(self.state.offset, until))
            while self.state.offset < until:
                msg, payload = yield from end.recv(timeout=cfg.report_timeout)
                if isinstance(msg, Forget):
                    return False
                if not isinstance(msg, Data):
                    return False
                yield from self._consume_chunk(msg.offset, payload)
            return True
        except (ChannelTimeout, ChannelClosed):
            return False
        finally:
            end.close()

    def _hard_abort(self, reason: str):
        self.engine.trace(tracing.QUIT, self.name,
                          offset=self.state.offset, detail=reason)
        if self.upstream is not None:
            try:
                self.upstream.send(Quit())
            except ChannelClosed:
                pass
        self.link.send_quit_best_effort()
        self.sink.abort()
        self.error = reason
        if self.upstream is not None:
            self.upstream.close()
        self.done = True

    # -- main loop ------------------------------------------------------------

    def run(self):
        cfg = self.config
        state = self.state
        engine = self.engine
        io_timeout = cfg.io_timeout
        upstream_report: Optional[bytes] = None
        last_progress = engine.now

        while True:
            if upstream_report is not None and state.phase is Phase.ENDED:
                break
            if self.upstream is None:
                try:
                    self.upstream = yield from self.await_data_conn(
                        cfg.report_timeout)
                except ChannelTimeout:
                    self._hard_abort("no upstream connection arrived")
                    return
                try:
                    self.upstream.send(Get(state.offset))
                    self.engine.trace(tracing.CONNECT, self.name,
                                      offset=state.offset, detail="upstream")
                except ChannelClosed:
                    self.upstream = None
                last_progress = self.engine.now
                continue
            try:
                # Inlined recv: poll, then yield the endpoint's armed
                # arrival event directly — no sub-generator per blocked
                # receive on the hottest loop in the simulator.  The
                # post-wake inbox pop is inlined too (recv_nowait stays
                # for the empty/closed cases, where it raises or loops).
                upstream = self.upstream
                inbox = upstream.inbox
                item = upstream.recv_nowait()
                while item is None:
                    arrival = upstream.recv_begin(io_timeout)
                    try:
                        yield arrival
                    finally:
                        upstream.recv_finish()
                    if inbox:
                        msg, payload = inbox.popleft()
                        upstream.inbox_bytes -= _HEADER_BYTES + len(payload)
                        if upstream._drain_waiter is not None:
                            upstream._wake_drainer()
                        break
                    item = upstream.recv_nowait()
                else:
                    msg, payload = item
            except ChannelTimeout:
                replacement = self.poll_data_conn()
                if replacement is not None:
                    self.upstream.close()
                    self.upstream = replacement
                    try:
                        self.upstream.send(Get(state.offset))
                        self.engine.trace(tracing.CONNECT, self.name,
                                          offset=state.offset,
                                          detail="upstream-replaced")
                    except ChannelClosed:
                        self.upstream = None
                    last_progress = self.engine.now
                elif self.engine.now - last_progress > cfg.report_timeout:
                    self._hard_abort("upstream silent beyond deadline")
                    return
                continue
            except ChannelClosed:
                self.upstream.close()
                self.upstream = None
                continue
            last_progress = engine.now

            if msg.__class__ is Data:
                # Fully inlined _consume_chunk_fast: store + forward one
                # chunk without a single avoidable call.  The guarded
                # ``buffer.append`` IS ``state.on_data`` for the in-order
                # streaming case; anything unusual (gap, ended stream,
                # digest mode) takes the full protocol-checked path.
                offset = msg.offset
                buffer = state.buffer
                if (offset == buffer.end_offset
                        and state.phase is Phase.STREAMING
                        and state._hasher is None):
                    buffer.append(payload)
                else:
                    state.on_data(offset, payload)
                if engine.tracer.enabled:
                    engine.trace(tracing.CHUNK, self.name, offset=offset,
                                 detail=f"recv {len(payload)}")
                self.sink.write_chunk(payload)
                self.bytes_received = buffer.end_offset
                if not self.link.try_send_data(offset, payload):
                    yield from self._forward_slow(offset, payload)
                else:
                    gate = self.crash_gate
                    if gate is not None:
                        mode = gate(buffer.end_offset)
                        if mode is not None:
                            raise CrashNow(mode)
            elif isinstance(msg, End):
                if state.phase is Phase.STREAMING:
                    state.on_end(msg.total)
                # duplicate END from a rerouted upstream: ignore
            elif isinstance(msg, Report):
                upstream_report = payload
                self.engine.trace(tracing.REPORT, self.name, detail="upstream")
            elif isinstance(msg, Forget):
                self.engine.trace(tracing.FORGET, self.name,
                                  offset=msg.min_offset, detail="received")
                recovered = yield from self._fetch_hole(msg.min_offset)
                if not recovered:
                    self._hard_abort("data lost beyond recovery (FORGET)")
                    return
                try:
                    self.upstream.send(Get(state.offset))
                except ChannelClosed:
                    self.upstream.close()
                    self.upstream = None
            elif isinstance(msg, Quit):
                self.engine.trace(tracing.QUIT, self.name,
                                  offset=state.offset, detail="received")
                state.on_quit()
                try:
                    rmsg, rpayload = yield from self.upstream.recv(
                        timeout=cfg.io_timeout)
                except (ChannelTimeout, ChannelClosed):
                    self._hard_abort("upstream quit without report")
                    return
                if isinstance(rmsg, Report):
                    upstream_report = rpayload
                    break
                self._hard_abort("upstream quit without report")
                return
            else:
                self._hard_abort(f"unexpected {msg!r} from upstream")
                return

        aborted = state.phase is Phase.ABORTED
        state.merge_upstream_report(upstream_report)
        digest_ok = state.verify_against_report()
        if digest_ok is False:
            state.record_failure(self.name, "digest-mismatch")
            self.error = "stored data failed digest verification"
        outcome = yield from self.link.finish(
            total=state.offset, quit_first=aborted)
        if outcome == "tail":
            yield from self._ring_deliver(state.report.encode())
        self.ok = not aborted and state.complete and digest_ok is not False
        # DONE before acknowledging upstream, mirroring the runtime: the
        # PASSED wave orders DONE events causally tail -> head.
        self.engine.trace(tracing.DONE, self.name, offset=state.offset,
                          detail="ok" if self.ok else "failed")
        if self.upstream is not None:
            try:
                self.upstream.send(Passed())
            except ChannelClosed:
                pass
            self.upstream.close()
        self.link._drop()       # process exit closes the data connection
        state.on_passed()
        if aborted:
            self.sink.abort()
        else:
            self.sink.finish()
        self.done = True

    def _ring_deliver(self, report_bytes: bytes):
        cfg = self.config
        try:
            end = yield from self.hub.connect(
                self.name, self.plan.head, RING_CONN)
        except ChannelClosed:
            return
        try:
            end.send(Report(len(report_bytes)), report_bytes)
            yield from end.recv(timeout=cfg.report_timeout)
        except (ChannelTimeout, ChannelClosed):
            pass
        finally:
            end.close()
