"""Real TCP implementation of the Kascade protocol, runnable on localhost.

Every pipeline node is a thread with its own listening socket; the wire
protocol of the paper (GET/PGET/FORGET/DATA/END/QUIT/REPORT/PASSED plus
PING/PONG liveness probes) runs byte-for-byte over real TCP connections.
"""

from .cluster import BroadcastResult, CrashPlan, LocalBroadcast, broadcast
from .node import HeadNode, NodeOutcome, ReceiverNode
from .registry import Registry
from .transport import Address, Listener, SocketStream, WriteStalled, connect

__all__ = [
    "BroadcastResult",
    "CrashPlan",
    "LocalBroadcast",
    "broadcast",
    "HeadNode",
    "ReceiverNode",
    "NodeOutcome",
    "Registry",
    "Address",
    "Listener",
    "SocketStream",
    "WriteStalled",
    "connect",
]
