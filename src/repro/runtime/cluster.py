"""Local broadcast orchestration: run a real Kascade pipeline on localhost.

Each pipeline node is a thread with its own listening TCP socket, so the
full wire protocol — framing, GET handshakes, ping probes, PGET recovery,
ring-closure report — is exercised byte-for-byte.  This is the runtime
behind the ``kascade`` CLI and the integration test suite; the paper's
*performance* experiments use :mod:`repro.simnet` instead (a laptop
loopback device says nothing about a 200-node fat tree).

Crash injection reproduces the Distem experiments' failure modes:

* ``"close"`` — process death: every socket is closed (peers see RST);
* ``"silent"`` — hang/partition: sockets stay open but the node stops
  reading, writing, and answering pings, so peers must detect the death
  via the timeout + ping mechanism of §III-D1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.pipeline import PipelinePlan
from ..core.report import TransferReport
from ..core.sinks import NullSink, Sink
from ..core.sources import Source
from .node import HeadNode, NodeOutcome, ReceiverNode
from .registry import Registry
from .transport import Listener


@dataclass(frozen=True)
class CrashPlan:
    """Kill ``node`` once it has received ``after_bytes`` of the stream."""

    node: str
    after_bytes: int
    mode: str = "close"  # "close" | "silent"

    def __post_init__(self) -> None:
        if self.mode not in ("close", "silent"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.after_bytes < 0:
            raise ValueError("after_bytes must be >= 0")


@dataclass
class BroadcastResult:
    """Outcome of one local broadcast."""

    ok: bool
    duration: float
    total_bytes: int
    report: TransferReport
    outcomes: Dict[str, NodeOutcome] = field(default_factory=dict)

    @property
    def completed_nodes(self) -> List[str]:
        return [n for n, o in self.outcomes.items() if o.ok]

    @property
    def failed_nodes(self) -> List[str]:
        return [n for n, o in self.outcomes.items() if not o.ok]

    @property
    def throughput(self) -> float:
        """Bytes per second, the paper's metric (size / transfer time)."""
        return self.total_bytes / self.duration if self.duration > 0 else 0.0


class LocalBroadcast:
    """One Kascade broadcast over localhost TCP.

    Parameters
    ----------
    source:
        What the head streams (file, bytes, synthetic pattern...).
    receivers:
        Receiver node names, e.g. ``["n2", "n3", "n4"]``.
    sink_factory:
        Called once per receiver name to build its output sink.
    config:
        Protocol tunables; tests shrink chunk size and timeouts.
    head:
        Name of the sending node.
    order:
        Node ordering strategy passed to :meth:`PipelinePlan.build`.
    crashes:
        Failure injection plans (see :class:`CrashPlan`).
    """

    def __init__(
        self,
        source: Source,
        receivers: Sequence[str],
        *,
        sink_factory: Optional[Callable[[str], Sink]] = None,
        config: KascadeConfig = DEFAULT_CONFIG,
        head: str = "n1",
        order: str = "given",
        crashes: Sequence[CrashPlan] = (),
    ) -> None:
        self.source = source
        self.config = config
        self.plan = PipelinePlan.build(head, receivers, order=order)
        self.sink_factory = sink_factory or (lambda name: NullSink())
        self.crashes = {c.node: c for c in crashes}
        unknown = set(self.crashes) - set(self.plan.receivers)
        if unknown:
            raise KascadeError(f"crash plans for unknown nodes: {sorted(unknown)}")
        self.sinks: Dict[str, Sink] = {}
        self.nodes: Dict[str, object] = {}

    def _crash_gate(self, node: str) -> Optional[Callable[[int], Optional[str]]]:
        plan = self.crashes.get(node)
        if plan is None:
            return None

        def gate(received: int, _plan: CrashPlan = plan) -> Optional[str]:
            return _plan.mode if received >= _plan.after_bytes else None

        return gate

    def run(self, timeout: float = 120.0) -> BroadcastResult:
        """Execute the broadcast and gather every node's outcome."""
        listeners = {name: Listener() for name in self.plan.chain}
        registry = Registry({n: l.address for n, l in listeners.items()})

        head = HeadNode(
            self.plan.head, self.plan, registry,
            listeners[self.plan.head], self.config, self.source,
        )
        receivers: List[ReceiverNode] = []
        for name in self.plan.receivers:
            sink = self.sink_factory(name)
            self.sinks[name] = sink
            receivers.append(
                ReceiverNode(
                    name, self.plan, registry, listeners[name], self.config,
                    sink, crash_gate=self._crash_gate(name),
                )
            )
        self.nodes = {head.name: head, **{r.name: r for r in receivers}}

        started = time.monotonic()
        for node in receivers:
            node.start()
        head.start()

        deadline = started + timeout
        head.join(timeout)
        for node in receivers:
            node.join(max(0.0, deadline - time.monotonic()) + 1.0)
        duration = time.monotonic() - started

        # Force shutdown of anything still alive (e.g. silent crash remains).
        for node in (head, *receivers):
            node.shutdown()

        outcomes = {n.name: n.outcome for n in (head, *receivers)}
        # NB: TransferReport is falsy when it has no failures — test
        # identity, not truth, or a clean run's report (and its source
        # digest) would be silently replaced.
        report = (
            head.final_report if head.final_report is not None
            else TransferReport()
        )
        intended = [r for r in receivers if r.name not in self.crashes]
        ok = (
            head.outcome.ok
            and all(r.outcome.ok for r in intended)
            and not head.thread.is_alive()
        )
        return BroadcastResult(
            ok=ok,
            duration=duration,
            total_bytes=head.outcome.bytes_received,
            report=report,
            outcomes=outcomes,
        )


def broadcast(
    source: Source,
    receivers: Sequence[str],
    **kwargs,
) -> BroadcastResult:
    """One-call convenience wrapper around :class:`LocalBroadcast`."""
    return LocalBroadcast(source, receivers, **kwargs).run()
