"""Local broadcast orchestration: run a real Kascade pipeline on localhost.

Each pipeline node is a thread with its own listening TCP socket, so the
full wire protocol — framing, GET handshakes, ping probes, PGET recovery,
ring-closure report — is exercised byte-for-byte.  This is the runtime
behind the ``kascade`` CLI and the integration test suite; the paper's
*performance* experiments use :mod:`repro.simnet` instead (a laptop
loopback device says nothing about a 200-node fat tree).

Crash injection reproduces the Distem experiments' failure modes:

* ``"close"`` — process death: every socket is closed (peers see RST);
* ``"silent"`` — hang/partition: sockets stay open but the node stops
  reading, writing, and answering pings, so peers must detect the death
  via the timeout + ping mechanism of §III-D1.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.perfstats import get_stats
from ..core.pipeline import PipelinePlan
from ..core.report import TransferReport
from ..core.sinks import NullSink, Sink
from ..core.sources import Source
from ..core.tracing import NULL_TRACER, TraceCollector
from .node import HeadNode, NodeOutcome, ReceiverNode
from .registry import Registry
from .transport import Listener


@dataclass(frozen=True)
class CrashPlan:
    """Kill ``node`` once it has received ``after_bytes`` of the stream."""

    node: str
    after_bytes: int
    mode: str = "close"  # "close" | "silent"

    def __post_init__(self) -> None:
        if self.mode not in ("close", "silent"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.after_bytes < 0:
            raise ValueError("after_bytes must be >= 0")


@dataclass
class BroadcastResult:
    """Outcome of one broadcast — the shape every backend returns.

    ``duration`` is wall-clock seconds for the local backend and
    simulated seconds for ``backend="simnet"``; ``trace`` carries the
    :class:`~repro.core.tracing.TraceCollector` when tracing was on, and
    ``perfstats`` the delta of the process-wide I/O counters across the
    run (empty for the simulator, which does no real I/O).
    """

    ok: bool
    duration: float
    total_bytes: int
    report: TransferReport
    outcomes: Dict[str, NodeOutcome] = field(default_factory=dict)
    trace: Optional[TraceCollector] = None
    perfstats: Dict[str, int] = field(default_factory=dict)
    backend: str = "local"
    #: ``backend="procs"`` only: the measured windowed-startup timings
    #: (a :class:`repro.deploy.LaunchReport`), ``None`` elsewhere.
    launch: Optional[object] = None

    @property
    def completed_nodes(self) -> List[str]:
        return [n for n, o in self.outcomes.items() if o.ok]

    @property
    def failed_nodes(self) -> List[str]:
        return [n for n, o in self.outcomes.items() if not o.ok]

    @property
    def throughput(self) -> float:
        """Bytes per second, the paper's metric (size / transfer time)."""
        return self.total_bytes / self.duration if self.duration > 0 else 0.0


class LocalBroadcast:
    """One Kascade broadcast over localhost TCP.

    Parameters
    ----------
    source:
        What the head streams (file, bytes, synthetic pattern...).
    receivers:
        Receiver node names, e.g. ``["n2", "n3", "n4"]``.
    sink_factory:
        Called once per receiver name to build its output sink.
    config:
        Protocol tunables; tests shrink chunk size and timeouts.
    head:
        Name of the sending node.
    order:
        Node ordering strategy passed to :meth:`PipelinePlan.build`.
    crashes:
        Failure injection plans (see :class:`CrashPlan`).
    tracer:
        A :class:`~repro.core.tracing.TraceCollector` every node emits
        structured events into, or the default no-op recorder.

    Prefer :func:`repro.run_broadcast` for new code — it fronts this
    class and the simulator behind one backend-selectable entry point.
    """

    def __init__(
        self,
        source: Source,
        receivers: Sequence[str],
        *,
        sink_factory: Optional[Callable[[str], Sink]] = None,
        config: KascadeConfig = DEFAULT_CONFIG,
        head: str = "n1",
        order: str = "given",
        crashes: Sequence[CrashPlan] = (),
        tracer=NULL_TRACER,
    ) -> None:
        self.source = source
        self.config = config
        self.tracer = tracer
        self.plan = PipelinePlan.build(head, receivers, order=order)
        self.sink_factory = sink_factory or (lambda name: NullSink())
        self.crashes = {c.node: c for c in crashes}
        unknown = set(self.crashes) - set(self.plan.receivers)
        if unknown:
            raise KascadeError(f"crash plans for unknown nodes: {sorted(unknown)}")
        self.sinks: Dict[str, Sink] = {}
        self.nodes: Dict[str, object] = {}

    def _crash_gate(self, node: str) -> Optional[Callable[[int], Optional[str]]]:
        plan = self.crashes.get(node)
        if plan is None:
            return None

        def gate(received: int, _plan: CrashPlan = plan) -> Optional[str]:
            return _plan.mode if received >= _plan.after_bytes else None

        return gate

    def run(self, timeout: float = 120.0) -> BroadcastResult:
        """Execute the broadcast and gather every node's outcome.

        ``config.data_plane`` selects the execution engine: ``"threaded"``
        runs each node as a thread pair (the conformance reference),
        ``"evloop"`` hosts every node on one shared reactor in the
        calling thread (:mod:`repro.runtime.evloop`).
        """
        evloop_plane = self.config.data_plane == "evloop"
        if evloop_plane:
            from .evloop import EvHeadNode, EvReceiverNode, run_nodes
            head_cls, recv_cls = EvHeadNode, EvReceiverNode
        else:
            head_cls, recv_cls = HeadNode, ReceiverNode

        listeners = {name: Listener() for name in self.plan.chain}
        registry = Registry({n: l.address for n, l in listeners.items()})

        head = head_cls(
            self.plan.head, self.plan, registry,
            listeners[self.plan.head], self.config, self.source,
            tracer=self.tracer,
        )
        receivers: List = []
        for name in self.plan.receivers:
            sink = self.sink_factory(name)
            self.sinks[name] = sink
            receivers.append(
                recv_cls(
                    name, self.plan, registry, listeners[name], self.config,
                    sink, crash_gate=self._crash_gate(name),
                    tracer=self.tracer,
                )
            )
        self.nodes = {head.name: head, **{r.name: r for r in receivers}}

        stats_before = get_stats().snapshot()
        started = time.monotonic()
        if evloop_plane:
            # The calling thread *is* the event loop; run_nodes returns
            # once every node finished (or the shared deadline expired).
            run_nodes([head, *receivers], duration=timeout)
            duration = time.monotonic() - started
            head_done = head.finished
        else:
            for node in receivers:
                node.start()
            head.start()

            # One deadline bounds the *whole* run: joins consume the shared
            # remaining budget (plus a single one-second grace for teardown),
            # so a wedged head cannot double the effective wall-clock bound.
            deadline = started + timeout
            head.join(max(0.0, deadline - time.monotonic()))
            grace = deadline + 1.0
            for node in receivers:
                node.join(max(0.0, grace - time.monotonic()))
            duration = time.monotonic() - started
            head_done = not head.thread.is_alive()

        # Force shutdown of anything still alive (e.g. silent crash remains).
        for node in (head, *receivers):
            node.shutdown()

        outcomes = {n.name: n.outcome for n in (head, *receivers)}
        # NB: TransferReport is falsy when it has no failures — test
        # identity, not truth, or a clean run's report (and its source
        # digest) would be silently replaced.
        report = (
            head.final_report if head.final_report is not None
            else TransferReport()
        )
        intended = [r for r in receivers if r.name not in self.crashes]
        ok = (
            head.outcome.ok
            and all(r.outcome.ok for r in intended)
            and head_done
        )
        stats_after = get_stats().snapshot()
        return BroadcastResult(
            ok=ok,
            duration=duration,
            total_bytes=head.outcome.bytes_received,
            report=report,
            outcomes=outcomes,
            trace=self.tracer if isinstance(self.tracer, TraceCollector) else None,
            perfstats={k: stats_after[k] - stats_before.get(k, 0)
                       for k in stats_after},
            backend="local",
        )


def broadcast(
    source: Source,
    receivers: Sequence[str],
    timeout: float = 120.0,
    **kwargs,
) -> BroadcastResult:
    """Deprecated: use :func:`repro.run_broadcast` instead.

    Kept as a thin shim over :class:`LocalBroadcast` for callers of the
    pre-facade API.
    """
    warnings.warn(
        "repro.runtime.broadcast() is deprecated; use repro.run_broadcast()",
        DeprecationWarning,
        stacklevel=2,
    )
    return LocalBroadcast(source, receivers, **kwargs).run(timeout=timeout)
