"""Local broadcast orchestration: run a real Kascade pipeline on localhost.

Each pipeline node is a thread with its own listening TCP socket, so the
full wire protocol — framing, GET handshakes, ping probes, PGET recovery,
ring-closure report — is exercised byte-for-byte.  This is the runtime
behind the ``kascade`` CLI and the integration test suite; the paper's
*performance* experiments use :mod:`repro.simnet` instead (a laptop
loopback device says nothing about a 200-node fat tree).

Crash injection reproduces the Distem experiments' failure modes:

* ``"close"`` — process death: every socket is closed (peers see RST);
* ``"silent"`` — hang/partition: sockets stay open but the node stops
  reading, writing, and answering pings, so peers must detect the death
  via the timeout + ping mechanism of §III-D1.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core import tracing
from ..core.config import DEFAULT_CONFIG, KascadeConfig
from ..core.errors import KascadeError
from ..core.perfstats import get_stats
from ..core.plan import ChainPlan
from ..core.recovery import SourceKind
from ..core.report import TransferReport
from ..core.sinks import NullSink, Sink
from ..core.sources import ResumeView, Source
from ..core.stripes import StripeMergeSink, StripeSource
from ..core.tracing import NULL_TRACER, TraceCollector
from .node import HeadNode, NodeOutcome, ReceiverNode
from .registry import Registry
from .transport import Listener


@dataclass(frozen=True)
class CrashPlan:
    """Kill ``node`` once it has received ``after_bytes`` of the stream."""

    node: str
    after_bytes: int
    mode: str = "close"  # "close" | "silent"

    def __post_init__(self) -> None:
        if self.mode not in ("close", "silent"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.after_bytes < 0:
            raise ValueError("after_bytes must be >= 0")


@dataclass
class BroadcastResult:
    """Outcome of one broadcast — the shape every backend returns.

    ``duration`` is wall-clock seconds for the local backend and
    simulated seconds for ``backend="simnet"``; ``trace`` carries the
    :class:`~repro.core.tracing.TraceCollector` when tracing was on, and
    ``perfstats`` the delta of the process-wide I/O counters across the
    run (empty for the simulator, which does no real I/O).
    """

    ok: bool
    duration: float
    total_bytes: int
    report: TransferReport
    outcomes: Dict[str, NodeOutcome] = field(default_factory=dict)
    trace: Optional[TraceCollector] = None
    perfstats: Dict[str, int] = field(default_factory=dict)
    backend: str = "local"
    #: ``backend="procs"`` only: the measured windowed-startup timings
    #: (a :class:`repro.deploy.LaunchReport`), ``None`` elsewhere.
    launch: Optional[object] = None
    #: The schedule the broadcast executed: which chain carried each
    #: stripe (a :class:`~repro.core.plan.ChainPlan`).
    plan: Optional[ChainPlan] = None

    @property
    def completed_nodes(self) -> List[str]:
        return [n for n, o in self.outcomes.items() if o.ok]

    @property
    def failed_nodes(self) -> List[str]:
        return [n for n, o in self.outcomes.items() if not o.ok]

    @property
    def throughput(self) -> float:
        """Bytes per second, the paper's metric (size / transfer time)."""
        return self.total_bytes / self.duration if self.duration > 0 else 0.0


class LocalBroadcast:
    """One Kascade broadcast over localhost TCP.

    Parameters
    ----------
    source:
        What the head streams (file, bytes, synthetic pattern...).
    receivers:
        Receiver node names, e.g. ``["n2", "n3", "n4"]``.
    sink_factory:
        Called once per receiver name to build its output sink.
    config:
        Protocol tunables; tests shrink chunk size and timeouts.
    head:
        Name of the sending node.
    order:
        Node ordering strategy passed to :meth:`ChainPlan.build`.
    crashes:
        Failure injection plans (see :class:`CrashPlan`).  With
        ``stripes > 1`` a crash is *host*-level: the threshold counts
        the host's bytes across every stripe and firing kills all of
        the host's chain instances, as a real process death would.
    plan:
        Optional pre-built :class:`~repro.core.plan.ChainPlan`.  When
        given it is the schedule (its head and per-stripe orders win);
        its receiver set must match ``receivers``.  Otherwise a plan is
        built from ``head``/``order``/``config.stripes``.
    tracer:
        A :class:`~repro.core.tracing.TraceCollector` every node emits
        structured events into, or the default no-op recorder.  On a
        striped run event node names carry an ``@s<j>`` stripe suffix.

    Prefer :func:`repro.run_broadcast` for new code — it fronts this
    class and the simulator behind one backend-selectable entry point.
    """

    def __init__(
        self,
        source: Source,
        receivers: Sequence[str],
        *,
        sink_factory: Optional[Callable[[str], Sink]] = None,
        config: KascadeConfig = DEFAULT_CONFIG,
        head: str = "n1",
        order: str = "given",
        crashes: Sequence[CrashPlan] = (),
        plan: Optional[ChainPlan] = None,
        tracer=NULL_TRACER,
        allow_head_chaos: bool = False,
    ) -> None:
        self.source = source
        self.config = config
        self.tracer = tracer
        if plan is not None:
            if set(plan.receivers) != set(receivers):
                raise KascadeError(
                    "chain plan covers different receivers than requested: "
                    f"{sorted(plan.receivers)} vs {sorted(receivers)}"
                )
            if config.stripes not in (1, plan.stripe_count):
                raise KascadeError(
                    f"config.stripes={config.stripes} conflicts with a "
                    f"{plan.stripe_count}-stripe plan"
                )
            self.chain_plan = plan
        else:
            self.chain_plan = ChainPlan.build(
                head, receivers, stripes=config.stripes, order=order
            )
        self.stripes = self.chain_plan.stripe_count
        #: Canonical (stripe-0) order, kept for single-chain callers.
        self.plan = self.chain_plan.stripe(0)
        self.sink_factory = sink_factory or (lambda name: NullSink())
        self.crashes = {c.node: c for c in crashes}
        #: Injected head death + in-process promotion (the thread-level
        #: twin of the procs backend's quorum-backed head failover).
        self._head_crash: Optional[CrashPlan] = None
        if self.plan.head in self.crashes:
            if not allow_head_chaos:
                raise KascadeError(
                    f"crash plan targets the head {self.plan.head!r}: "
                    "killing the head interrupts the stream for every "
                    "receiver; opt in with allow_head_chaos=True to "
                    "promote the most-complete survivor instead"
                )
            if self.stripes != 1:
                raise KascadeError(
                    "head failover currently requires a 1-stripe plan: "
                    "per-stripe watermark re-rooting of a striped merge "
                    "is not supported"
                )
            if config.data_plane == "evloop":
                raise KascadeError(
                    "head failover is not survivable on "
                    "data_plane='evloop': the reactor cannot detach its "
                    "nodes mid-run; use data_plane='threaded'"
                )
            if source.kind is not SourceKind.SEEKABLE_FILE:
                raise KascadeError(
                    "head failover needs a seekable source: the promoted "
                    "head must serve PGET below the election watermark "
                    "by random access"
                )
            self._head_crash = self.crashes.pop(self.plan.head)
        unknown = set(self.crashes) - set(self.plan.receivers)
        if unknown:
            raise KascadeError(f"crash plans for unknown nodes: {sorted(unknown)}")
        self.sinks: Dict[str, Sink] = {}
        self.nodes: Dict[str, object] = {}
        #: The chain the run actually finished on (rerooted after a head
        #: failover); also returned as ``result.plan``.
        self.effective_plan: Optional[ChainPlan] = None

    def _crash_gate(self, node: str) -> Optional[Callable[[int], Optional[str]]]:
        plan = self.crashes.get(node)
        if plan is None:
            return None

        def gate(received: int, _plan: CrashPlan = plan) -> Optional[str]:
            return _plan.mode if received >= _plan.after_bytes else None

        return gate

    def run(self, timeout: float = 120.0) -> BroadcastResult:
        """Execute the broadcast and gather every node's outcome.

        ``config.data_plane`` selects the execution engine: ``"threaded"``
        runs each node as a thread pair (the conformance reference),
        ``"evloop"`` hosts every node on one shared reactor in the
        calling thread (:mod:`repro.runtime.evloop`).
        """
        evloop_plane = self.config.data_plane == "evloop"
        if evloop_plane:
            from .evloop import EvHeadNode, EvReceiverNode, run_nodes
            head_cls, recv_cls = EvHeadNode, EvReceiverNode
        else:
            head_cls, recv_cls = HeadNode, ReceiverNode

        if self.stripes > 1:
            return self._run_striped(timeout, head_cls, recv_cls)

        listeners = {name: Listener() for name in self.plan.chain}
        registry = Registry({n: l.address for n, l in listeners.items()})

        head = head_cls(
            self.plan.head, self.plan, registry,
            listeners[self.plan.head], self.config, self.source,
            tracer=self.tracer,
        )
        receivers: List = []
        for name in self.plan.receivers:
            sink = self.sink_factory(name)
            self.sinks[name] = sink
            receivers.append(
                recv_cls(
                    name, self.plan, registry, listeners[name], self.config,
                    sink, crash_gate=self._crash_gate(name),
                    tracer=self.tracer,
                )
            )
        self.nodes = {head.name: head, **{r.name: r for r in receivers}}

        stats_before = get_stats().snapshot()
        started = time.monotonic()
        if self._head_crash is not None:
            return self._run_rerooted(head, receivers, started,
                                      stats_before, timeout)
        if evloop_plane:
            # The calling thread *is* the event loop; run_nodes returns
            # once every node finished (or the shared deadline expired).
            run_nodes([head, *receivers], duration=timeout)
            duration = time.monotonic() - started
            head_done = head.finished
        else:
            for node in receivers:
                node.start()
            head.start()

            # One deadline bounds the *whole* run: joins consume the shared
            # remaining budget (plus a single one-second grace for teardown),
            # so a wedged head cannot double the effective wall-clock bound.
            deadline = started + timeout
            head.join(max(0.0, deadline - time.monotonic()))
            grace = deadline + 1.0
            for node in receivers:
                node.join(max(0.0, grace - time.monotonic()))
            duration = time.monotonic() - started
            head_done = not head.thread.is_alive()

        # Force shutdown of anything still alive (e.g. silent crash remains).
        for node in (head, *receivers):
            node.shutdown()

        outcomes = {n.name: n.outcome for n in (head, *receivers)}
        # NB: TransferReport is falsy when it has no failures — test
        # identity, not truth, or a clean run's report (and its source
        # digest) would be silently replaced.
        report = (
            head.final_report if head.final_report is not None
            else TransferReport()
        )
        intended = [r for r in receivers if r.name not in self.crashes]
        ok = (
            head.outcome.ok
            and all(r.outcome.ok for r in intended)
            and head_done
        )
        stats_after = get_stats().snapshot()
        return BroadcastResult(
            ok=ok,
            duration=duration,
            total_bytes=head.outcome.bytes_received,
            report=report,
            outcomes=outcomes,
            trace=self.tracer if isinstance(self.tracer, TraceCollector) else None,
            perfstats={k: stats_after[k] - stats_before.get(k, 0)
                       for k in stats_after},
            backend="local",
            plan=self.chain_plan,
        )

    # ------------------------------------------------------------------
    # Head failover (an injected head death + in-process promotion)
    # ------------------------------------------------------------------

    def _run_rerooted(self, head, receivers, started, stats_before,
                      timeout) -> BroadcastResult:
        """Threaded run that survives the planned head death.

        The in-process twin of the procs backend's quorum failover,
        with the coordinator role played by this thread: a trigger
        fires the head's crash once any receiver's progress crosses the
        threshold, the most-complete survivor is promoted via
        :meth:`ChainPlan.reroot`, and the others resume from their ring
        offsets against the promoted head (which serves PGET below the
        election watermark straight from the source).
        """
        crash = self._head_crash
        old_head = head

        def gate(sent: int) -> Optional[str]:
            return crash.mode if sent >= crash.after_bytes else None

        # The gate runs on the head's own streaming thread (like the
        # receiver-side crash gates): a cross-thread kill would race the
        # send loop, which treats a failing socket as a *downstream*
        # death and routes around it instead of dying.
        head.crash_gate = gate

        for node in receivers:
            node.start()
        head.start()

        deadline = started + timeout
        promotion = None
        current = list(receivers)
        while time.monotonic() < deadline and head.thread.is_alive():
            time.sleep(0.05)
        if old_head.outcome.crashed:
            self.tracer.emit(
                tracing.FAILOVER, "coordinator", peer=old_head.name,
                detail=f"injected head crash ({crash.mode})",
                detector=(tracing.DETECTOR_ERROR if crash.mode == "close"
                          else tracing.DETECTOR_PING),
            )
            promotion = self._promote_survivor(old_head, receivers)
            if promotion is not None:
                head, current = promotion["head"], promotion["receivers"]
                self.nodes.update({n.name: n for n in (head, *current)})
                while time.monotonic() < deadline \
                        and head.thread.is_alive():
                    time.sleep(0.05)
        grace = deadline + 1.0
        for node in current:
            node.join(max(0.0, grace - time.monotonic()))
        duration = time.monotonic() - started
        head_done = not head.thread.is_alive()
        for node in {id(n): n for n in
                     (old_head, head, *receivers, *current)}.values():
            node.shutdown()

        if promotion is not None and head.outcome.ok:
            # The promoted node streamed [watermark, size) to the chain
            # but its *own* sink ends at its receiver-phase prefix —
            # complete it straight from the source, as the procs agent
            # does, so the promoted head holds the full payload too.
            sink = promotion["sink"]
            pos = promotion["prefix"]
            size = self.source.size
            while pos < size:
                piece = self.source.read_range(
                    pos, min(self.config.chunk_size, size - pos))
                sink.write_chunk(piece)
                pos += len(piece)
            sink.finish()

        outcomes = {old_head.name: old_head.outcome}
        latest = {n.name: n for n in receivers}
        latest.update({n.name: n for n in current})
        if promotion is not None:
            latest[head.name] = head
        outcomes.update({name: n.outcome for name, n in latest.items()})

        report = (head.final_report if head.final_report is not None
                  else TransferReport())
        # The head's death was planned, so — as everywhere else — it is
        # excused; every intended receiver (including the promoted one)
        # must have completed.
        intended = [r for r in self.plan.receivers if r not in self.crashes]
        ok = (head.outcome.ok
              and all(outcomes[name].ok for name in intended)
              and head_done)
        stats_after = get_stats().snapshot()
        effective = (promotion["chain"] if promotion is not None
                     else self.chain_plan)
        self.effective_plan = effective
        return BroadcastResult(
            ok=ok,
            duration=duration,
            total_bytes=head.outcome.bytes_received,
            report=report,
            outcomes=outcomes,
            trace=(self.tracer if isinstance(self.tracer, TraceCollector)
                   else None),
            perfstats={k: stats_after[k] - stats_before.get(k, 0)
                       for k in stats_after},
            backend="local",
            plan=effective,
        )

    def _promote_survivor(self, old_head, receivers) -> Optional[dict]:
        """Detach the survivors, elect the most complete, resume the rest.

        Returns ``None`` when no receiver survives to be promoted (the
        run then fails through the normal path); otherwise a dict with
        the promoted :class:`HeadNode`, the resumed receivers (already
        started), the re-rooted plan, and the promoted node's retained
        sink + prefix so the caller can complete its own copy.
        """
        survivors, finished, lost = [], [], []
        for node in receivers:
            if node.thread.is_alive():
                node.begin_failover()
                survivors.append(node)
            elif node.outcome.ok:
                finished.append(node)
            else:
                lost.append(node)
        for node in survivors:
            node.join(5.0)
        ready = [n for n in survivors if not n.thread.is_alive()]
        if not ready:
            return None

        # Most-complete survivor wins; offsets are monotonically
        # non-increasing down the chain, so ties resolve to the node
        # closest to the old head (max() keeps the first maximum).
        elect = max(ready, key=lambda n: n.state.offset)
        resume_offset = elect.state.offset
        self.tracer.emit(
            tracing.ELECTION, "coordinator", peer=elect.name,
            offset=resume_offset,
            detail=(f"promoted {elect.name} to replace {old_head.name} "
                    f"at watermark {resume_offset}"),
        )
        drop = [n.name for n in (*finished, *lost)]
        drop += [n.name for n in survivors if n not in ready]
        new_chain = self.chain_plan.reroot(elect.name, dead=drop)
        new_plan = new_chain.stripe(0)

        listeners = {name: Listener() for name in new_plan.chain}
        registry = Registry({n: l.address for n, l in listeners.items()})
        elect_sink = elect.detach_sink()
        # The promoted head only streams [watermark, size), so its digest
        # would cover a suffix — integrity mode cannot span a re-root
        # (the procs backend disables it on resume too).
        resume_config = dataclasses.replace(self.config, verify_digest=False)
        new_head = HeadNode(
            elect.name, new_plan, registry, listeners[elect.name],
            resume_config, ResumeView(self.source, resume_offset),
            tracer=self.tracer, resume_offset=resume_offset,
        )
        resumed = []
        for node in ready:
            if node is elect:
                continue
            resumed.append(ReceiverNode(
                node.name, new_plan, registry, listeners[node.name],
                resume_config, node.detach_sink(),
                crash_gate=self._crash_gate(node.name),
                tracer=self.tracer, resume_offset=node.state.offset,
            ))
        for node in resumed:
            node.start()
        new_head.start()
        return {
            "head": new_head,
            "receivers": resumed,
            "chain": new_chain,
            "sink": elect_sink,
            "prefix": resume_offset,
        }

    # ------------------------------------------------------------------
    # Striped execution (config.stripes > 1)
    # ------------------------------------------------------------------

    def _run_striped(self, timeout, head_cls, recv_cls) -> BroadcastResult:
        """Run ``k`` chain sub-broadcasts and merge per-host results.

        Each stripe is a complete, independent broadcast — its own
        listeners, registry, ring buffers, and recovery — over a view
        of the shared source (:class:`StripeSource`).  Hosts that write
        real data get a :class:`StripeMergeSink` reassembling global
        chunk order; null sinks stay per-instance so the evloop plane's
        splice relay engages with one pipe per stripe.
        """
        k = self.stripes
        evloop_plane = self.config.data_plane == "evloop"
        if evloop_plane:
            from .evloop import run_nodes

        sources = [
            StripeSource(self.source, j, k, self.config.chunk_size)
            for j in range(k)
        ]
        instance_sinks, mergers = self._striped_sinks(k)
        gates = {
            name: _HostCrashGate(crash, k)
            for name, crash in self.crashes.items()
        }
        tracers = [_StripeTracer(self.tracer, j) for j in range(k)]

        heads: List = []
        stripe_receivers: List[List] = [[] for _ in range(k)]
        for j in range(k):
            plan_j = self.chain_plan.stripe(j)
            listeners = {name: Listener() for name in plan_j.chain}
            registry = Registry({n: l.address for n, l in listeners.items()})
            heads.append(head_cls(
                plan_j.head, plan_j, registry, listeners[plan_j.head],
                self.config, sources[j], tracer=tracers[j],
            ))
            for name in plan_j.receivers:
                gate = gates.get(name)
                stripe_receivers[j].append(recv_cls(
                    name, plan_j, registry, listeners[name], self.config,
                    instance_sinks[name][j],
                    crash_gate=gate.for_stripe(j) if gate else None,
                    tracer=tracers[j],
                ))
        all_nodes = [n for j in range(k)
                     for n in (heads[j], *stripe_receivers[j])]
        self.nodes = {f"{n.name}@s{j}": n
                      for j in range(k)
                      for n in (heads[j], *stripe_receivers[j])}

        stats_before = get_stats().snapshot()
        started = time.monotonic()
        if evloop_plane:
            run_nodes(all_nodes, duration=timeout)
            duration = time.monotonic() - started
            head_done = all(h.finished for h in heads)
        else:
            for receivers in stripe_receivers:
                for node in receivers:
                    node.start()
            for head in heads:
                head.start()
            deadline = started + timeout
            for head in heads:
                head.join(max(0.0, deadline - time.monotonic()))
            grace = deadline + 1.0
            for receivers in stripe_receivers:
                for node in receivers:
                    node.join(max(0.0, grace - time.monotonic()))
            duration = time.monotonic() - started
            head_done = not any(h.thread.is_alive() for h in heads)

        for node in all_nodes:
            node.shutdown()
        for source in sources:
            source.close()

        by_host: Dict[str, List] = {}
        for j in range(k):
            for node in (heads[j], *stripe_receivers[j]):
                by_host.setdefault(node.name, []).append(node)
        outcomes = {name: _merge_outcomes(name, nodes)
                    for name, nodes in by_host.items()}

        # One report per stripe head; pool the failure records.  A
        # merged stream has no single source digest (each stripe ships
        # its own), so the pooled report carries none.
        report = TransferReport()
        for head in heads:
            if head.final_report is not None:
                report.extend(head.final_report.failures)

        intended = [name for name in self.plan.receivers
                    if name not in self.crashes]
        ok = (
            outcomes[self.plan.head].ok
            and all(outcomes[name].ok for name in intended)
            and head_done
        )
        stats_after = get_stats().snapshot()
        return BroadcastResult(
            ok=ok,
            duration=duration,
            total_bytes=sum(h.outcome.bytes_received for h in heads),
            report=report,
            outcomes=outcomes,
            trace=self.tracer if isinstance(self.tracer, TraceCollector) else None,
            perfstats={k_: stats_after[k_] - stats_before.get(k_, 0)
                       for k_ in stats_after},
            backend="local",
            plan=self.chain_plan,
        )

    def _striped_sinks(self, k: int):
        """Per-host instance sinks: merge ports, or per-stripe nulls.

        Returns ``(instance_sinks, mergers)`` where ``instance_sinks``
        maps host name to its ``k`` per-stripe sinks.  A host whose
        factory sink is a bare :class:`NullSink` skips the merger —
        there is nothing to reassemble, and per-instance null sinks
        keep each stripe's relay eligible for the kernel splice path.
        """
        instance_sinks: Dict[str, List[Sink]] = {}
        mergers: Dict[str, StripeMergeSink] = {}
        for name in self.plan.receivers:
            sink = self.sink_factory(name)
            self.sinks[name] = sink
            if type(sink) is NullSink:
                instance_sinks[name] = [NullSink() for _ in range(k)]
            else:
                merger = StripeMergeSink(sink, k, self.config.chunk_size)
                mergers[name] = merger
                instance_sinks[name] = [merger.port(j) for j in range(k)]
        return instance_sinks, mergers


class _HostCrashGate:
    """One host's crash plan, shared by its ``k`` stripe instances.

    The threshold counts the host's *aggregate* received bytes; once it
    fires, every instance's next gate check reports the crash mode, so
    all of the host's chains die — the closest thread-level analogue of
    one OS process taking all of its stripes down with it.
    """

    def __init__(self, crash: CrashPlan, stripes: int) -> None:
        self._crash = crash
        self._seen = [0] * stripes
        self._fired = False
        self._lock = threading.Lock()

    def for_stripe(self, stripe: int):
        def gate(received: int) -> Optional[str]:
            with self._lock:
                self._seen[stripe] = received
                if self._fired or sum(self._seen) >= self._crash.after_bytes:
                    self._fired = True
                    return self._crash.mode
            return None
        return gate


class _StripeTracer:
    """Tag trace events with the stripe their chain instance ran."""

    def __init__(self, inner, stripe: int) -> None:
        self._inner = inner
        self._suffix = f"@s{stripe}"
        self.enabled = inner.enabled

    def emit(self, type_: str, node: str, **kwargs) -> None:
        peer = kwargs.get("peer")
        if peer is not None:
            kwargs["peer"] = peer + self._suffix
        self._inner.emit(type_, node + self._suffix, **kwargs)


def _merge_outcomes(name: str, nodes: Sequence) -> NodeOutcome:
    """Fold one host's per-stripe instance outcomes into one."""
    merged = NodeOutcome(name=name)
    merged.ok = all(n.outcome.ok for n in nodes)
    merged.bytes_received = sum(n.outcome.bytes_received for n in nodes)
    merged.crashed = any(n.outcome.crashed for n in nodes)
    merged.error = next(
        (n.outcome.error for n in nodes if n.outcome.error), None
    )
    for n in nodes:
        merged.failures_detected.extend(n.outcome.failures_detected)
    return merged


def broadcast(
    source: Source,
    receivers: Sequence[str],
    timeout: float = 120.0,
    **kwargs,
) -> BroadcastResult:
    """Deprecated: use :func:`repro.run_broadcast` instead.

    Kept as a thin shim over :class:`LocalBroadcast` for callers of the
    pre-facade API.
    """
    warnings.warn(
        "repro.runtime.broadcast() is deprecated; use repro.run_broadcast()",
        DeprecationWarning,
        stacklevel=2,
    )
    return LocalBroadcast(source, receivers, **kwargs).run(timeout=timeout)
