"""Event-loop data plane: one reactor thread runs a node's entire I/O.

The threaded data plane (:mod:`repro.runtime.node`) spends two-plus OS
threads per node and parks them in blocking syscalls.  This module
provides the ``data_plane="evloop"`` alternative: a single-threaded,
``selectors``-based reactor drives a node's entire data plane —
non-blocking accept/connect/recv/send — reusing the same sans-io core
(framing, node state, ring buffer, recovery negotiation) so the two
planes are protocol-identical.  One reactor serves one node; a process
hosting many nodes runs one reactor thread each (see :func:`run_nodes`),
and a reactor can equally host several nodes on one thread
(``shared_reactor=True``) when density beats per-hop parallelism.

Tasks are generator coroutines.  A task performs its syscall *optimistically*
(non-blocking, straight away) and only when the kernel answers EAGAIN does
it yield a wait request to the reactor::

    ok = yield ("io", fileobj, mask, timeout)   # True=ready, False=timeout
    yield ("sleep", seconds)
    ok = yield ("flag", ev_flag, timeout)       # True=set, False=timeout

so in the common case (data available, socket writable) the selector is
never consulted — the reactor's overhead scales with *stalls*, not bytes.

Kernel-path relay (``os.splice``)
---------------------------------
A pure relay node — ``NullSink``, ``verify_digest`` off, Linux — moves DATA
payloads predecessor→successor through a pipe with ``os.splice``: the bytes
travel socket→pipe→socket entirely inside the kernel and never enter
Python.  Only the 17-byte DATA headers are read into userspace.  The tail
of a spliced chain discards payloads by splicing the pipe into
``/dev/null``.  The head's counterpart is ``os.sendfile`` for seekable
sources.  Consequences, all protocol-conformant:

* spliced bytes cannot be retained, so the ring buffer performs a
  *phantom advance* (:meth:`~repro.core.chunkstore.ChunkRingBuffer.note_advance`):
  the window moves but stays empty.  A replay request is answered FORGET
  and the requester recovers the hole from the head via PGET (§III-D2's
  degraded-but-correct route);
* a downstream death mid-chunk redirects the rest of the chunk into
  ``/dev/null`` (the replacement refetches everything below the live edge
  from the head anyway), keeping the upstream connection undisturbed;
* an upstream death mid-chunk poisons the partially-forwarded frame, so
  both connections are dropped and the pipe is reset; reconnection
  handshakes resynchronise at the last complete chunk.

Nodes that store or hash the stream use the userspace path — readiness-
driven ``recv_into`` + vectored ``sendmsg`` over the identical zero-copy
machinery the threaded plane uses — and therefore produce byte-identical
sink contents and digests.

Storage stays threaded: :class:`~repro.core.stages.SinkWriter` and
:class:`~repro.core.stages.ReadAheadSource` keep their background threads,
so a slow disk overlaps with the relay exactly as before.  Their
*enqueue* calls can briefly block the reactor when a queue is full; keep
``sink_writeback_depth > 0`` on evloop nodes so the bound is the queue
drain, not the disk.
"""

from __future__ import annotations

import errno
import heapq
import logging
import os
import selectors
import socket
import threading
import time
from collections import deque
from itertools import islice
from typing import Deque, Iterable, List, Optional, Set, Tuple

from ..core.buffers import BufferPool
from ..core.config import KascadeConfig
from ..core.errors import (
    FramingError,
    NodeFailedError,
    ProtocolError,
    SinkError,
    TransferAborted,
)
from ..core.framing import (
    FrameDecoder,
    Payload,
    _decode_fields,
    encode_header,
    header_size,
    payload_size,
)
from ..core.messages import (
    Data,
    End,
    Forget,
    Get,
    Message,
    Op,
    Passed,
    PGet,
    Ping,
    Pong,
    Quit,
    Report,
)
from ..core.node_state import NodeTransferState, Phase
from ..core.perfstats import PerfStats, get_stats
from ..core.pipeline import PipelinePlan
from ..core.plan import coerce_stripe_plan
from ..core.recovery import OfferKind, next_alive
from ..core.report import TransferReport
from ..core.sinks import NullSink, Sink
from ..core.sources import Source
from ..core.stages import ReadAheadSource, SinkWriter
from ..core import tracing
from ..core.tracing import NULL_TRACER, classify_detector
from .links import DownstreamLink  # noqa: F401  (re-export for parity tests)
from .node import CrashGate, InjectedCrash, NodeOutcome, _HEAD_FLUSH_BYTES
from .registry import Registry
from .transport import (
    Address,
    CONN_KIND_NAMES,
    DATA_CONN,
    HAS_SENDFILE,
    Listener,
    PGET_CONN,
    PING_CONN,
    RING_CONN,
    WriteStalled,
)

logger = logging.getLogger(__name__)

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE

#: Whether this platform supports the kernel-path pipe relay.
HAS_SPLICE = hasattr(os, "splice")

_SPLICE_FLAGS = (
    (os.SPLICE_F_MOVE | os.SPLICE_F_NONBLOCK) if HAS_SPLICE else 0
)
#: Per-splice byte cap (one syscall never asks for more than this).
_SPLICE_MAX = 1 << 20
#: Requested pipe capacity bound (F_SETPIPE_SZ is advisory anyway).
_PIPE_SZ_MAX = 1 << 20
#: How often the acceptor wakes to re-check its node's stop flag.
_ACCEPT_POLL = 0.2

_devnull_fd: Optional[int] = None


def _devnull() -> int:
    """Process-wide write-only ``/dev/null`` fd for discarding splices."""
    global _devnull_fd
    if _devnull_fd is None:
        _devnull_fd = os.open(os.devnull, os.O_WRONLY)
    return _devnull_fd


# ---------------------------------------------------------------------------
# Wait-request helpers (the coroutine side of the reactor protocol)
# ---------------------------------------------------------------------------

def _wait_io(fileobj, mask: int, timeout: Optional[float]):
    """Yield until ``fileobj`` is ready for ``mask``; True=ready."""
    return (yield ("io", fileobj, mask, timeout))


def _sleep(seconds: float):
    yield ("sleep", seconds)


def _wait_flag(flag: "EvFlag", timeout: Optional[float]):
    return (yield ("flag", flag, timeout))


class EvFlag:
    """Level-triggered event flag for reactor tasks (single-threaded).

    ``set()`` wakes every task currently waiting; the flag stays set until
    :meth:`clear`.  Safe to ``set()`` from a signal handler (it only
    appends to the reactor's ready queue).
    """

    __slots__ = ("_set", "_waiters")

    def __init__(self) -> None:
        self._set = False
        self._waiters: List[Tuple["_Task", int]] = []

    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        self._set = True
        waiters, self._waiters = self._waiters, []
        for task, seq in waiters:
            task.reactor._wake(task, seq, True)

    def clear(self) -> None:
        self._set = False


# ---------------------------------------------------------------------------
# Reactor
# ---------------------------------------------------------------------------

class _Task:
    """One generator coroutine scheduled by the reactor."""

    __slots__ = ("gen", "name", "reactor", "wake_seq", "wait_fileobj",
                 "finished")

    def __init__(self, gen, name: str, reactor: "Reactor") -> None:
        self.gen = gen
        self.name = name
        self.reactor = reactor
        self.wake_seq = 0       # bumps on every wake; stales old timers
        self.wait_fileobj = None
        self.finished = False


class Reactor:
    """Single-threaded scheduler: readiness + timers over one selector.

    One reactor can host any number of nodes (the ``local`` backend runs
    the whole pipeline on one) or a single node (the deploy agent).  The
    hot path is counter-instrumented: ``reactor_wakeups`` counts selector
    returns, ``evloop_stall_s`` accumulates time blocked awaiting I/O.
    """

    def __init__(self, *, stats: Optional[PerfStats] = None) -> None:
        self._sel = selectors.DefaultSelector()
        self._stats = stats if stats is not None else get_stats()
        self._ready: Deque[Tuple[_Task, object]] = deque()
        self._timers: List[Tuple[float, int, _Task, int, bool]] = []
        self._timer_seq = 0
        self._live = 0  # unfinished tasks

    # -- task management -------------------------------------------------

    def spawn(self, gen, name: str = "task") -> _Task:
        task = _Task(gen, name, self)
        self._live += 1
        self._ready.append((task, None))
        return task

    def _finish(self, task: _Task) -> None:
        if not task.finished:
            task.finished = True
            self._live -= 1
            self._cancel_io(task)

    def _cancel_io(self, task: _Task) -> None:
        if task.wait_fileobj is not None:
            try:
                self._sel.unregister(task.wait_fileobj)
            except (KeyError, ValueError, OSError):
                pass
            task.wait_fileobj = None

    @staticmethod
    def _entry_is_stale(key, fileobj) -> bool:
        """Whether a selector entry's fileobj no longer owns its fd.

        A closed socket answers ``fileno() == -1``; the kernel may have
        recycled the number for ``fileobj`` already.  Identity means a
        genuine double-register, never stale.
        """
        if key.fileobj is fileobj:
            return False
        try:
            return key.fileobj.fileno() != key.fd
        except (ValueError, OSError):
            return True

    def _wake(self, task: _Task, seq: int, value) -> None:
        """Deliver ``value`` to a waiting task, if this wake is still fresh."""
        if task.finished or task.wake_seq != seq:
            return
        task.wake_seq += 1
        self._cancel_io(task)
        self._ready.append((task, value))

    def _add_timer(self, deadline: float, task: _Task, value: bool) -> None:
        self._timer_seq += 1
        heapq.heappush(
            self._timers, (deadline, self._timer_seq, task, task.wake_seq, value)
        )

    # -- dispatch --------------------------------------------------------

    def _advance(self, task: _Task, value) -> None:
        """Run one task until it blocks (yields a wait) or finishes."""
        while True:
            try:
                req = task.gen.send(value)
            except StopIteration:
                self._finish(task)
                return
            except Exception:  # noqa: BLE001 - helper tasks must not kill the loop
                logger.exception("evloop task %s crashed", task.name)
                self._finish(task)
                return
            kind = req[0]
            if kind == "io":
                _, fileobj, mask, timeout = req
                try:
                    self._sel.register(fileobj, mask, task)
                except KeyError:
                    # The fd number is already registered.  If the owner's
                    # fileobj has been closed meanwhile (a crashed node's
                    # listener, say), the kernel recycled the number for
                    # *this* fileobj: evict the stale entry, wake its
                    # waiter (whose next syscall surfaces EBADF), retry.
                    key = self._sel.get_key(fileobj)
                    if not self._entry_is_stale(key, fileobj):
                        raise RuntimeError(
                            f"fd conflict: {task.name} and {key.data.name} "
                            f"both waiting on {fileobj!r}"
                        ) from None
                    self._sel.unregister(key.fileobj)
                    stale_task = key.data
                    stale_task.wait_fileobj = None
                    self._wake(stale_task, stale_task.wake_seq, True)
                    try:
                        self._sel.register(fileobj, mask, task)
                    except (KeyError, ValueError, OSError):
                        value = True
                        continue
                except (ValueError, OSError):
                    # Closed/invalid fd: report ready and let the caller's
                    # next syscall surface the real error.
                    value = True
                    continue
                task.wait_fileobj = fileobj
                if timeout is not None:
                    self._add_timer(time.monotonic() + timeout, task, False)
                return
            if kind == "sleep":
                self._add_timer(time.monotonic() + req[1], task, True)
                return
            if kind == "flag":
                _, flag, timeout = req
                if flag.is_set():
                    value = True
                    continue
                flag._waiters.append((task, task.wake_seq))
                if timeout is not None:
                    self._add_timer(time.monotonic() + timeout, task, False)
                return
            raise RuntimeError(f"unknown wait request {req!r} from {task.name}")

    def run(self, *, stop_when=None, deadline: Optional[float] = None) -> bool:
        """Dispatch until ``stop_when()`` (or no runnable task remains).

        ``deadline`` is an absolute ``time.monotonic()`` bound; returns
        True when the stop condition was met, False on deadline expiry or
        a wedged (task-less / event-less) state.
        """
        stats = self._stats
        while self._live > 0:
            if stop_when is not None and stop_when():
                return True
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                return False
            timers = self._timers
            while timers and timers[0][0] <= now:
                _, _, task, seq, value = heapq.heappop(timers)
                self._wake(task, seq, value)
            while self._ready:
                task, value = self._ready.popleft()
                if not task.finished:
                    self._advance(task, value)
                if stop_when is not None and stop_when():
                    return True
            if self._live == 0:
                break
            # Nothing runnable: block for readiness or the next timer.
            timeout: Optional[float] = None
            if timers:
                timeout = max(0.0, timers[0][0] - time.monotonic())
            if deadline is not None:
                slack = max(0.0, deadline - time.monotonic())
                timeout = slack if timeout is None else min(timeout, slack)
            if not self._sel.get_map() and timeout is None:
                logger.warning("evloop reactor wedged: %d tasks, no events",
                               self._live)
                return False
            t0 = time.monotonic()
            try:
                events = self._sel.select(timeout)
            except OSError:  # a registered fd was closed under us
                events = []
                self._reap_closed()
            stats.reactor_wakeups += 1
            stats.evloop_stall_s += time.monotonic() - t0
            for key, _mask in events:
                task = key.data
                self._wake(task, task.wake_seq, True)
        return stop_when() if stop_when is not None else True

    def _reap_closed(self) -> None:
        """Wake (with ready=True) every waiter whose fd went invalid."""
        for key in list(self._sel.get_map().values()):
            try:
                os.fstat(key.fd)
            except OSError:
                task = key.data
                self._wake(task, task.wake_seq, True)


# ---------------------------------------------------------------------------
# Non-blocking framed stream
# ---------------------------------------------------------------------------

#: Max buffers per sendmsg, mirroring transport._SENDMSG_BATCH.
_SENDMSG_BATCH = 64


class EvStream:
    """Non-blocking counterpart of :class:`~repro.runtime.transport.SocketStream`.

    Same wire behaviour, same zero-copy queueing discipline, same
    exceptions (``TimeoutError`` / :class:`WriteStalled` /
    ``ConnectionError``) — but every potentially-blocking operation is a
    generator that yields reactor wait requests instead of parking a
    thread.  Timeouts bound *silence*, not total duration: progress on
    the socket rearms them, exactly like the per-syscall ``settimeout``
    of the threaded plane.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        pool: Optional[BufferPool] = None,
        stats: Optional[PerfStats] = None,
    ) -> None:
        sock.setblocking(False)
        self._sock = sock
        self._stats = stats if stats is not None else get_stats()
        self._pool = pool if pool is not None else BufferPool(stats=self._stats)
        self._decoder = FrameDecoder(pool=self._pool, stats=self._stats)
        self._send_queue: Deque[memoryview] = deque()
        self._pending_bytes = 0
        self._closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets in tests
            pass

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def sock(self) -> socket.socket:
        return self._sock

    # -- receiving -------------------------------------------------------

    def recv_message(self, timeout: Optional[float]):
        """Coroutine: receive one complete frame (decoder path)."""
        while True:
            item = self._decoder.try_pop()
            if item is not None:
                return item
            view = self._decoder.writable()
            try:
                n = self._sock.recv_into(view)
            except (BlockingIOError, InterruptedError):
                n = -1
            except OSError as exc:
                raise ConnectionError(f"receive failed: {exc}") from exc
            finally:
                view.release()
            if n < 0:
                ok = yield from _wait_io(self._sock, _READ, timeout)
                if not ok:
                    raise TimeoutError("read stalled")
                continue
            if n == 0:
                raise ConnectionError("peer closed connection")
            self._stats.recv_syscall(n)
            self._decoder.bytes_written(n)

    def try_recv_message(self):
        """Non-blocking poll for an already-buffered frame."""
        return self._decoder.try_pop()

    def recv_exact(self, n: int, timeout: Optional[float]) -> bytearray:
        """Coroutine: read exactly ``n`` raw bytes (splice-mode headers).

        Must not be mixed with :meth:`recv_message` on the same stream —
        the decoder would already hold buffered bytes this path skips.
        """
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            try:
                r = self._sock.recv_into(view[got:])
            except (BlockingIOError, InterruptedError):
                r = -1
            except OSError as exc:
                raise ConnectionError(f"receive failed: {exc}") from exc
            if r < 0:
                ok = yield from _wait_io(self._sock, _READ, timeout)
                if not ok:
                    raise TimeoutError("read stalled")
                continue
            if r == 0:
                raise ConnectionError("peer closed connection")
            self._stats.recv_syscall(r)
            got += r
        return buf

    def read_frame_header(self, timeout: Optional[float]) -> Message:
        """Coroutine: read one frame *header* only (splice mode).

        The payload (if the opcode carries one) is left on the socket for
        the caller to splice or :meth:`recv_exact`.
        """
        first = yield from self.recv_exact(1, timeout)
        try:
            op = Op(first[0])
        except ValueError:
            raise FramingError(f"unknown opcode byte {first[0]:#04x}") from None
        hsize = header_size(op)
        if hsize > 1:
            rest = yield from self.recv_exact(hsize - 1, timeout)
            first.extend(rest)
        return _decode_fields(op, first, 1)

    # -- sending ---------------------------------------------------------

    def _enqueue(self, data) -> None:
        if len(data) == 0:
            return
        self._send_queue.append(memoryview(data))
        self._pending_bytes += len(data)

    def send_message(self, msg: Message, payload: Payload = b"", *,
                     timeout: Optional[float] = None, flush: bool = True):
        """Coroutine: queue one frame, optionally flushing to the wire."""
        expected = payload_size(msg)
        if len(payload) != expected:
            raise ProtocolError(
                f"{msg!r} requires {expected} payload bytes, got {len(payload)}"
            )
        self._enqueue(encode_header(msg))
        self._enqueue(payload)
        self._stats.frames_sent += 1
        if flush:
            yield from self.flush_pending(timeout=timeout)

    def send_frame_header(self, msg: Message, *,
                          timeout: Optional[float] = None):
        """Coroutine: send a payload-bearing frame's *header* alone.

        Splice mode's half of :meth:`send_message`: the payload follows
        kernel-side through the relay pipe, so the usual payload-length
        check must not run.
        """
        self._enqueue(encode_header(msg))
        self._stats.frames_sent += 1
        yield from self.flush_pending(timeout=timeout)

    def send_raw(self, data: bytes, *, timeout: Optional[float] = None):
        """Coroutine: queue + send raw bytes (connection preamble)."""
        self._enqueue(data)
        yield from self.flush_pending(timeout=timeout)

    def flush_pending(self, *, timeout: Optional[float] = None):
        """Coroutine: push queued buffers; resumable across stalls."""
        queue = self._send_queue
        while queue:
            try:
                sent = self._sock.sendmsg(list(islice(queue, _SENDMSG_BATCH)))
            except (BlockingIOError, InterruptedError):
                ok = yield from _wait_io(self._sock, _WRITE, timeout)
                if not ok:
                    raise WriteStalled(
                        f"{self._pending_bytes} bytes still pending"
                    )
                continue
            except OSError as exc:
                raise ConnectionError(f"send failed: {exc}") from exc
            self._stats.send_syscall(sent)
            self._pending_bytes -= sent
            while sent > 0:
                head = queue[0]
                if sent >= len(head):
                    sent -= len(head)
                    queue.popleft()
                    head.release()
                else:
                    queue[0] = head[sent:]
                    sent = 0

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            while self._send_queue:
                self._send_queue.popleft().release()
            self._pending_bytes = 0
            self._decoder.close()

    @property
    def closed(self) -> bool:
        return self._closed


def ev_connect(addr: Address, kind: bytes, timeout: float, *,
               tracer=None, owner: str = "", peer: str = ""):
    """Coroutine: non-blocking connect + preamble; yields an :class:`EvStream`.

    Raises :class:`NodeFailedError` when the peer is unreachable, exactly
    like :func:`repro.runtime.transport.connect`.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setblocking(False)
    rc = sock.connect_ex(addr.as_tuple())
    if rc not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
        sock.close()
        raise NodeFailedError(
            f"{addr.host}:{addr.port}", f"connect failed: {os.strerror(rc)}"
        )
    if rc != 0:
        ok = yield from _wait_io(sock, _WRITE, timeout)
        err = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR) if ok else errno.ETIMEDOUT
        if err != 0:
            sock.close()
            raise NodeFailedError(
                f"{addr.host}:{addr.port}",
                f"connect failed: {os.strerror(err)}",
            )
    stream = EvStream(sock)
    try:
        yield from stream.send_raw(kind, timeout=timeout)
    except (ConnectionError, WriteStalled) as exc:
        stream.close()
        raise NodeFailedError(
            f"{addr.host}:{addr.port}", f"preamble failed: {exc}"
        ) from None
    if tracer is not None and tracer.enabled:
        tracer.emit(tracing.CONNECT, owner,
                    peer=peer or f"{addr.host}:{addr.port}",
                    detail=CONN_KIND_NAMES.get(kind, "?"))
    return stream


# ---------------------------------------------------------------------------
# Splice relay plumbing
# ---------------------------------------------------------------------------

class _UpstreamLost(Exception):
    """The upstream connection died (or was replaced) mid-relay.

    ``hard`` marks silence beyond ``report_timeout`` — the receiver must
    hard-abort instead of waiting for a replacement connection.
    """

    def __init__(self, reason: str, *, hard: bool = False) -> None:
        super().__init__(reason)
        self.hard = hard


class SplicePipe:
    """The kernel buffer between upstream and downstream sockets.

    ``level`` tracks bytes currently parked in the pipe; :meth:`reset`
    discards them (after an upstream loss poisoned the in-flight chunk)
    by re-creating the pipe — O(1), no draining reads.
    """

    def __init__(self, capacity_hint: int) -> None:
        self._hint = capacity_hint
        self.rfd = -1
        self.wfd = -1
        self.level = 0
        self._open()

    def _open(self) -> None:
        self.rfd, self.wfd = os.pipe()
        os.set_blocking(self.rfd, False)
        os.set_blocking(self.wfd, False)
        try:
            import fcntl
            fcntl.fcntl(self.wfd, fcntl.F_SETPIPE_SZ,
                        max(65536, min(self._hint, _PIPE_SZ_MAX)))
        except (ImportError, OSError, AttributeError):
            pass  # default 64 KiB pipe still works, just more wakeups
        self.level = 0

    def reset(self) -> None:
        self.close()
        self._open()

    def close(self) -> None:
        for fd in (self.rfd, self.wfd):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self.rfd = self.wfd = -1
        self.level = 0


# ---------------------------------------------------------------------------
# Downstream link (event-loop port of runtime.links.DownstreamLink)
# ---------------------------------------------------------------------------

class EvDownstreamLink:
    """Connection management + replay + failure detection, coroutine style.

    A line-for-line behavioural port of
    :class:`~repro.runtime.links.DownstreamLink` (same tracing, same
    failure-record reasons, same rerouting and replay semantics), plus the
    splice-mode entry points :meth:`begin_spliced_frame` /
    :meth:`note_spliced` / :meth:`send_file_retrying`.
    """

    def __init__(self, owner: str, plan: PipelinePlan, registry: Registry,
                 config: KascadeConfig, state: NodeTransferState,
                 tracer=NULL_TRACER) -> None:
        self.owner = owner
        self.plan = plan
        self.registry = registry
        self.config = config
        self.state = state
        self.tracer = tracer
        self.stream: Optional[EvStream] = None
        self.target: Optional[str] = None
        self.dead: Set[str] = set()
        self.sent_offset = 0
        self.downstream_aborted = False

    # -- connection management ------------------------------------------

    @property
    def is_effective_tail(self) -> bool:
        if self.downstream_aborted:
            return True
        if self.stream is not None:
            return False
        return next_alive(self.plan, self.owner, self.dead,
                          self.config.max_connect_attempts) is None

    def _mark_dead(self, node: str, reason: str) -> None:
        if node not in self.dead:
            self.dead.add(node)
            self.state.record_failure(node, reason)
            self.tracer.emit(tracing.FAILOVER, self.owner, peer=node,
                             offset=self.sent_offset, detail=reason,
                             detector=classify_detector(reason))
            logger.info("%s: declared %s dead (%s)", self.owner, node, reason)

    def _drop(self) -> None:
        if self.stream is not None:
            self.stream.close()
        self.stream = None
        self.target = None

    def drop_soft(self) -> None:
        """Close the downstream connection *without* declaring it dead.

        Splice mode uses this when the upstream died mid-chunk: the
        partially-forwarded frame poisoned the downstream byte stream, so
        the connection must go, but the peer is alive and will be
        re-handshaken by the next send.
        """
        self._drop()

    def close(self) -> None:
        self._drop()

    def fail_current(self, reason: str) -> None:
        """Mark the connected target dead and drop (splice pump verdicts)."""
        if self.target is not None:
            self._mark_dead(self.target, reason)
        self._drop()

    def _ensure_connected(self):
        """Coroutine: connect to the next alive downstream + GET handshake."""
        while not self.downstream_aborted:
            if self.stream is not None:
                return True
            target = next_alive(self.plan, self.owner, self.dead,
                                self.config.max_connect_attempts)
            if target is None:
                return False
            try:
                stream = yield from ev_connect(
                    self.registry.address_of(target), DATA_CONN,
                    self.config.connect_timeout,
                )
            except NodeFailedError as exc:
                self._mark_dead(target, f"connect-failed: {exc.reason}")
                continue
            try:
                msg, _ = yield from stream.recv_message(
                    self.config.connect_timeout + self.config.io_timeout
                )
            except (TimeoutError, ConnectionError) as exc:
                stream.close()
                self._mark_dead(target, f"no-handshake: {exc}")
                continue
            if isinstance(msg, Quit):
                stream.close()
                self.downstream_aborted = True
                return False
            if not isinstance(msg, Get):
                stream.close()
                self._mark_dead(target, f"bad-handshake: {type(msg).__name__}")
                continue
            self.stream, self.target = stream, target
            self.tracer.emit(tracing.CONNECT, self.owner, peer=target,
                             offset=msg.offset, detail="downstream")
            if (yield from self._serve_handshake(msg.offset)):
                return True
        return False

    def _serve_handshake(self, requested: int):
        """Coroutine: answer GET(requested) — replay, or FORGET + re-GET."""
        assert self.stream is not None and self.target is not None
        try:
            offer = self.state.answer_get(requested)
        except ValueError as exc:
            self._mark_dead(self.target, f"bad-get: {exc}")
            self._drop()
            return False
        try:
            if offer.kind is OfferKind.SERVE_FROM_BUFFER:
                self.sent_offset = offer.resume_at
                for off, piece in self.state.buffer.iter_chunks_from(
                        offer.resume_at):
                    yield from self._send_frame(Data(off, len(piece)), piece,
                                                flush=False)
                    self.sent_offset = off + len(piece)
                yield from self._flush_retrying()
                return True
            self.tracer.emit(tracing.FORGET, self.owner, peer=self.target,
                             offset=offer.resume_at, detail="sent")
            yield from self._send_frame(Forget(offer.resume_at))
            msg, _ = yield from self._recv_gated("awaiting GET after FORGET")
            if isinstance(msg, Quit):
                self.downstream_aborted = True
                self._drop()
                return False
            if isinstance(msg, Get):
                return (yield from self._serve_handshake(msg.offset))
            raise ProtocolError(f"expected GET/QUIT after FORGET, got {msg!r}")
        except (TimeoutError, ConnectionError, NodeFailedError,
                ProtocolError) as exc:
            self._mark_dead(self.target, f"handshake-lost: {exc}")
            self._drop()
            return False

    # -- liveness + stall handling --------------------------------------

    def _ping_target(self):
        """Coroutine, §III-D1: side-connection ping; True if answered."""
        assert self.target is not None
        answered = yield from self._ping_attempt()
        self.tracer.emit(tracing.PING, self.owner, peer=self.target,
                         detail="answered" if answered else "unanswered")
        return answered

    def _ping_attempt(self):
        try:
            probe = yield from ev_connect(
                self.registry.address_of(self.target), PING_CONN,
                self.config.ping_timeout,
            )
        except NodeFailedError:
            return False
        try:
            yield from probe.send_message(Ping(1),
                                          timeout=self.config.ping_timeout)
            msg, _ = yield from probe.recv_message(self.config.ping_timeout)
            return isinstance(msg, Pong)
        except (TimeoutError, ConnectionError, WriteStalled):
            return False
        finally:
            probe.close()

    def _send_frame(self, msg, payload=b"", *, flush=True):
        assert self.stream is not None and self.target is not None
        yield from self.stream.send_message(
            msg, payload, timeout=self.config.io_timeout, flush=False
        )
        if flush:
            yield from self._flush_retrying()

    def _flush_retrying(self):
        """Coroutine: flush, pinging through stalls while the peer lives."""
        assert self.stream is not None and self.target is not None
        try:
            yield from self.stream.flush_pending(timeout=self.config.io_timeout)
            return
        except WriteStalled:
            self.tracer.emit(tracing.STALL, self.owner, peer=self.target,
                             offset=self.sent_offset, detail="write")
        while True:
            if not (yield from self._ping_target()):
                raise NodeFailedError(self.target,
                                      "write-stalled, ping unanswered")
            try:
                yield from self.stream.flush_pending(
                    timeout=self.config.io_timeout)
                return
            except WriteStalled:
                continue

    def _recv_gated(self, wait_reason: str):
        """Coroutine: receive, pinging through silence while the peer lives."""
        assert self.stream is not None and self.target is not None
        while True:
            try:
                return (yield from self.stream.recv_message(
                    self.config.io_timeout))
            except TimeoutError:
                self.tracer.emit(tracing.STALL, self.owner, peer=self.target,
                                 detail=f"read: {wait_reason}")
                if not (yield from self._ping_target()):
                    raise NodeFailedError(
                        self.target, f"{wait_reason}: silent, ping unanswered"
                    ) from None

    # -- public operations ----------------------------------------------

    def send_data(self, offset: int, payload, *, flush: bool = True):
        """Coroutine: forward one chunk; False once no downstream remains."""
        while True:
            if not (yield from self._ensure_connected()):
                return False
            if self.sent_offset >= offset + len(payload):
                return True  # replay already delivered this chunk
            if self.sent_offset != offset:
                raise ProtocolError(
                    f"{self.owner}: forward desync: sent {self.sent_offset}, "
                    f"chunk at {offset}"
                )
            try:
                yield from self._send_frame(Data(offset, len(payload)),
                                            payload, flush=flush)
                self.sent_offset = offset + len(payload)
                return True
            except (ConnectionError, NodeFailedError) as exc:
                reason = (exc.reason if isinstance(exc, NodeFailedError)
                          else str(exc))
                self._mark_dead(self.target, reason)
                self._drop()

    @property
    def pending_bytes(self) -> int:
        return self.stream.pending_bytes if self.stream is not None else 0

    def flush(self):
        """Coroutine: push corked frames; False if the peer failed."""
        if self.stream is None or self.stream.pending_bytes == 0:
            return True
        try:
            yield from self._flush_retrying()
            return True
        except (ConnectionError, NodeFailedError) as exc:
            reason = (exc.reason if isinstance(exc, NodeFailedError)
                      else str(exc))
            self._mark_dead(self.target, reason)
            self._drop()
            return False

    def finish(self, *, total: int, quit_first: bool):
        """Coroutine: deliver END/QUIT + report, collect PASSED."""
        while True:
            if not (yield from self._ensure_connected()):
                return "tail"
            try:
                if self.sent_offset != total:
                    raise ProtocolError(
                        f"{self.owner}: finishing at {self.sent_offset}, "
                        f"stream total {total}"
                    )
                report_bytes = self.state.report.encode()
                yield from self._send_frame(Quit() if quit_first else End(total))
                yield from self._send_frame(Report(len(report_bytes)),
                                            report_bytes)
                msg, _ = yield from self._recv_gated("awaiting PASSED")
                if isinstance(msg, Passed):
                    return "passed"
                if isinstance(msg, Quit):
                    self.downstream_aborted = True
                    self._drop()
                    return "tail"
                raise ProtocolError(f"expected PASSED, got {msg!r}")
            except (TimeoutError, ConnectionError, NodeFailedError,
                    ProtocolError) as exc:
                reason = (exc.reason if isinstance(exc, NodeFailedError)
                          else str(exc))
                self._mark_dead(self.target, reason)
                self._drop()

    def send_quit_best_effort(self):
        """Coroutine: hard-abort path QUIT, ignoring errors."""
        if self.stream is None:
            return
        try:
            yield from self.stream.send_message(
                Quit(), timeout=self.config.io_timeout)
        except (WriteStalled, ConnectionError):
            pass
        self._drop()

    # -- splice-mode entry points ---------------------------------------

    def begin_spliced_frame(self, offset: int, size: int):
        """Coroutine: ensure a downstream + send the DATA header alone.

        Returns the connected stream (payload follows via the pipe), or
        ``None`` when this node is the effective tail (payload goes to
        ``/dev/null``).
        """
        while True:
            if not (yield from self._ensure_connected()):
                return None
            if self.sent_offset != offset:
                # After any splice-mode handshake the replay is empty and
                # sent_offset equals the live edge == offset; anything
                # else is stream desynchronisation.
                raise ProtocolError(
                    f"{self.owner}: forward desync: sent {self.sent_offset}, "
                    f"chunk at {offset}"
                )
            try:
                yield from self.stream.send_frame_header(
                    Data(offset, size), timeout=self.config.io_timeout)
                return self.stream
            except WriteStalled:
                try:
                    yield from self._flush_retrying()
                    return self.stream
                except (ConnectionError, NodeFailedError) as exc:
                    reason = (exc.reason if isinstance(exc, NodeFailedError)
                              else str(exc))
                    self._mark_dead(self.target, reason)
                    self._drop()
            except (ConnectionError, NodeFailedError) as exc:
                reason = (exc.reason if isinstance(exc, NodeFailedError)
                          else str(exc))
                self._mark_dead(self.target, reason)
                self._drop()

    def note_spliced(self, end_offset: int) -> None:
        """Record that the kernel delivered payload up to ``end_offset``."""
        self.sent_offset = end_offset

    def send_file_retrying(self, source, offset: int, size: int):
        """Coroutine: send DATA(offset,size) with payload via ``os.sendfile``.

        The head's kernel path: header from userspace, payload straight
        from the page cache.  Stalls are ping-gated exactly like
        :meth:`_flush_retrying`; raises ``ConnectionError`` /
        :class:`NodeFailedError` for the caller's reroute loop.
        """
        assert self.stream is not None and self.target is not None
        yield from self.stream.send_frame_header(
            Data(offset, size), timeout=self.config.io_timeout)
        stats = self.stream._stats
        out_fd = self.stream.fileno()
        in_fd = source.fileno()
        sent = 0
        while sent < size:
            try:
                n = os.sendfile(out_fd, in_fd, offset + sent, size - sent)
            except (BlockingIOError, InterruptedError):
                ok = yield from _wait_io(self.stream.sock, _WRITE,
                                         self.config.io_timeout)
                if not ok:
                    self.tracer.emit(tracing.STALL, self.owner,
                                     peer=self.target, offset=self.sent_offset,
                                     detail="write")
                    if not (yield from self._ping_target()):
                        raise NodeFailedError(
                            self.target, "write-stalled, ping unanswered")
                continue
            except OSError as exc:
                raise ConnectionError(f"sendfile failed: {exc}") from exc
            if n == 0:
                raise ConnectionError(
                    f"file ended {size - sent} bytes short of the frame")
            stats.sendfile_syscall(n)
            sent += n
        self.sent_offset = offset + size

    def send_data_from_file(self, source, offset: int, size: int):
        """Coroutine: :meth:`send_data`'s sendfile twin, with rerouting."""
        while True:
            if not (yield from self._ensure_connected()):
                return False
            if self.sent_offset >= offset + size:
                return True
            if self.sent_offset != offset:
                raise ProtocolError(
                    f"{self.owner}: forward desync: sent {self.sent_offset}, "
                    f"chunk at {offset}"
                )
            try:
                yield from self.send_file_retrying(source, offset, size)
                return True
            except (ConnectionError, NodeFailedError, WriteStalled) as exc:
                reason = (exc.reason if isinstance(exc, NodeFailedError)
                          else str(exc))
                self._mark_dead(self.target, reason)
                self._drop()


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------

class _EvBaseNode:
    """State and reactor tasks shared by the evloop head and receivers."""

    serves_pget = False

    def __init__(self, name: str, plan: PipelinePlan, registry: Registry,
                 listener: Listener, config: KascadeConfig,
                 tracer=NULL_TRACER) -> None:
        self.name = name
        self.plan = coerce_stripe_plan(plan, owner=type(self).__name__)
        self.registry = registry
        self.listener = listener
        self.config = config
        self.tracer = tracer
        self.data_inbox: Deque[EvStream] = deque()
        self.inbox_flag = EvFlag()
        self.stop_flag = False
        self.silent = False
        self.outcome = NodeOutcome(name=name)
        self._orphans: list = []  # sockets swallowed after a silent crash
        self.reactor: Optional[Reactor] = None
        self._stats = get_stats()
        self.finished = False

    # -- lifecycle -------------------------------------------------------

    def attach(self, reactor: Reactor) -> None:
        self.reactor = reactor

    def start(self) -> None:
        assert self.reactor is not None, "attach() a reactor before start()"
        self.listener.set_nonblocking()
        self.reactor.spawn(self._accept_task(), f"accept-{self.name}")
        self.reactor.spawn(self._main_task(), f"node-{self.name}")

    def shutdown(self) -> None:
        self.stop_flag = True
        if not self.silent:
            self.listener.close()

    def _die(self, mode: str) -> None:
        """Terminate as if crashed (test/benchmark injection)."""
        self.outcome.crashed = True
        self.outcome.error = f"injected crash ({mode})"
        if mode == "silent":
            self.silent = True
            self.stop_flag = True
        else:
            self.stop_flag = True
            self.listener.close()
            self._close_everything()

    def _close_everything(self) -> None:
        raise NotImplementedError

    def _run(self):
        raise NotImplementedError

    # -- reactor tasks ---------------------------------------------------

    def _main_task(self):
        try:
            yield from self._run()
        except InjectedCrash as crash:
            self._die(crash.mode)
        except Exception as exc:  # noqa: BLE001 - node must record, not raise
            logger.exception("%s: node failed", self.name)
            self.outcome.error = f"{type(exc).__name__}: {exc}"
            self.shutdown()
        finally:
            self.finished = True

    def _accept_task(self):
        while not self.stop_flag:
            try:
                conn = self.listener.raw_accept()
            except (BlockingIOError, InterruptedError):
                yield from _wait_io(self.listener, _READ, _ACCEPT_POLL)
                continue
            except OSError:
                return
            conn.setblocking(False)
            if self.silent:
                self._orphans.append(conn)
                continue
            self.reactor.spawn(self._preamble_task(conn),
                               f"conn-{self.name}")

    def _preamble_task(self, conn: socket.socket):
        try:
            while True:
                try:
                    kind = conn.recv(1)
                    break
                except (BlockingIOError, InterruptedError):
                    ok = yield from _wait_io(conn, _READ,
                                             self.config.connect_timeout)
                    if not ok:
                        conn.close()
                        return
                except OSError:
                    conn.close()
                    return
            if not kind:
                conn.close()
                return
            if self.silent:
                self._orphans.append(conn)
                return
            yield from self._dispatch(kind, conn)
        except Exception:  # noqa: BLE001 - per-connection task must not leak
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, kind: bytes, conn: socket.socket):
        cfg = self.config
        if kind == PING_CONN:
            stream = EvStream(conn)
            try:
                msg, _ = yield from stream.recv_message(cfg.ping_timeout)
                if isinstance(msg, Ping):
                    yield from stream.send_message(
                        Pong(msg.nonce), timeout=cfg.ping_timeout)
            except (TimeoutError, ConnectionError, WriteStalled):
                pass
            stream.close()
        elif kind == DATA_CONN:
            self.data_inbox.append(EvStream(conn))
            self.inbox_flag.set()
        elif kind == PGET_CONN and self.serves_pget:
            self.reactor.spawn(self.serve_pget(EvStream(conn)),
                               f"pget-{self.name}")
        elif kind == RING_CONN and self.serves_pget:
            self.reactor.spawn(self.handle_ring(EvStream(conn)),
                               f"ring-{self.name}")
        else:
            conn.close()


class EvHeadNode(_EvBaseNode):
    """Event-loop head: streams the source, serves PGET, owns the ring.

    With a seekable, fd-backed source (and no digest or pacing), DATA
    payloads leave via ``os.sendfile`` — page cache to socket, never
    entering Python — and the ring advances phantom (replays are answered
    FORGET; the requester PGETs this same head, served from the file).
    """

    serves_pget = True

    def __init__(self, name: str, plan: PipelinePlan, registry: Registry,
                 listener: Listener, config: KascadeConfig, source: Source,
                 tracer=NULL_TRACER) -> None:
        super().__init__(name, plan, registry, listener, config, tracer)
        self._use_sendfile = (
            HAS_SENDFILE
            and not config.verify_digest
            and config.bandwidth_limit is None
            and hasattr(source, "fileno")
            and hasattr(source, "size")
        )
        self._readahead: Optional[ReadAheadSource] = None
        if (not self._use_sendfile and config.readahead_chunks > 0
                and getattr(source, "blocking_io", True)):
            source = ReadAheadSource(source, depth=config.readahead_chunks)
            self._readahead = source
        self.source = source
        self.state = NodeTransferState(name, config, source_kind=source.kind)
        self.link = EvDownstreamLink(name, self.plan, registry, config,
                                     self.state,
                                     tracer)
        self.quit_requested = False
        self.final_report: Optional[TransferReport] = None
        self._ring_flag = EvFlag()
        self._ring_report: Optional[TransferReport] = None

    def request_quit(self) -> None:
        """User interruption: stop after the current chunk (QUIT path)."""
        self.quit_requested = True

    # -- PGET and ring service (spawned per connection) ------------------

    def serve_pget(self, stream: EvStream):
        """Coroutine: serve a recovery range request (sendfile when possible)."""
        cfg = self.config
        try:
            msg, _ = yield from stream.recv_message(
                cfg.io_timeout + cfg.connect_timeout)
            if not isinstance(msg, PGet):
                raise ProtocolError(f"expected PGET, got {msg!r}")
            self.tracer.emit(tracing.PGET, self.name, offset=msg.offset,
                             detail=f"serve until={msg.until}")
            offer = self.state.answer_pget(msg.offset, msg.until)
            if offer.kind is OfferKind.FORGET:
                yield from stream.send_message(Forget(offer.resume_at),
                                               timeout=cfg.io_timeout)
                return
            use_sendfile = HAS_SENDFILE and hasattr(self.source, "fileno")
            pos = msg.offset
            while pos < msg.until:
                size = min(cfg.chunk_size, msg.until - pos)
                if use_sendfile:
                    yield from self._pget_sendfile(stream, pos, size)
                    pos += size
                else:
                    piece = self.source.read_range(pos, size)
                    yield from stream.send_message(
                        Data(pos, len(piece)), piece,
                        timeout=cfg.report_timeout)
                    pos += len(piece)
        except (TimeoutError, ConnectionError, WriteStalled, ProtocolError,
                NodeFailedError) as exc:
            logger.info("%s: PGET service aborted: %s", self.name, exc)
        finally:
            stream.close()

    def _pget_sendfile(self, stream: EvStream, offset: int, size: int):
        """Coroutine: one sendfile'd DATA frame of the PGET response."""
        cfg = self.config
        yield from stream.send_frame_header(Data(offset, size),
                                            timeout=cfg.report_timeout)
        out_fd = stream.fileno()
        in_fd = self.source.fileno()
        sent = 0
        while sent < size:
            try:
                n = os.sendfile(out_fd, in_fd, offset + sent, size - sent)
            except (BlockingIOError, InterruptedError):
                ok = yield from _wait_io(stream.sock, _WRITE,
                                         cfg.report_timeout)
                if not ok:
                    raise WriteStalled(
                        f"sendfile stalled with {size - sent} bytes pending")
                continue
            except OSError as exc:
                raise ConnectionError(f"sendfile failed: {exc}") from exc
            if n == 0:
                raise ConnectionError(
                    f"file ended {size - sent} bytes short of the frame")
            self._stats.sendfile_syscall(n)
            sent += n

    def handle_ring(self, stream: EvStream):
        """Coroutine: receive the tail's final report, answer PASSED."""
        cfg = self.config
        try:
            msg, payload = yield from stream.recv_message(
                cfg.io_timeout + cfg.connect_timeout)
            if not isinstance(msg, Report):
                raise ProtocolError(f"expected REPORT on ring, got {msg!r}")
            self._ring_report = TransferReport.decode(payload)
            self.tracer.emit(tracing.REPORT, self.name, detail="ring-closure")
            yield from stream.send_message(Passed(), timeout=cfg.io_timeout)
            self._ring_flag.set()
        except (TimeoutError, ConnectionError, WriteStalled,
                ProtocolError) as exc:
            logger.info("%s: ring report failed: %s", self.name, exc)
        finally:
            stream.close()

    # -- main loop -------------------------------------------------------

    def _run(self):
        cfg = self.config
        state = self.state
        if self._use_sendfile:
            yield from self._stream_sendfile()
        else:
            yield from self._stream_userspace()
        yield from self.link.flush()
        if self._readahead is not None:
            self._readahead.stop()
        total = state.offset
        aborting = self.quit_requested
        if aborting:
            self.tracer.emit(tracing.QUIT, self.name, offset=total,
                             detail="user interrupt")
            state.on_quit()
        else:
            state.on_end(total)
            state.attach_source_digest()
        outcome = yield from self.link.finish(total=total, quit_first=aborting)
        if outcome == "passed":
            yield from _wait_flag(self._ring_flag, cfg.report_timeout)
        if self._ring_report is not None:
            self.final_report = self._ring_report
        else:
            self.final_report = state.report
        self.outcome.ok = outcome == "passed" and not aborting
        self.outcome.bytes_received = total
        self.outcome.failures_detected = list(state.report.failures)
        if outcome != "passed":
            self.outcome.error = "no downstream completed the transfer"
        self.tracer.emit(tracing.DONE, self.name, offset=total,
                         detail="ok" if self.outcome.ok else "failed")
        if state.phase in (Phase.ENDED, Phase.ABORTED):
            state.on_passed()
        self.shutdown()

    def _stream_userspace(self):
        """Coroutine: the threaded head loop, readiness-driven."""
        cfg = self.config
        state = self.state
        bucket = None
        if cfg.bandwidth_limit is not None:
            from ..core.pacing import TokenBucket
            bucket = TokenBucket(cfg.bandwidth_limit)
        while not self.quit_requested:
            chunk = self.source.read_chunk(cfg.chunk_size)
            if not chunk:
                break
            if bucket is not None:
                delay = bucket.reserve(len(chunk), time.monotonic())
                if delay > 0:
                    yield from _sleep(delay)
                    if self.quit_requested:
                        break
            off = state.offset
            state.on_data(off, chunk)
            if self.tracer.enabled:
                self.tracer.emit(tracing.CHUNK, self.name, offset=off,
                                 detail=f"read {len(chunk)}")
            if not (yield from self.link.send_data(off, chunk, flush=False)):
                break
            if self.link.pending_bytes >= _HEAD_FLUSH_BYTES:
                yield from self.link.flush()

    def _stream_sendfile(self):
        """Coroutine: kernel-path streaming — payload never enters Python."""
        cfg = self.config
        state = self.state
        total_size = self.source.size
        while not self.quit_requested and state.offset < total_size:
            off = state.offset
            size = min(cfg.chunk_size, total_size - off)
            state.on_data_spliced(off, size)
            if self.tracer.enabled:
                self.tracer.emit(tracing.CHUNK, self.name, offset=off,
                                 detail=f"sendfile {size}")
            if not (yield from self.link.send_data_from_file(
                    self.source, off, size)):
                break

    def _close_everything(self) -> None:
        if self._readahead is not None:
            self._readahead.stop()
        self.link.close()


class EvReceiverNode(_EvBaseNode):
    """Event-loop receiver: stores and forwards, kernel path when pure relay.

    The splice path engages only when this node neither stores nor hashes
    the stream (``NullSink`` + ``verify_digest`` off, on Linux); any real
    sink, digest wrapper, or non-Linux platform takes the userspace path,
    whose data handling is identical to the threaded plane — so stored
    bytes and digests are byte-for-byte the same across planes.
    """

    def __init__(self, name: str, plan: PipelinePlan, registry: Registry,
                 listener: Listener, config: KascadeConfig, sink: Sink,
                 crash_gate: Optional[CrashGate] = None,
                 tracer=NULL_TRACER) -> None:
        super().__init__(name, plan, registry, listener, config, tracer)
        self.raw_sink = sink
        if config.sink_writeback_depth > 0 and not isinstance(sink, NullSink):
            sink = SinkWriter(
                sink,
                depth=config.sink_writeback_depth,
                pin_budget=config.sink_writeback_budget,
                tracer=tracer,
                owner=name,
            )
        self.sink = sink
        self.crash_gate = crash_gate
        self.state = NodeTransferState(name, config)
        self.link = EvDownstreamLink(name, self.plan, registry, config,
                                     self.state,
                                     tracer)
        self.upstream: Optional[EvStream] = None
        self._splice = splice_active(config, self.raw_sink)
        self._pipe: Optional[SplicePipe] = (
            SplicePipe(config.chunk_size) if self._splice else None
        )

    # -- upstream management ---------------------------------------------

    def _acquire_upstream(self):
        """Coroutine: wait for an inbound data connection, GET on it."""
        deadline = time.monotonic() + self.config.report_timeout
        while self.upstream is None:
            self.inbox_flag.clear()
            if self.data_inbox:
                stream = self.data_inbox.popleft()
            else:
                if self.stop_flag:
                    raise TransferAborted(f"{self.name}: shut down while idle")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransferAborted(
                        f"{self.name}: no upstream connection arrived"
                    )
                yield from _wait_flag(self.inbox_flag, min(remaining, 0.2))
                continue
            try:
                yield from stream.send_message(
                    Get(self.state.offset), timeout=self.config.io_timeout)
                self.upstream = stream
                self.tracer.emit(tracing.CONNECT, self.name,
                                 offset=self.state.offset, detail="upstream")
            except (WriteStalled, ConnectionError):
                stream.close()

    def _switch_upstream_if_replaced(self):
        """Coroutine: adopt a newer inbound connection if one was queued."""
        if not self.data_inbox:
            return False
        stream = self.data_inbox.popleft()
        if self.upstream is not None:
            self.upstream.close()
        self.upstream = None
        try:
            yield from stream.send_message(
                Get(self.state.offset), timeout=self.config.io_timeout)
            self.upstream = stream
            self.tracer.emit(tracing.CONNECT, self.name,
                             offset=self.state.offset,
                             detail="upstream-replaced")
            return True
        except (WriteStalled, ConnectionError):
            stream.close()
            return False

    def _drop_upstream(self) -> None:
        if self.upstream is not None:
            self.upstream.close()
            self.upstream = None

    # -- recovery: PGET hole fetch ----------------------------------------

    def _fetch_hole_from_head(self, until: int):
        """Coroutine: fetch [offset, until) from the head after a FORGET."""
        cfg = self.config
        head_addr = self.registry.address_of(self.plan.head)
        self.tracer.emit(tracing.PGET, self.name, peer=self.plan.head,
                         offset=self.state.offset, detail=f"until={until}")
        try:
            stream = yield from ev_connect(
                head_addr, PGET_CONN, cfg.connect_timeout,
                tracer=self.tracer, owner=self.name, peer=self.plan.head)
        except NodeFailedError:
            return False
        try:
            yield from stream.send_message(PGet(self.state.offset, until),
                                           timeout=cfg.io_timeout)
            while self.state.offset < until:
                msg, payload = yield from stream.recv_message(cfg.report_timeout)
                if isinstance(msg, Forget):
                    return False
                if not isinstance(msg, Data):
                    raise ProtocolError(f"expected DATA from PGET, got {msg!r}")
                yield from self._consume_chunk(msg.offset, payload)
            return True
        except (TimeoutError, ConnectionError, WriteStalled, ProtocolError):
            return False
        finally:
            stream.close()

    # -- data plane --------------------------------------------------------

    def _consume_chunk(self, offset: int, payload, *, flush: bool = True):
        """Coroutine: store and forward one userspace chunk (zero-copy).

        In splice mode this only runs for PGET hole fills — the bytes are
        in userspace anyway, so they are forwarded as ordinary frames, but
        the accounting stays phantom to keep the ring-empty invariant.
        """
        if self._splice:
            self.state.on_data_spliced(offset, len(payload))
        else:
            self.state.on_data(offset, payload)
        if self.tracer.enabled:
            self.tracer.emit(tracing.CHUNK, self.name, offset=offset,
                             detail=f"recv {len(payload)}")
        self.sink.write_chunk(payload)
        self.outcome.bytes_received = self.state.offset
        yield from self.link.send_data(offset, payload, flush=flush)
        if self.crash_gate is not None:
            mode = self.crash_gate(self.state.offset)
            if mode is not None:
                raise InjectedCrash(mode)

    def _hard_abort(self, reason: str):
        """Coroutine: unrecoverable loss — QUIT both neighbours, die failed."""
        logger.info("%s: aborting: %s", self.name, reason)
        self.tracer.emit(tracing.QUIT, self.name, offset=self.state.offset,
                         detail=reason)
        if self.upstream is not None:
            try:
                yield from self.upstream.send_message(
                    Quit(), timeout=self.config.io_timeout)
            except (WriteStalled, ConnectionError):
                pass
        yield from self.link.send_quit_best_effort()
        self.sink.abort()
        self.outcome.error = reason
        self._drop_upstream()
        self.shutdown()

    # -- main loop ---------------------------------------------------------

    def _run(self):
        cfg = self.config
        state = self.state
        try:
            if self._splice:
                upstream_report = yield from self._stream_loop_spliced()
            else:
                upstream_report = yield from self._stream_loop()
        except (SinkError, OSError) as exc:
            yield from self._hard_abort(f"sink failure: {exc}")
            return
        finally:
            if self._pipe is not None:
                self._pipe.close()
        if upstream_report is None:
            return  # the loop already hard-aborted and shut down

        # ---- report exchange phase ----
        aborted = state.phase is Phase.ABORTED
        state.merge_upstream_report(upstream_report)
        digest_ok = state.verify_against_report()
        if digest_ok is False:
            state.record_failure(self.name, "digest-mismatch")
            self.outcome.error = "stored data failed digest verification"
        if aborted:
            self.sink.abort()
        else:
            try:
                self.sink.finish()
            except (SinkError, OSError) as exc:
                yield from self._hard_abort(f"sink failure: {exc}")
                return
        outcome = yield from self.link.finish(total=state.offset,
                                              quit_first=aborted)
        if outcome == "tail":
            yield from self._ring_deliver(state.report.encode())
        self.outcome.ok = (
            not aborted and state.complete and digest_ok is not False
        )
        self.tracer.emit(tracing.DONE, self.name, offset=state.offset,
                         detail="ok" if self.outcome.ok else "failed")
        if self.upstream is not None:
            try:
                yield from self.upstream.send_message(
                    Passed(), timeout=cfg.io_timeout)
            except (WriteStalled, ConnectionError):
                pass
        state.on_passed()
        self.outcome.failures_detected = list(state.report.failures)
        self._drop_upstream()
        self.shutdown()

    # -- userspace stream loop (decoder path, identical to threaded) ------

    def _stream_loop(self):
        cfg = self.config
        state = self.state
        upstream_report: Optional[bytes] = None
        carried: Optional[tuple] = None
        last_progress = time.monotonic()

        while True:
            if state.phase is Phase.ENDED and upstream_report is not None:
                return upstream_report
            if self.upstream is None:
                carried = None
                yield from self._acquire_upstream()
                last_progress = time.monotonic()
                continue
            try:
                if carried is not None:
                    msg, payload = carried
                    carried = None
                else:
                    msg, payload = yield from self.upstream.recv_message(
                        cfg.io_timeout)
            except TimeoutError:
                if (yield from self._switch_upstream_if_replaced()):
                    last_progress = time.monotonic()
                elif time.monotonic() - last_progress > cfg.report_timeout:
                    yield from self._hard_abort(
                        "upstream silent beyond deadline")
                    return None
                continue
            except FramingError as exc:
                logger.info("%s: dropping upstream on bad frame: %s",
                            self.name, exc)
                self._drop_upstream()
                continue
            except ConnectionError:
                self._drop_upstream()
                continue
            last_progress = time.monotonic()

            if isinstance(msg, Data):
                yield from self._consume_chunk(msg.offset, payload,
                                               flush=False)
                try:
                    nxt = self.upstream.try_recv_message()
                    while nxt is not None and isinstance(nxt[0], Data):
                        yield from self._consume_chunk(nxt[0].offset, nxt[1],
                                                       flush=False)
                        nxt = self.upstream.try_recv_message()
                    carried = nxt
                except FramingError as exc:
                    logger.info("%s: dropping upstream on bad frame: %s",
                                self.name, exc)
                    self._drop_upstream()
                yield from self.link.flush()
            elif isinstance(msg, End):
                if state.phase is Phase.STREAMING:
                    state.on_end(msg.total)
                elif state.total_size != msg.total:
                    raise ProtocolError(
                        f"{self.name}: conflicting END totals "
                        f"{state.total_size} vs {msg.total}"
                    )
            elif isinstance(msg, Report):
                upstream_report = bytes(payload)
                self.tracer.emit(tracing.REPORT, self.name, detail="upstream")
            elif isinstance(msg, Forget):
                self.tracer.emit(tracing.FORGET, self.name,
                                 offset=msg.min_offset, detail="received")
                if not (yield from self._fetch_hole_from_head(msg.min_offset)):
                    yield from self._hard_abort(
                        "data lost beyond recovery (FORGET)")
                    return None
                try:
                    yield from self.upstream.send_message(
                        Get(state.offset), timeout=cfg.io_timeout)
                except (WriteStalled, ConnectionError):
                    self._drop_upstream()
            elif isinstance(msg, Quit):
                self.tracer.emit(tracing.QUIT, self.name,
                                 offset=state.offset, detail="received")
                state.on_quit()
                try:
                    rmsg, rpayload = yield from self.upstream.recv_message(
                        cfg.io_timeout)
                except (TimeoutError, ConnectionError):
                    yield from self._hard_abort("upstream quit without report")
                    return None
                if isinstance(rmsg, Report):
                    return bytes(rpayload)
                yield from self._hard_abort("upstream quit without report")
                return None
            else:
                raise ProtocolError(
                    f"{self.name}: unexpected {msg!r} from upstream")

    # -- kernel-path stream loop (splice relay) ----------------------------

    def _stream_loop_spliced(self):
        """Receive/forward via the splice pipe; headers-only in userspace.

        Framing discipline: exactly the frame header is read from the
        socket; a DATA payload is then spliced through the pipe, any other
        payload (REPORT) is read with ``recv_exact``.  The stream decoder
        is never used, so no payload byte ever lands in a Python buffer.
        """
        cfg = self.config
        state = self.state
        upstream_report: Optional[bytes] = None
        last_progress = time.monotonic()

        while True:
            if state.phase is Phase.ENDED and upstream_report is not None:
                return upstream_report
            if self.upstream is None:
                yield from self._acquire_upstream()
                last_progress = time.monotonic()
                continue
            try:
                msg = yield from self.upstream.read_frame_header(cfg.io_timeout)
            except TimeoutError:
                if (yield from self._switch_upstream_if_replaced()):
                    last_progress = time.monotonic()
                elif time.monotonic() - last_progress > cfg.report_timeout:
                    yield from self._hard_abort(
                        "upstream silent beyond deadline")
                    return None
                continue
            except FramingError as exc:
                logger.info("%s: dropping upstream on bad frame: %s",
                            self.name, exc)
                self._drop_upstream()
                continue
            except ConnectionError:
                self._drop_upstream()
                continue
            last_progress = time.monotonic()

            if isinstance(msg, Data):
                try:
                    yield from self._relay_chunk_spliced(msg.offset, msg.size)
                except _UpstreamLost as exc:
                    if exc.hard:
                        yield from self._hard_abort(
                            "upstream silent beyond deadline")
                        return None
                    logger.info("%s: upstream lost mid-chunk: %s",
                                self.name, exc)
                    # The partially-forwarded frame poisoned the downstream
                    # byte stream: drop both sides and discard the pipe's
                    # in-flight bytes; reconnects resync at the live edge.
                    self._drop_upstream()
                    self.link.drop_soft()
                    self._pipe.reset()
                    continue
                last_progress = time.monotonic()
                if self.crash_gate is not None:
                    mode = self.crash_gate(state.offset)
                    if mode is not None:
                        raise InjectedCrash(mode)
            elif isinstance(msg, End):
                if state.phase is Phase.STREAMING:
                    state.on_end(msg.total)
                elif state.total_size != msg.total:
                    raise ProtocolError(
                        f"{self.name}: conflicting END totals "
                        f"{state.total_size} vs {msg.total}"
                    )
            elif isinstance(msg, Report):
                payload = yield from self.upstream.recv_exact(
                    msg.size, cfg.io_timeout)
                upstream_report = bytes(payload)
                self.tracer.emit(tracing.REPORT, self.name, detail="upstream")
            elif isinstance(msg, Forget):
                self.tracer.emit(tracing.FORGET, self.name,
                                 offset=msg.min_offset, detail="received")
                if not (yield from self._fetch_hole_from_head(msg.min_offset)):
                    yield from self._hard_abort(
                        "data lost beyond recovery (FORGET)")
                    return None
                try:
                    yield from self.upstream.send_message(
                        Get(state.offset), timeout=cfg.io_timeout)
                except (WriteStalled, ConnectionError):
                    self._drop_upstream()
            elif isinstance(msg, Quit):
                self.tracer.emit(tracing.QUIT, self.name,
                                 offset=state.offset, detail="received")
                state.on_quit()
                try:
                    rmsg = yield from self.upstream.read_frame_header(
                        cfg.io_timeout)
                    if isinstance(rmsg, Report):
                        payload = yield from self.upstream.recv_exact(
                            rmsg.size, cfg.io_timeout)
                        return bytes(payload)
                except (TimeoutError, ConnectionError, FramingError):
                    pass
                yield from self._hard_abort("upstream quit without report")
                return None
            else:
                raise ProtocolError(
                    f"{self.name}: unexpected {msg!r} from upstream")

    def _relay_chunk_spliced(self, offset: int, size: int):
        """Coroutine: move one DATA payload upstream→downstream in-kernel."""
        state = self.state
        if offset != state.offset:
            raise ProtocolError(
                f"{self.name}: DATA at offset {offset}, expected {state.offset}"
            )
        down = None
        if not self.link.downstream_aborted:
            down = yield from self.link.begin_spliced_frame(offset, size)
        down_failed = yield from self._pump(size, down)
        # The chunk left the upstream socket in full (delivered downstream,
        # or discarded after a downstream death): account it.
        state.on_data_spliced(offset, size)
        if self.tracer.enabled:
            self.tracer.emit(tracing.CHUNK, self.name, offset=offset,
                             detail=f"splice {size}")
        self.raw_sink.bytes_written += size  # NullSink accounting, no bytes
        self.outcome.bytes_received = state.offset
        if down_failed is not None:
            self.link.fail_current(down_failed)
        elif down is not None:
            self.link.note_spliced(offset + size)

    def _pump(self, size: int, down: Optional[EvStream]):
        """Coroutine: splice ``size`` payload bytes through the pipe.

        Interleaves socket→pipe and pipe→socket legs, tracking the pipe
        fill level.  ``down is None`` (tail) discards into ``/dev/null``.
        A downstream death switches the out leg to ``/dev/null`` and keeps
        consuming (returns the failure reason); an upstream death raises
        :class:`_UpstreamLost`.
        """
        cfg = self.config
        pipe = self._pipe
        stats = self._stats
        up_sock = self.upstream.sock
        up_fd = up_sock.fileno()
        out_sock = down.sock if down is not None else None
        out_fd = down.fileno() if down is not None else _devnull()
        down_failed: Optional[str] = None
        in_done = out_done = 0
        last_progress = time.monotonic()
        while out_done < size:
            progressed = False
            out_blocked = False
            if in_done < size:
                try:
                    n = os.splice(up_fd, pipe.wfd,
                                  min(size - in_done, _SPLICE_MAX),
                                  flags=_SPLICE_FLAGS)
                    if n == 0:
                        raise _UpstreamLost("peer closed mid-payload")
                    stats.splice_syscall(n)
                    in_done += n
                    pipe.level += n
                    progressed = True
                except BlockingIOError:
                    pass
                except InterruptedError:
                    progressed = True
                except OSError as exc:
                    raise _UpstreamLost(f"splice from upstream failed: {exc}")
            if pipe.level > 0:
                try:
                    n = os.splice(pipe.rfd, out_fd, pipe.level,
                                  flags=_SPLICE_FLAGS)
                    stats.splice_syscall(n)
                    pipe.level -= n
                    out_done += n
                    progressed = True
                except BlockingIOError:
                    out_blocked = True
                except InterruptedError:
                    progressed = True
                except OSError as exc:
                    if out_sock is not None and down_failed is None:
                        # Downstream died mid-chunk: finish the chunk into
                        # /dev/null so our live edge stays chunk-aligned —
                        # the replacement refetches everything below it
                        # from the head anyway (phantom ring).
                        down_failed = f"splice to downstream failed: {exc}"
                        out_sock = None
                        out_fd = _devnull()
                        progressed = True
                    else:
                        raise _UpstreamLost(f"splice discard failed: {exc}")
            if progressed:
                last_progress = time.monotonic()
                continue
            if out_blocked and out_sock is not None:
                ok = yield from _wait_io(out_sock, _WRITE, cfg.io_timeout)
                if not ok:
                    self.tracer.emit(tracing.STALL, self.name,
                                     peer=self.link.target,
                                     offset=self.link.sent_offset,
                                     detail="write")
                    if not (yield from self.link._ping_target()):
                        down_failed = "write-stalled, ping unanswered"
                        out_sock = None
                        out_fd = _devnull()
                continue
            # Waiting on upstream payload bytes.
            ok = yield from _wait_io(up_sock, _READ, cfg.io_timeout)
            if not ok:
                if self.data_inbox:
                    raise _UpstreamLost("upstream replaced mid-chunk")
                if time.monotonic() - last_progress > cfg.report_timeout:
                    raise _UpstreamLost("upstream silent beyond deadline",
                                        hard=True)
        return down_failed

    def _ring_deliver(self, report_bytes: bytes):
        """Coroutine, tail duty: close the ring to the head."""
        cfg = self.config
        try:
            stream = yield from ev_connect(
                self.registry.address_of(self.plan.head), RING_CONN,
                cfg.connect_timeout, tracer=self.tracer, owner=self.name,
                peer=self.plan.head)
        except NodeFailedError:
            logger.info("%s: head unreachable for ring report", self.name)
            return
        try:
            yield from stream.send_message(Report(len(report_bytes)),
                                           report_bytes,
                                           timeout=cfg.report_timeout)
            msg, _ = yield from stream.recv_message(cfg.report_timeout)
            if not isinstance(msg, Passed):
                logger.info("%s: unexpected ring answer %r", self.name, msg)
        except (TimeoutError, ConnectionError, WriteStalled) as exc:
            logger.info("%s: ring delivery failed: %s", self.name, exc)
        finally:
            stream.close()

    def _close_everything(self) -> None:
        self._drop_upstream()
        self.link.close()
        if self._pipe is not None:
            self._pipe.close()


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def splice_active(config: KascadeConfig, sink: Sink) -> bool:
    """Whether a receiver with ``sink`` will use the kernel relay path.

    Exact ``NullSink`` (not a subclass — a subclass may observe bytes)
    with digest verification off, on a platform with ``os.splice``.
    """
    return (HAS_SPLICE and not config.verify_digest
            and type(sink) is NullSink)


def run_nodes(nodes: Iterable[_EvBaseNode], *,
              duration: Optional[float] = None,
              stats: Optional[PerfStats] = None,
              shared_reactor: bool = False) -> bool:
    """Run the given evloop nodes to completion; block until done.

    Each node gets its own single-threaded reactor — one thread per node,
    so co-hosted pipeline hops relay on separate cores and throughput
    stays independent of chain length (vs. 2+ threads per node on the
    threaded plane).  A single node runs its reactor inline on the
    calling thread; ``shared_reactor=True`` forces every node onto one
    reactor on the calling thread (strict single-thread operation — per-
    hop work then serializes, which is fine for tests and small chains).

    Returns True when every node's main task finished within ``duration``
    seconds; stragglers are shut down and marked failed.
    """
    nodes = list(nodes)
    deadline = (time.monotonic() + duration) if duration is not None else None
    if shared_reactor or len(nodes) <= 1:
        reactor = Reactor(stats=stats)
        for node in nodes:
            node.attach(reactor)
        for node in nodes:
            node.start()
        reactor.run(stop_when=lambda: all(n.finished for n in nodes),
                    deadline=deadline)
    else:
        threads = []
        for node in nodes:
            reactor = Reactor(stats=stats)
            node.attach(reactor)

            def drive(node=node, reactor=reactor):
                node.start()
                reactor.run(stop_when=lambda: node.finished,
                            deadline=deadline)

            threads.append(threading.Thread(target=drive,
                                            name=f"evloop-{node.name}",
                                            daemon=True))
        for t in threads:
            t.start()
        # Each reactor observes the shared deadline itself; the join
        # grace only covers teardown of a reactor that just expired.
        for t in threads:
            t.join(None if deadline is None
                   else max(0.0, deadline - time.monotonic()) + 2.0)
    done = all(n.finished for n in nodes)
    for node in nodes:
        if not node.finished:
            if node.outcome.error is None:
                node.outcome.error = "evloop run timed out"
            node.shutdown()
            node._close_everything()
    return done
