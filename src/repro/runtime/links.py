"""Sender-side downstream link: connection management, replay, failure
detection and rerouting (§III-D).

Both the head and every relay own a :class:`DownstreamLink`.  It hides the
messy part of the protocol behind three operations:

* :meth:`send_data` — forward one stream chunk, transparently detecting a
  dead downstream (write stall + liveness ping, or socket error),
  rerouting to the next alive node, and replaying missed bytes from the
  node's ring buffer;
* :meth:`finish` — after the stream ends, deliver END/QUIT plus the
  failure report and collect PASSED, with the same rerouting;
* :attr:`is_effective_tail` — true once no alive downstream exists, in
  which case the owner must perform the tail's ring-closure duty.
"""

from __future__ import annotations

import logging
from typing import Optional, Set

from ..core.config import KascadeConfig
from ..core.errors import NodeFailedError, ProtocolError
from ..core.messages import Data, End, Get, Passed, Pong, Ping, Quit, Report, Forget
from ..core.node_state import NodeTransferState
from ..core.pipeline import PipelinePlan
from ..core.recovery import OfferKind, next_alive
from ..core import tracing
from ..core.tracing import NULL_TRACER, classify_detector
from .registry import Registry
from .transport import DATA_CONN, PING_CONN, SocketStream, WriteStalled, connect

logger = logging.getLogger(__name__)


class DownstreamLink:
    """Manages this node's connection to its (current) downstream neighbour."""

    def __init__(
        self,
        owner: str,
        plan: PipelinePlan,
        registry: Registry,
        config: KascadeConfig,
        state: NodeTransferState,
        tracer=NULL_TRACER,
    ) -> None:
        self.owner = owner
        self.plan = plan
        self.registry = registry
        self.config = config
        self.state = state
        self.tracer = tracer
        self.stream: Optional[SocketStream] = None
        self.target: Optional[str] = None
        self.dead: Set[str] = set()
        self.sent_offset = 0
        #: Downstream deliberately quit (unrecoverable data loss after
        #: FORGET): stop forwarding, do NOT treat as a failure.
        self.downstream_aborted = False

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    @property
    def is_effective_tail(self) -> bool:
        """No alive, non-aborted downstream remains."""
        if self.downstream_aborted:
            return True
        if self.stream is not None:
            return False
        return next_alive(self.plan, self.owner, self.dead,
                          self.config.max_connect_attempts) is None

    def _mark_dead(self, node: str, reason: str) -> None:
        if node not in self.dead:
            self.dead.add(node)
            self.state.record_failure(node, reason)
            self.tracer.emit(tracing.FAILOVER, self.owner, peer=node,
                             offset=self.sent_offset, detail=reason,
                             detector=classify_detector(reason))
            logger.info("%s: declared %s dead (%s)", self.owner, node, reason)

    def _drop(self) -> None:
        if self.stream is not None:
            self.stream.close()
        self.stream = None
        self.target = None

    def close(self) -> None:
        self._drop()

    def _ensure_connected(self) -> bool:
        """Connect to the next alive downstream and complete its GET
        handshake (replaying buffered bytes).  Returns False when this
        node has become the effective tail."""
        while not self.downstream_aborted:
            if self.stream is not None:
                return True
            target = next_alive(self.plan, self.owner, self.dead,
                                self.config.max_connect_attempts)
            if target is None:
                return False
            try:
                stream = connect(self.registry.address_of(target), DATA_CONN,
                                 self.config.connect_timeout)
            except NodeFailedError as exc:
                self._mark_dead(target, f"connect-failed: {exc.reason}")
                continue
            # The receiver sends GET(offset) on *every* new connection —
            # the paper's deadlock-avoidance rule (§III-D2).
            try:
                msg, _ = stream.recv_message(
                    self.config.connect_timeout + self.config.io_timeout
                )
            except (TimeoutError, ConnectionError) as exc:
                stream.close()
                self._mark_dead(target, f"no-handshake: {exc}")
                continue
            if isinstance(msg, Quit):
                stream.close()
                self.downstream_aborted = True
                return False
            if not isinstance(msg, Get):
                stream.close()
                self._mark_dead(target, f"bad-handshake: {type(msg).__name__}")
                continue
            self.stream, self.target = stream, target
            self.tracer.emit(tracing.CONNECT, self.owner, peer=target,
                             offset=msg.offset, detail="downstream")
            if self._serve_handshake(msg.offset):
                return True
            # handshake/replay failed; _serve_handshake dropped the stream
        return False

    def _serve_handshake(self, requested: int) -> bool:
        """Answer a GET(requested): replay from the buffer or send FORGET
        and wait for the receiver's follow-up GET after its PGET fetch."""
        assert self.stream is not None and self.target is not None
        try:
            offer = self.state.answer_get(requested)
        except ValueError as exc:
            # The receiver claims bytes beyond our live edge — poisoned
            # state; declare it dead rather than corrupt the stream.
            self._mark_dead(self.target, f"bad-get: {exc}")
            self._drop()
            return False
        try:
            if offer.kind is OfferKind.SERVE_FROM_BUFFER:
                self.sent_offset = offer.resume_at
                for off, piece in self.state.buffer.iter_chunks_from(offer.resume_at):
                    self._send_frame(Data(off, len(piece)), piece, flush=False)
                    self.sent_offset = off + len(piece)
                self._flush_retrying()
                return True
            # Relay (or stream-head) cannot serve: FORGET(min); the
            # receiver PGETs the hole from the head then re-GETs.
            self.tracer.emit(tracing.FORGET, self.owner, peer=self.target,
                             offset=offer.resume_at, detail="sent")
            self._send_frame(Forget(offer.resume_at))
            msg, _ = self._recv_gated("awaiting GET after FORGET")
            if isinstance(msg, Quit):
                # Receiver could not recover (head answered FORGET).
                self.downstream_aborted = True
                self._drop()
                return False
            if isinstance(msg, Get):
                return self._serve_handshake(msg.offset)
            raise ProtocolError(f"expected GET/QUIT after FORGET, got {msg!r}")
        except (TimeoutError, ConnectionError, NodeFailedError, ProtocolError) as exc:
            self._mark_dead(self.target, f"handshake-lost: {exc}")
            self._drop()
            return False

    # ------------------------------------------------------------------
    # Frame sending with stall detection (write timeout + liveness ping)
    # ------------------------------------------------------------------

    def _ping_target(self) -> bool:
        """§III-D1: open a side connection and ping; True if peer answers."""
        assert self.target is not None
        answered = self._ping_attempt()
        self.tracer.emit(tracing.PING, self.owner, peer=self.target,
                         detail="answered" if answered else "unanswered")
        return answered

    def _ping_attempt(self) -> bool:
        try:
            probe = connect(self.registry.address_of(self.target), PING_CONN,
                            self.config.ping_timeout)
        except NodeFailedError:
            return False
        try:
            probe.send_message(Ping(1), timeout=self.config.ping_timeout)
            msg, _ = probe.recv_message(self.config.ping_timeout)
            return isinstance(msg, Pong)
        except (TimeoutError, ConnectionError, WriteStalled):
            return False
        finally:
            probe.close()

    def _send_frame(self, msg, payload=b"", *, flush=True) -> None:
        """Send one frame, tolerating stalls while the peer stays alive.

        ``payload`` may be any bytes-like buffer — in the relay path it is
        the memoryview received from upstream, queued downstream without a
        copy.  The vectored send queue keeps the view alive (and its pool
        buffer pinned) until the bytes hit the kernel, so a stall + resume
        cycle cannot lose or duplicate payload bytes.

        ``flush=False`` corks the frame in the send queue (no syscall);
        a later flushed frame or :meth:`_flush_retrying` pushes the whole
        backlog in one vectored send.
        """
        assert self.stream is not None and self.target is not None
        self.stream.send_message(
            msg, payload, timeout=self.config.io_timeout, flush=False
        )
        if flush:
            self._flush_retrying()

    def _flush_retrying(self) -> None:
        """Flush queued frames, tolerating stalls while the peer lives.

        A stalled write can mean: the peer died, a *later* node died and
        backpressure propagated, or plain congestion (§III-D1).  We ping;
        while the peer answers we keep waiting (the cluster-level run
        timeout is the ultimate guard), otherwise raise
        :class:`NodeFailedError` immediately.
        """
        assert self.stream is not None and self.target is not None
        try:
            self.stream.flush_pending(timeout=self.config.io_timeout)
            return
        except WriteStalled:
            self.tracer.emit(tracing.STALL, self.owner, peer=self.target,
                             offset=self.sent_offset, detail="write")
        while True:
            if not self._ping_target():
                raise NodeFailedError(self.target, "write-stalled, ping unanswered")
            try:
                self.stream.flush_pending(timeout=self.config.io_timeout)
                return
            except WriteStalled:
                continue

    def _recv_gated(self, wait_reason: str):
        """Receive one frame, tolerating silence while the peer stays alive.

        On each read timeout the peer is pinged: a live peer (merely
        waiting on *its* downstream) buys more time; a dead one raises
        :class:`NodeFailedError` after roughly ``io + ping`` seconds —
        this is what keeps failure detection latency flat instead of
        cascading one ``report_timeout`` per pipeline position.
        """
        assert self.stream is not None and self.target is not None
        while True:
            try:
                return self.stream.recv_message(self.config.io_timeout)
            except TimeoutError:
                self.tracer.emit(tracing.STALL, self.owner, peer=self.target,
                                 detail=f"read: {wait_reason}")
                if not self._ping_target():
                    raise NodeFailedError(
                        self.target, f"{wait_reason}: silent, ping unanswered"
                    ) from None

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def send_data(self, offset: int, payload, *, flush: bool = True) -> bool:
        """Forward one chunk downstream; True unless no downstream remains.

        Accepts any bytes-like buffer; a memoryview is forwarded without
        copying.  Reroutes to the next alive node on failure; the
        replacement's GET handshake replays whatever it is missing (as
        zero-copy views out of the ring buffer), after which chunks the
        replay already covered are skipped here (``sent_offset`` check).

        ``flush=False`` corks the frame (small-chunk batching); call
        :meth:`flush` before blocking on anything else.  Chunks corked
        but lost to a later flush failure are covered by the replay: the
        replacement's GET rewinds ``sent_offset`` to what actually
        arrived downstream.
        """
        while True:
            if not self._ensure_connected():
                return False
            if self.sent_offset >= offset + len(payload):
                return True  # replay already delivered this chunk
            if self.sent_offset != offset:
                raise ProtocolError(
                    f"{self.owner}: forward desync: sent {self.sent_offset}, "
                    f"chunk at {offset}"
                )
            try:
                self._send_frame(Data(offset, len(payload)), payload, flush=flush)
                self.sent_offset = offset + len(payload)
                return True
            except (ConnectionError, NodeFailedError) as exc:
                reason = exc.reason if isinstance(exc, NodeFailedError) else str(exc)
                self._mark_dead(self.target, reason)
                self._drop()

    @property
    def pending_bytes(self) -> int:
        """Bytes corked in the send queue, awaiting :meth:`flush`."""
        return self.stream.pending_bytes if self.stream is not None else 0

    def flush(self) -> bool:
        """Push corked frames to the wire; True unless the peer failed.

        Failure handling mirrors :meth:`send_data`: the target is marked
        dead and dropped, and the *next* ``send_data`` reroutes — the
        replacement's handshake replays whatever the failed flush never
        delivered, straight out of the ring buffer.
        """
        if self.stream is None or self.stream.pending_bytes == 0:
            return True
        try:
            self._flush_retrying()
            return True
        except (ConnectionError, NodeFailedError) as exc:
            reason = exc.reason if isinstance(exc, NodeFailedError) else str(exc)
            self._mark_dead(self.target, reason)
            self._drop()
            return False

    def finish(self, *, total: int, quit_first: bool) -> str:
        """Deliver stream end + report, collect PASSED.

        Returns ``"passed"`` when the downstream acknowledged, ``"tail"``
        when no downstream remains (owner must do the ring closure).
        ``quit_first`` selects the user-interrupt path (QUIT instead of
        END).

        The report payload is re-encoded from the node state on *every*
        attempt: a downstream death is often only detected here (writes to
        a freshly-dead peer succeed into the kernel socket buffer), and
        the replacement neighbour must receive a report that includes it.
        """
        while True:
            if not self._ensure_connected():
                return "tail"
            try:
                if self.sent_offset != total:
                    raise ProtocolError(
                        f"{self.owner}: finishing at {self.sent_offset}, "
                        f"stream total {total}"
                    )
                report_bytes = self.state.report.encode()
                self._send_frame(Quit() if quit_first else End(total))
                self._send_frame(Report(len(report_bytes)), report_bytes)
                msg, _ = self._recv_gated("awaiting PASSED")
                if isinstance(msg, Passed):
                    return "passed"
                if isinstance(msg, Quit):
                    # Downstream aborted after the stream ended.
                    self.downstream_aborted = True
                    self._drop()
                    return "tail"
                raise ProtocolError(f"expected PASSED, got {msg!r}")
            except (TimeoutError, ConnectionError, NodeFailedError, ProtocolError) as exc:
                reason = exc.reason if isinstance(exc, NodeFailedError) else str(exc)
                self._mark_dead(self.target, reason)
                self._drop()

    def send_quit_best_effort(self) -> None:
        """Hard-abort path: tell the downstream to quit, ignoring errors."""
        if self.stream is None:
            return
        try:
            self.stream.send_message(Quit(), timeout=self.config.io_timeout)
        except (WriteStalled, ConnectionError):
            pass
        self._drop()
