"""Kascade node roles for the real TCP runtime.

A node is one participant of the broadcast pipeline, run as a pair of
threads: an *acceptor* owning the listen socket, and the role's main loop
(:class:`HeadNode` streams the source; :class:`ReceiverNode` receives,
stores, and forwards).

The message flow implements §III-C/§III-D of the paper:

* receivers send ``GET(offset)`` on **every** new upstream connection
  (deadlock-avoidance rule);
* relays forward DATA chunk-by-chunk, which gives natural backpressure —
  the pipeline never runs faster than its slowest link;
* on upstream loss a receiver simply waits for a replacement inbound
  connection: the node *before* the dead one routes around it;
* ``FORGET`` answers send the receiver to the head with ``PGET``; if the
  head cannot serve (stdin source), the receiver hard-aborts and QUITs
  both neighbours;
* after END/QUIT the report travels down the chain, the tail closes the
  ring to the head, and PASSED flows back up.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.config import KascadeConfig
from ..core.errors import (
    FramingError,
    NodeFailedError,
    ProtocolError,
    SinkError,
    TransferAborted,
)
from ..core.messages import (
    Data,
    End,
    Forget,
    Get,
    Passed,
    PGet,
    Ping,
    Pong,
    Quit,
    Report,
)
from ..core.node_state import NodeTransferState, Phase
from ..core.pipeline import PipelinePlan
from ..core.plan import coerce_stripe_plan
from ..core.recovery import OfferKind
from ..core.report import TransferReport
from ..core.sinks import NullSink, Sink
from ..core.sources import Source
from ..core.stages import ReadAheadSource, SinkWriter
from ..core import tracing
from ..core.tracing import NULL_TRACER
from .links import DownstreamLink
from .registry import Registry
from .transport import (
    DATA_CONN,
    HAS_SENDFILE,
    PGET_CONN,
    PING_CONN,
    RING_CONN,
    Listener,
    SocketStream,
    WriteStalled,
    connect,
)

logger = logging.getLogger(__name__)


class InjectedCrash(Exception):
    """Raised inside a node's main loop by a test/benchmark crash gate."""

    def __init__(self, mode: str) -> None:
        super().__init__(f"injected crash ({mode})")
        self.mode = mode


#: Crash gate callback: given bytes received so far, return a crash mode
#: (``"close"`` or ``"silent"``) to kill the node now, or ``None``.
CrashGate = Callable[[int], Optional[str]]

#: Head-side cork threshold: DATA frames accumulate in the send queue
#: until this many bytes are pending, then leave in one vectored send.
_HEAD_FLUSH_BYTES = 1 << 16


@dataclass
class NodeOutcome:
    """What one node reports after the broadcast (or its own death)."""

    name: str
    ok: bool = False
    bytes_received: int = 0
    crashed: bool = False
    error: Optional[str] = None
    failures_detected: List = field(default_factory=list)
    #: SHA-256 of the payload as stored, when the backend computed one
    #: (the process backend always does; the thread backend only via a
    #: hashing sink the caller supplied).
    digest: Optional[str] = None


class _Acceptor:
    """Listen-socket thread: answers pings, queues data/ring connections."""

    def __init__(self, node: "_BaseNode") -> None:
        self.node = node
        self.thread = threading.Thread(
            target=self._run, name=f"accept-{node.name}", daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    def _run(self) -> None:
        node = self.node
        while not node.stop_event.is_set():
            try:
                kind, stream = node.listener.accept(timeout=0.1)
            except TimeoutError:
                continue
            except ConnectionError:
                return
            if node.silent:  # crashed "silently": swallow, never answer
                node._orphans.append(stream)
                continue
            try:
                self._dispatch(kind, stream)
            except Exception:  # noqa: BLE001 - acceptor must survive anything
                stream.close()

    def _dispatch(self, kind: bytes, stream: SocketStream) -> None:
        node = self.node
        if kind == PING_CONN:
            # Liveness probe: answer inline and close (§III-D1).
            try:
                msg, _ = stream.recv_message(node.config.ping_timeout)
                if isinstance(msg, Ping):
                    stream.send_message(Pong(msg.nonce),
                                        timeout=node.config.ping_timeout)
            except (TimeoutError, ConnectionError, WriteStalled):
                pass
            stream.close()
        elif kind == DATA_CONN:
            node.data_inbox.put(stream)
        elif kind == PGET_CONN and node.serves_pget:
            t = threading.Thread(
                target=node.serve_pget, args=(stream,),
                name=f"pget-{node.name}", daemon=True,
            )
            t.start()
        elif kind == RING_CONN and node.serves_pget:
            node.handle_ring(stream)
        else:
            stream.close()


class _BaseNode:
    """State and helpers shared by head and receivers."""

    serves_pget = False

    def __init__(
        self,
        name: str,
        plan: PipelinePlan,
        registry: Registry,
        listener: Listener,
        config: KascadeConfig,
        tracer=NULL_TRACER,
    ) -> None:
        self.name = name
        self.plan = coerce_stripe_plan(plan, owner=type(self).__name__)
        self.registry = registry
        self.listener = listener
        self.config = config
        self.tracer = tracer
        self.data_inbox: "queue.Queue[SocketStream]" = queue.Queue()
        self.stop_event = threading.Event()
        self.failover_requested = threading.Event()
        self.silent = False
        self.outcome = NodeOutcome(name=name)
        self._orphans: List[SocketStream] = []  # kept open after silent crash
        self._acceptor = _Acceptor(self)
        self.thread = threading.Thread(
            target=self._run_wrapper, name=f"node-{name}", daemon=True
        )

    def start(self) -> None:
        self._acceptor.start()
        self.thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self.thread.join(timeout)

    def shutdown(self) -> None:
        self.stop_event.set()
        if not self.silent:
            self.listener.close()

    def begin_failover(self) -> None:
        """Interrupt this node for a head re-root, preserving its sink.

        Unlike :meth:`shutdown` followed by the hard-abort path, a node
        stopped this way raises :class:`TransferAborted` out of its main
        loop *without* touching the sink — the caller detaches the sink
        (:meth:`detach_sink`), notes the node's stream offset, and builds
        a replacement node that resumes from both.  Must be followed by
        :meth:`join` before the listener port or sink are reused.
        """
        self.failover_requested.set()
        self.stop_event.set()
        if not self.silent:
            self.listener.close()

    # -- crash injection ------------------------------------------------

    def _die(self, mode: str) -> None:
        """Terminate this node as if it crashed (test/benchmark injection)."""
        self.outcome.crashed = True
        self.outcome.error = f"injected crash ({mode})"
        if mode == "silent":
            # Leave every socket open but stop all activity: peers must
            # discover the death via timeouts + unanswered pings.
            self.silent = True
            self.stop_event.set()
        else:
            # Abrupt process death: the OS closes everything (RST).
            self.stop_event.set()
            self.listener.close()
            self._close_everything()

    def _close_everything(self) -> None:
        raise NotImplementedError

    def _run_wrapper(self) -> None:
        try:
            self._run()
        except InjectedCrash as crash:
            self._die(crash.mode)
        except TransferAborted as exc:
            # Deliberate interruption (idle timeout or failover detach):
            # record quietly — the sink is left exactly as it was.
            self.outcome.error = str(exc)
            self.shutdown()
        except Exception as exc:  # noqa: BLE001 - node must record, not raise
            logger.exception("%s: node failed", self.name)
            self.outcome.error = f"{type(exc).__name__}: {exc}"
            self.shutdown()

    def _run(self) -> None:
        raise NotImplementedError


class HeadNode(_BaseNode):
    """The sending node: streams the source, serves PGET, owns the ring."""

    serves_pget = True

    def __init__(
        self,
        name: str,
        plan: PipelinePlan,
        registry: Registry,
        listener: Listener,
        config: KascadeConfig,
        source: Source,
        crash_gate: Optional[CrashGate] = None,
        tracer=NULL_TRACER,
        resume_offset: int = 0,
    ) -> None:
        super().__init__(name, plan, registry, listener, config, tracer)
        self.crash_gate = crash_gate
        # Overlap source reads with vectored sends (§III-A): blocking
        # sources get a prefetch stage; in-memory sources gain nothing
        # from one, and readahead_chunks=0 turns the stage off entirely.
        self._readahead: Optional[ReadAheadSource] = None
        if config.readahead_chunks > 0 and getattr(source, "blocking_io", True):
            source = ReadAheadSource(source, depth=config.readahead_chunks)
            self._readahead = source
        self.source = source
        self.state = NodeTransferState(name, config, source_kind=source.kind)
        if resume_offset:
            # Promoted-head resume (head failover): the stream restarts at
            # the live edge — the most-complete survivor's watermark.  The
            # ring window opens empty there, so a receiver whose GET lands
            # below it is sent FORGET and fetches the gap via PGET, which
            # the seekable resumed source serves by random access.
            self.state.buffer.note_advance(resume_offset)
        self.link = DownstreamLink(name, self.plan, registry, config,
                                   self.state, tracer)
        self.quit_requested = threading.Event()
        self.final_report: Optional[TransferReport] = None
        self._ring_event = threading.Event()
        self._ring_report: Optional[TransferReport] = None

    def request_quit(self) -> None:
        """User interruption: stop after the current chunk (QUIT path)."""
        self.quit_requested.set()

    # -- PGET and ring service (acceptor-driven) ------------------------

    def serve_pget(self, stream: SocketStream) -> None:
        """Serve a recovery range request from a rerouted receiver.

        When the source exposes a real file descriptor (``FileSource``),
        payload bytes are moved with ``sendfile`` — straight from the page
        cache to the socket, never entering this process.
        """
        cfg = self.config
        try:
            msg, _ = stream.recv_message(cfg.io_timeout + cfg.connect_timeout)
            if not isinstance(msg, PGet):
                raise ProtocolError(f"expected PGET, got {msg!r}")
            self.tracer.emit(tracing.PGET, self.name, offset=msg.offset,
                             detail=f"serve until={msg.until}")
            offer = self.state.answer_pget(msg.offset, msg.until)
            if offer.kind is OfferKind.FORGET:
                stream.send_message(Forget(offer.resume_at), timeout=cfg.io_timeout)
                return
            use_sendfile = HAS_SENDFILE and hasattr(self.source, "fileno")
            pos = msg.offset
            while pos < msg.until:
                size = min(cfg.chunk_size, msg.until - pos)
                if use_sendfile:
                    stream.send_frame_from_file(Data(pos, size), self.source,
                                                pos, timeout=cfg.report_timeout)
                    pos += size
                else:
                    piece = self.source.read_range(pos, size)
                    stream.send_message(Data(pos, len(piece)), piece,
                                        timeout=cfg.report_timeout)
                    pos += len(piece)
        except (TimeoutError, ConnectionError, WriteStalled, ProtocolError,
                NodeFailedError) as exc:
            logger.info("%s: PGET service aborted: %s", self.name, exc)
        finally:
            stream.close()

    def handle_ring(self, stream: SocketStream) -> None:
        """Receive the tail's final report on the ring-closure connection."""
        cfg = self.config
        try:
            msg, payload = stream.recv_message(cfg.io_timeout + cfg.connect_timeout)
            if not isinstance(msg, Report):
                raise ProtocolError(f"expected REPORT on ring, got {msg!r}")
            self._ring_report = TransferReport.decode(payload)
            self.tracer.emit(tracing.REPORT, self.name, detail="ring-closure")
            stream.send_message(Passed(), timeout=cfg.io_timeout)
            self._ring_event.set()
        except (TimeoutError, ConnectionError, WriteStalled, ProtocolError) as exc:
            logger.info("%s: ring report failed: %s", self.name, exc)
        finally:
            stream.close()

    # -- main loop -------------------------------------------------------

    def _run(self) -> None:
        cfg = self.config
        state = self.state
        bucket = None
        if cfg.bandwidth_limit is not None:
            from ..core.pacing import TokenBucket
            bucket = TokenBucket(cfg.bandwidth_limit)
        while not self.quit_requested.is_set():
            chunk = self.source.read_chunk(cfg.chunk_size)
            if not chunk:
                break
            if bucket is not None:
                delay = bucket.reserve(len(chunk), time.monotonic())
                if delay > 0 and self.quit_requested.wait(delay):
                    break
            off = state.offset
            state.on_data(off, chunk)
            if self.tracer.enabled:
                self.tracer.emit(tracing.CHUNK, self.name, offset=off,
                                 detail=f"read {len(chunk)}")
            if self.crash_gate is not None:
                mode = self.crash_gate(state.offset)
                if mode is not None:
                    raise InjectedCrash(mode)
            # Cork small chunks and push them in vectored batches; large
            # chunks cross the threshold immediately, keeping the
            # pipeline's chunk-by-chunk backpressure behaviour.
            if not self.link.send_data(off, chunk, flush=False):
                # Every receiver is dead or aborted: stop streaming.
                break
            if self.link.pending_bytes >= _HEAD_FLUSH_BYTES:
                self.link.flush()
        self.link.flush()
        if self._readahead is not None:
            # Streaming is over; the prefetch thread must not keep
            # pulling from the source while PGET service may still read.
            self._readahead.stop()
        total = state.offset
        aborting = self.quit_requested.is_set()
        if aborting:
            self.tracer.emit(tracing.QUIT, self.name, offset=total,
                             detail="user interrupt")
            state.on_quit()
        else:
            state.on_end(total)
            state.attach_source_digest()  # integrity mode: publish digest
        outcome = self.link.finish(total=total, quit_first=aborting)
        if outcome == "passed":
            # The tail's ring connection may still be in flight.
            self._ring_event.wait(cfg.report_timeout)
        if self._ring_report is not None:
            self.final_report = self._ring_report
        else:
            self.final_report = state.report
        self.outcome.ok = outcome == "passed" and not aborting
        self.outcome.bytes_received = total
        self.outcome.failures_detected = list(state.report.failures)
        if outcome != "passed":
            self.outcome.error = "no downstream completed the transfer"
        self.tracer.emit(tracing.DONE, self.name, offset=total,
                         detail="ok" if self.outcome.ok else "failed")
        state.on_passed() if state.phase in (Phase.ENDED, Phase.ABORTED) else None
        self.shutdown()

    def _close_everything(self) -> None:
        if self._readahead is not None:
            self._readahead.stop()
        self.link.close()


class ReceiverNode(_BaseNode):
    """A receiving node: stores the stream and forwards it downstream."""

    def __init__(
        self,
        name: str,
        plan: PipelinePlan,
        registry: Registry,
        listener: Listener,
        config: KascadeConfig,
        sink: Sink,
        crash_gate: Optional[CrashGate] = None,
        tracer=NULL_TRACER,
        resume_offset: int = 0,
    ) -> None:
        super().__init__(name, plan, registry, listener, config, tracer)
        #: The sink as handed in, before any writeback wrapping.
        self.raw_sink = sink
        # Overlap storage with the relay (§III-A): real sinks get a
        # background writeback stage.  NullSink is exempt (discarding
        # can't be overlapped), and sink_writeback_depth=0 keeps writes
        # synchronous on the relay thread, exactly as before.
        if config.sink_writeback_depth > 0 and not isinstance(sink, NullSink):
            sink = SinkWriter(
                sink,
                depth=config.sink_writeback_depth,
                pin_budget=config.sink_writeback_budget,
                tracer=tracer,
                owner=name,
            )
        self.sink = sink
        self.crash_gate = crash_gate
        self.state = NodeTransferState(name, config)
        if resume_offset:
            # Resuming after a head re-root: bytes up to ``resume_offset``
            # are already in the (retained) sink; the GET this node sends
            # on its first upstream connection asks for the remainder.
            self.state.buffer.note_advance(resume_offset)
            self.outcome.bytes_received = resume_offset
        self.link = DownstreamLink(name, self.plan, registry, config,
                                   self.state, tracer)
        self.upstream: Optional[SocketStream] = None

    def detach_sink(self) -> Sink:
        """Recover the raw sink after ``begin_failover()`` + ``join()``.

        Drains any writeback queue (so every byte counted in
        ``state.offset`` is really in the sink) and returns the inner
        sink still open, ready to be handed to the resumed node.
        """
        if isinstance(self.sink, SinkWriter):
            self.sink.detach()
        return self.raw_sink

    # -- upstream management ----------------------------------------------

    def _acquire_upstream(self) -> None:
        """Block until an inbound data connection exists, then GET on it."""
        deadline = time.monotonic() + self.config.report_timeout
        while self.upstream is None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransferAborted(
                    f"{self.name}: no upstream connection arrived"
                )
            try:
                stream = self.data_inbox.get(timeout=min(remaining, 0.2))
            except queue.Empty:
                if self.stop_event.is_set():
                    raise TransferAborted(f"{self.name}: shut down while idle")
                continue
            try:
                stream.send_message(Get(self.state.offset),
                                    timeout=self.config.io_timeout)
                self.upstream = stream
                self.tracer.emit(tracing.CONNECT, self.name,
                                 offset=self.state.offset, detail="upstream")
            except (WriteStalled, ConnectionError):
                stream.close()

    def _switch_upstream_if_replaced(self) -> bool:
        """If a newer inbound connection was queued, adopt it (the previous
        upstream was routed around).  Returns True if switched."""
        try:
            stream = self.data_inbox.get_nowait()
        except queue.Empty:
            return False
        if self.upstream is not None:
            self.upstream.close()
        self.upstream = None
        try:
            stream.send_message(Get(self.state.offset),
                                timeout=self.config.io_timeout)
            self.upstream = stream
            self.tracer.emit(tracing.CONNECT, self.name,
                             offset=self.state.offset, detail="upstream-replaced")
            return True
        except (WriteStalled, ConnectionError):
            stream.close()
            return False

    def _drop_upstream(self) -> None:
        if self.upstream is not None:
            self.upstream.close()
            self.upstream = None

    # -- recovery: PGET hole fetch ----------------------------------------

    def _fetch_hole_from_head(self, until: int) -> bool:
        """Fetch [offset, until) from the head after a FORGET (§III-D2).

        Returns False when the head answers FORGET too — the data is
        unrecoverable and this node (and everything downstream) aborts.
        """
        cfg = self.config
        head_addr = self.registry.address_of(self.plan.head)
        self.tracer.emit(tracing.PGET, self.name, peer=self.plan.head,
                         offset=self.state.offset, detail=f"until={until}")
        try:
            stream = connect(head_addr, PGET_CONN, cfg.connect_timeout,
                             tracer=self.tracer, owner=self.name,
                             peer=self.plan.head)
        except NodeFailedError:
            return False
        try:
            stream.send_message(PGet(self.state.offset, until),
                                timeout=cfg.io_timeout)
            while self.state.offset < until:
                msg, payload = stream.recv_message(cfg.report_timeout)
                if isinstance(msg, Forget):
                    return False
                if not isinstance(msg, Data):
                    raise ProtocolError(f"expected DATA from PGET, got {msg!r}")
                self._consume_chunk(msg.offset, payload)
            return True
        except (TimeoutError, ConnectionError, WriteStalled, ProtocolError):
            return False
        finally:
            stream.close()

    # -- data plane ---------------------------------------------------------

    def _consume_chunk(self, offset: int, payload, *, flush: bool = True) -> None:
        """Store and forward one chunk — the zero-copy relay step.

        ``payload`` is a memoryview into the upstream stream's pooled
        receive buffer.  The *same* view is retained by the ring buffer
        (recovery replay), passed to the sink, and queued on the
        downstream socket: no byte of it is copied in userspace.  The
        view pins its pool buffer until the ring evicts it and the send
        queue drains, at which point the pool may recycle it.

        ``flush=False`` corks the downstream frame: the main loop batches
        every chunk already decoded from one upstream read into a single
        vectored send before blocking again.
        """
        self.state.on_data(offset, payload)
        if self.tracer.enabled:
            self.tracer.emit(tracing.CHUNK, self.name, offset=offset,
                             detail=f"recv {len(payload)}")
        self.sink.write_chunk(payload)
        self.outcome.bytes_received = self.state.offset
        self.link.send_data(offset, payload, flush=flush)
        if self.crash_gate is not None:
            mode = self.crash_gate(self.state.offset)
            if mode is not None:
                raise InjectedCrash(mode)

    def _hard_abort(self, reason: str) -> None:
        """Unrecoverable data loss: QUIT both neighbours and die failed."""
        logger.info("%s: aborting: %s", self.name, reason)
        self.tracer.emit(tracing.QUIT, self.name, offset=self.state.offset,
                         detail=reason)
        if self.upstream is not None:
            try:
                self.upstream.send_message(Quit(), timeout=self.config.io_timeout)
            except (WriteStalled, ConnectionError):
                pass
        self.link.send_quit_best_effort()
        self.sink.abort()
        self.outcome.error = reason
        self._drop_upstream()
        self.shutdown()

    # -- main loop ------------------------------------------------------------

    def _run(self) -> None:
        cfg = self.config
        state = self.state
        try:
            upstream_report = self._stream_loop()
        except (SinkError, OSError) as exc:
            # Peer connection errors are handled inside the loop; what
            # escapes to here is local storage failing (ENOSPC from the
            # filesystem, a dead sink command) — §III-D treats that as
            # unrecoverable for this node: QUIT both neighbours.
            self._hard_abort(f"sink failure: {exc}")
            return
        if upstream_report is None:
            return  # the loop already hard-aborted and shut down

        # ---- report exchange phase ----
        aborted = state.phase is Phase.ABORTED
        state.merge_upstream_report(upstream_report)
        digest_ok = state.verify_against_report()
        if digest_ok is False:
            # Corrupted local copy: flag ourselves before forwarding the
            # report so the head learns, and fail this node's outcome.
            state.record_failure(self.name, "digest-mismatch")
            self.outcome.error = "stored data failed digest verification"
        # Settle storage BEFORE acknowledging the transfer: a writeback
        # queue still draining may yet hit ENOSPC, and claiming success
        # (PASSED) for bytes that never reached disk would be a lie.
        if aborted:
            self.sink.abort()
        else:
            try:
                self.sink.finish()
            except (SinkError, OSError) as exc:
                self._hard_abort(f"sink failure: {exc}")
                return
        outcome = self.link.finish(total=state.offset, quit_first=aborted)
        if outcome == "tail":
            self._ring_deliver(state.report.encode())
        self.outcome.ok = (
            not aborted and state.complete and digest_ok is not False
        )
        # Emit DONE *before* acknowledging upstream: PASSED flows tail to
        # head, so DONE events order causally (tail first, head last) in
        # both the runtime and the simulator traces.
        self.tracer.emit(tracing.DONE, self.name, offset=state.offset,
                         detail="ok" if self.outcome.ok else "failed")
        if self.upstream is not None:
            try:
                self.upstream.send_message(Passed(), timeout=cfg.io_timeout)
            except (WriteStalled, ConnectionError):
                pass
        state.on_passed()
        self.outcome.failures_detected = list(state.report.failures)
        self._drop_upstream()
        self.shutdown()

    def _stream_loop(self) -> Optional[bytes]:
        """Receive/store/forward until END+report; ``None`` = aborted.

        Storage errors (``SinkError``/``OSError``) propagate to the
        caller, which maps them to the hard-abort path.
        """
        cfg = self.config
        state = self.state
        upstream_report: Optional[bytes] = None
        #: Non-DATA frame decoded while draining a batch; handled next turn.
        carried: Optional[tuple] = None
        last_progress = time.monotonic()

        while True:
            if self.failover_requested.is_set():
                # Detach for a head re-root: escape without touching the
                # sink or QUITting neighbours — the caller rebuilds us.
                raise TransferAborted(f"{self.name}: detached for failover")
            if state.phase is Phase.ENDED and upstream_report is not None:
                return upstream_report
            if self.upstream is None:
                carried = None
                self._acquire_upstream()
                last_progress = time.monotonic()
                continue
            try:
                if carried is not None:
                    msg, payload = carried
                    carried = None
                else:
                    msg, payload = self.upstream.recv_message(cfg.io_timeout)
            except TimeoutError:
                if self._switch_upstream_if_replaced():
                    last_progress = time.monotonic()
                elif self.failover_requested.is_set():
                    pass  # loop top raises TransferAborted, sink untouched
                elif time.monotonic() - last_progress > cfg.report_timeout:
                    self._hard_abort("upstream silent beyond deadline")
                    return None
                continue
            except FramingError as exc:
                # A poisoned byte stream cannot be resynchronised: drop
                # the connection and wait for a clean reconnect, exactly
                # as if the peer had died.  Garbage from a confused or
                # malicious peer must never take the node down.
                logger.info("%s: dropping upstream on bad frame: %s",
                            self.name, exc)
                self._drop_upstream()
                continue
            except ConnectionError:
                self._drop_upstream()
                continue
            last_progress = time.monotonic()

            if isinstance(msg, Data):
                # Batch the burst: every frame the last socket read
                # already decoded is stored + corked, then the whole run
                # leaves in one vectored send.  At small chunk sizes this
                # divides the per-chunk syscall and flush overhead by the
                # number of frames per read.
                self._consume_chunk(msg.offset, payload, flush=False)
                try:
                    nxt = self.upstream.try_recv_message()
                    while nxt is not None and isinstance(nxt[0], Data):
                        self._consume_chunk(nxt[0].offset, nxt[1], flush=False)
                        nxt = self.upstream.try_recv_message()
                    carried = nxt
                except FramingError as exc:
                    logger.info("%s: dropping upstream on bad frame: %s",
                                self.name, exc)
                    self._drop_upstream()
                self.link.flush()
            elif isinstance(msg, End):
                if state.phase is Phase.STREAMING:
                    state.on_end(msg.total)
                elif state.total_size != msg.total:
                    raise ProtocolError(
                        f"{self.name}: conflicting END totals "
                        f"{state.total_size} vs {msg.total}"
                    )
                # else: duplicate END from a rerouted upstream — ignore.
            elif isinstance(msg, Report):
                # Detach from the pooled receive buffer: the report is
                # held across the rest of the transfer (rare + small, so
                # the copy is fine — and frees the pool segment it pins).
                upstream_report = bytes(payload)
                self.tracer.emit(tracing.REPORT, self.name, detail="upstream")
            elif isinstance(msg, Forget):
                self.tracer.emit(tracing.FORGET, self.name,
                                 offset=msg.min_offset, detail="received")
                if not self._fetch_hole_from_head(msg.min_offset):
                    self._hard_abort("data lost beyond recovery (FORGET)")
                    return None
                # Hole filled; re-request the live stream from upstream.
                try:
                    self.upstream.send_message(Get(state.offset),
                                               timeout=cfg.io_timeout)
                except (WriteStalled, ConnectionError):
                    self._drop_upstream()
            elif isinstance(msg, Quit):
                self.tracer.emit(tracing.QUIT, self.name,
                                 offset=state.offset, detail="received")
                state.on_quit()
                # Graceful (user-interrupt) aborts are followed by a REPORT.
                try:
                    rmsg, rpayload = self.upstream.recv_message(cfg.io_timeout)
                except (TimeoutError, ConnectionError):
                    self._hard_abort("upstream quit without report")
                    return None
                if isinstance(rmsg, Report):
                    return bytes(rpayload)
                self._hard_abort("upstream quit without report")
                return None
            else:
                raise ProtocolError(f"{self.name}: unexpected {msg!r} from upstream")

    def _ring_deliver(self, report_bytes: bytes) -> None:
        """Tail duty: close the ring and deliver the report to the head."""
        cfg = self.config
        try:
            stream = connect(self.registry.address_of(self.plan.head),
                             RING_CONN, cfg.connect_timeout,
                             tracer=self.tracer, owner=self.name,
                             peer=self.plan.head)
        except NodeFailedError:
            logger.info("%s: head unreachable for ring report", self.name)
            return
        try:
            stream.send_message(Report(len(report_bytes)), report_bytes,
                                timeout=cfg.report_timeout)
            msg, _ = stream.recv_message(cfg.report_timeout)
            if not isinstance(msg, Passed):
                logger.info("%s: unexpected ring answer %r", self.name, msg)
        except (TimeoutError, ConnectionError, WriteStalled) as exc:
            logger.info("%s: ring delivery failed: %s", self.name, exc)
        finally:
            stream.close()

    def _close_everything(self) -> None:
        self._drop_upstream()
        self.link.close()
