"""Node name → TCP address registry.

On a real deployment this is derived from the host list given to
``kascade -N``; in the local runtime each "node" is a thread listening on
an ephemeral localhost port.  The registry is the only piece of global
knowledge every node receives at startup (the paper copies the node list
to all targets before the transfer, §III-B).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from ..core.errors import PipelineError
from .transport import Address


class Registry:
    """Immutable mapping of node names to their listen addresses."""

    def __init__(self, entries: Mapping[str, Address]) -> None:
        self._entries: Dict[str, Address] = dict(entries)

    def address_of(self, node: str) -> Address:
        try:
            return self._entries[node]
        except KeyError:
            raise PipelineError(f"unknown node {node!r} in registry") from None

    def __contains__(self, node: str) -> bool:
        return node in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> Iterable[str]:
        return self._entries.keys()
