"""TCP transport for the real Kascade runtime.

Connections carry a one-byte *preamble* identifying their purpose, sent by
the initiating side immediately after connect:

========  =====================================================
``D``     data connection: upstream pushes the stream; the
          *accepting* node speaks first with GET(offset) (§III-C)
``P``     liveness probe: initiator sends PING, expects PONG
``G``     PGET recovery fetch (to the head node)
``R``     ring-closure report connection (tail → head)
========  =====================================================

The paper's protocol needs failure detection via timeouts on stalled reads
and writes (§III-D1).  Timeouts must not corrupt framing, so this module
provides :class:`SocketStream`, whose receive path feeds a
:class:`~repro.core.framing.FrameDecoder` (partial frames survive a
timeout) and whose send path keeps its position across timeouts so a
write can resume after a successful liveness ping.

Zero-copy data plane
--------------------
The send side is a scatter/gather queue of memoryviews flushed with
``socket.sendmsg`` — one syscall pushes a header *and* its payload (and
any backlog) without ever concatenating them in userspace.  The receive
side reads with ``recv_into`` straight into the decoder's pooled buffer,
and the decoder hands payloads out as memoryviews of that same buffer.
A relay therefore moves a chunk from its upstream socket to its
downstream socket with **zero** userspace payload copies; the
:mod:`repro.core.perfstats` counters make that invariant testable.
``send_frame_from_file`` goes one step further for the head's recovery
service and streams payload bytes kernel-to-kernel with ``os.sendfile``.
"""

from __future__ import annotations

import os
import select
import socket
from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import BinaryIO, Deque, Optional, Tuple

from ..core.buffers import BufferPool
from ..core.errors import NodeFailedError, ProtocolError
from ..core.framing import FrameDecoder, Payload, encode_header, payload_size
from ..core.messages import Message
from ..core.perfstats import PerfStats, get_stats

#: Connection preamble bytes.
DATA_CONN = b"D"
PING_CONN = b"P"
PGET_CONN = b"G"
RING_CONN = b"R"

#: Max buffers handed to one ``sendmsg`` call — comfortably below any
#: platform IOV_MAX (1024 on Linux).
_SENDMSG_BATCH = 64

#: Whether this platform can stream file payloads kernel-to-kernel.
HAS_SENDFILE = hasattr(os, "sendfile")


class WriteStalled(Exception):
    """A send did not complete within the I/O timeout.

    The pending buffers stay queued in the :class:`SocketStream`; calling
    ``flush_pending`` resumes exactly where the send stopped — mid-buffer
    if need be — so a false-positive stall (congestion, not death) loses
    no data.
    """


@dataclass(frozen=True)
class Address:
    host: str
    port: int

    def as_tuple(self) -> Tuple[str, int]:
        return (self.host, self.port)


class SocketStream:
    """Framed, timeout-aware wrapper around a connected TCP socket."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        pool: Optional[BufferPool] = None,
        stats: Optional[PerfStats] = None,
    ) -> None:
        self._sock = sock
        self._stats = stats if stats is not None else get_stats()
        self._pool = pool if pool is not None else BufferPool(stats=self._stats)
        self._decoder = FrameDecoder(pool=self._pool, stats=self._stats)
        #: Scatter/gather send queue: memoryviews awaiting the wire, in
        #: order.  Partial sends slice the head view (zero-copy).
        self._send_queue: Deque[memoryview] = deque()
        self._pending_bytes = 0
        self._sendmsg = getattr(sock, "sendmsg", None)
        self._closed = False
        # Disable Nagle: control messages (GET, PING, PASSED) are tiny and
        # latency-critical; bulk DATA frames are large enough not to care.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets in tests
            pass

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def recv_message(self, timeout: Optional[float]) -> Tuple[Message, Payload]:
        """Receive one complete frame.

        The payload is a memoryview into a pooled receive buffer (see
        ``docs/PROTOCOL.md``, "Data path & buffer ownership"): valid for
        as long as the caller holds it, recycled only after release.

        Raises ``TimeoutError`` if no complete frame arrives in time
        (already-buffered partial bytes are kept for the next call),
        ``ConnectionError`` if the peer closed or reset the connection.
        """
        while True:
            item = self._decoder.try_pop()
            if item is not None:
                return item
            view = self._decoder.writable()
            self._sock.settimeout(timeout)
            try:
                n = self._sock.recv_into(view)
            except socket.timeout:
                raise TimeoutError("read stalled") from None
            except (BlockingIOError, InterruptedError):
                # EAGAIN/EINTR are transient: a signal interrupted the
                # call (and its handler raised no exception) or a
                # spurious wakeup fired — retry, exactly as the
                # sendfile path does.
                continue
            except OSError as exc:
                raise ConnectionError(f"receive failed: {exc}") from exc
            finally:
                view.release()
            if n == 0:
                raise ConnectionError("peer closed connection")
            self._stats.recv_syscall(n)
            self._decoder.bytes_written(n)

    def try_recv_message(self) -> Optional[Tuple[Message, Payload]]:
        """Non-blocking poll for an already-buffered frame."""
        return self._decoder.try_pop()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _enqueue(self, data) -> None:
        if len(data) == 0:
            return
        # Always take our *own* view of the buffer (a second export, not a
        # copy): flush_pending releases queue entries once sent, and it
        # must never release a view the caller still holds — e.g. the ring
        # buffer's retained chunk that the relay path passes straight in.
        self._send_queue.append(memoryview(data))
        self._pending_bytes += len(data)

    def send_message(
        self,
        msg: Message,
        payload: Payload = b"",
        *,
        timeout: Optional[float] = None,
        flush: bool = True,
    ) -> None:
        """Queue and send one frame; raises :class:`WriteStalled` on timeout.

        The payload buffer is queued by reference (no copy); it must stay
        unchanged until fully flushed.  After a stall, the caller decides
        (via ping) whether to retry with :meth:`flush_pending` or declare
        the peer dead.

        ``flush=False`` only queues the frame — no syscall, no failure —
        so a relay can cork a burst of small DATA frames and push them
        all with one vectored :meth:`flush_pending`.
        """
        expected = payload_size(msg)
        if len(payload) != expected:
            raise ProtocolError(
                f"{msg!r} requires {expected} payload bytes, got {len(payload)}"
            )
        self._enqueue(encode_header(msg))
        self._enqueue(payload)
        self._stats.frames_sent += 1
        if flush:
            self.flush_pending(timeout=timeout)

    def send_raw(self, data: bytes, *, timeout: Optional[float] = None) -> None:
        """Queue and send raw bytes (used for the connection preamble)."""
        self._enqueue(data)
        self.flush_pending(timeout=timeout)

    def flush_pending(self, *, timeout: Optional[float] = None) -> None:
        """Push queued buffers; resumable across :class:`WriteStalled`.

        Uses vectored ``sendmsg`` where available so a header + payload
        (plus any backlog) leave in one syscall; falls back to ``send`` of
        the head buffer otherwise.
        """
        queue = self._send_queue
        while queue:
            self._sock.settimeout(timeout)
            try:
                if self._sendmsg is not None:
                    sent = self._sendmsg(list(islice(queue, _SENDMSG_BATCH)))
                else:  # pragma: no cover - platforms without sendmsg
                    sent = self._sock.send(queue[0])
            except socket.timeout:
                raise WriteStalled(
                    f"{self._pending_bytes} bytes still pending"
                ) from None
            except (BlockingIOError, InterruptedError):
                # Transient EAGAIN/EINTR: nothing was sent, the queue is
                # untouched — retry the vectored send (same contract as
                # the sendfile loop in send_frame_from_file).
                continue
            except OSError as exc:
                raise ConnectionError(f"send failed: {exc}") from exc
            self._stats.send_syscall(sent)
            self._pending_bytes -= sent
            while sent > 0:
                head = queue[0]
                if sent >= len(head):
                    sent -= len(head)
                    queue.popleft()
                    head.release()
                else:
                    queue[0] = head[sent:]  # zero-copy resume point
                    sent = 0

    def send_frame_from_file(
        self,
        msg: Message,
        fileobj: BinaryIO,
        offset: int,
        *,
        timeout: Optional[float] = None,
    ) -> None:
        """Send a payload frame whose bytes come straight from a file.

        Flushes the header (and any backlog), then moves the payload with
        ``os.sendfile`` — kernel to kernel, no userspace pass at all.
        Falls back to a read + queued send where sendfile is unavailable.
        Raises :class:`WriteStalled` if the peer stops draining and
        ``ConnectionError`` if the file cannot supply the promised bytes.
        """
        need = payload_size(msg)
        self._enqueue(encode_header(msg))
        self._stats.frames_sent += 1
        self.flush_pending(timeout=timeout)
        if need == 0:
            return
        if not HAS_SENDFILE or not hasattr(fileobj, "fileno"):
            # Sources expose positional read_range; raw files only seek.
            if hasattr(fileobj, "read_range"):
                data = fileobj.read_range(offset, need)
            else:
                fileobj.seek(offset)
                data = fileobj.read(need)
            if len(data) != need:
                raise ConnectionError(
                    f"file supplied {len(data)} of {need} payload bytes"
                )
            self._enqueue(data)
            self.flush_pending(timeout=timeout)
            return
        out_fd = self._sock.fileno()
        in_fd = fileobj.fileno()
        sent_total = 0
        while sent_total < need:
            # settimeout puts the socket in non-blocking mode, so wait for
            # writability ourselves; sendfile has no timeout of its own.
            _, writable, _ = select.select([], [self._sock], [], timeout)
            if not writable:
                raise WriteStalled(
                    f"sendfile stalled with {need - sent_total} bytes pending"
                )
            try:
                n = os.sendfile(out_fd, in_fd, offset + sent_total,
                                need - sent_total)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError as exc:
                raise ConnectionError(f"sendfile failed: {exc}") from exc
            if n == 0:
                raise ConnectionError(
                    f"file ended {need - sent_total} bytes short of the frame"
                )
            self._stats.sendfile_syscall(n)
            sent_total += n

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            # Release queue views and the decoder's buffer so the pool's
            # segments stop being pinned by this stream.
            while self._send_queue:
                self._send_queue.popleft().release()
            self._pending_bytes = 0
            self._decoder.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SocketStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Preamble byte → human-readable connection kind, for trace events.
CONN_KIND_NAMES = {
    DATA_CONN: "data",
    PING_CONN: "ping",
    PGET_CONN: "pget",
    RING_CONN: "ring",
}


def connect(
    addr: Address,
    kind: bytes,
    timeout: float,
    *,
    tracer=None,
    owner: str = "",
    peer: str = "",
) -> SocketStream:
    """Open a connection to ``addr`` and send the preamble ``kind``.

    Raises :class:`NodeFailedError` if the peer is unreachable — the
    caller treats that as a dead node (§III-D: connect-refused counts as
    a detected failure).

    When ``tracer`` is given (and enabled), a CONNECT event naming the
    connection kind is emitted on ``owner``'s timeline after the
    preamble is accepted.
    """
    try:
        sock = socket.create_connection(addr.as_tuple(), timeout=timeout)
    except OSError as exc:
        raise NodeFailedError(f"{addr.host}:{addr.port}", f"connect failed: {exc}")
    stream = SocketStream(sock)
    try:
        stream.send_raw(kind, timeout=timeout)
    except (ConnectionError, WriteStalled) as exc:
        stream.close()
        raise NodeFailedError(f"{addr.host}:{addr.port}", f"preamble failed: {exc}")
    if tracer is not None and tracer.enabled:
        tracer.emit("connect", owner, peer=peer or f"{addr.host}:{addr.port}",
                    detail=CONN_KIND_NAMES.get(kind, "?"))
    return stream


class Listener:
    """Listening socket accepting preambled connections."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 64):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._closed = False
        self.address = Address(*self._sock.getsockname()[:2])

    def fileno(self) -> int:
        """The listening socket's descriptor (reactor registration)."""
        return self._sock.fileno()

    def set_nonblocking(self) -> None:
        """Switch to non-blocking mode for event-loop use."""
        self._sock.setblocking(False)

    def raw_accept(self) -> socket.socket:
        """Accept one connection without reading its preamble.

        Non-blocking callers (the event-loop acceptor) get the raw
        ``BlockingIOError`` when nothing is pending and read the
        preamble themselves under reactor control.
        """
        conn, _peer = self._sock.accept()
        return conn

    def accept(self, timeout: Optional[float]) -> Tuple[bytes, SocketStream]:
        """Accept one connection and read its preamble byte.

        Returns ``(kind, stream)``.  Raises ``TimeoutError`` if nothing
        arrives, ``ConnectionError`` once closed.
        """
        self._sock.settimeout(timeout)
        while True:
            try:
                conn, _peer = self._sock.accept()
                break
            except socket.timeout:
                raise TimeoutError("accept timed out") from None
            except (BlockingIOError, InterruptedError):
                continue  # transient EAGAIN/EINTR: retry the accept
            except OSError as exc:
                raise ConnectionError(f"listener closed: {exc}") from exc
        conn.settimeout(timeout if timeout is not None else 5.0)
        while True:
            try:
                kind = conn.recv(1)
                break
            except (BlockingIOError, InterruptedError):
                continue  # transient EAGAIN/EINTR: retry the preamble read
            except OSError as exc:
                conn.close()
                raise ConnectionError(f"preamble read failed: {exc}") from exc
        if not kind:
            conn.close()
            raise ConnectionError("peer closed before preamble")
        return kind, SocketStream(conn)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed
