"""TCP transport for the real Kascade runtime.

Connections carry a one-byte *preamble* identifying their purpose, sent by
the initiating side immediately after connect:

========  =====================================================
``D``     data connection: upstream pushes the stream; the
          *accepting* node speaks first with GET(offset) (§III-C)
``P``     liveness probe: initiator sends PING, expects PONG
``G``     PGET recovery fetch (to the head node)
``R``     ring-closure report connection (tail → head)
========  =====================================================

The paper's protocol needs failure detection via timeouts on stalled reads
and writes (§III-D1).  Timeouts must not corrupt framing, so this module
provides :class:`SocketStream`, whose receive path feeds a
:class:`~repro.core.framing.FrameDecoder` (partial frames survive a
timeout) and whose send path keeps its position across timeouts so a
write can resume after a successful liveness ping.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import NodeFailedError, ProtocolError
from ..core.framing import FrameDecoder, encode_header, payload_size
from ..core.messages import Message

#: Connection preamble bytes.
DATA_CONN = b"D"
PING_CONN = b"P"
PGET_CONN = b"G"
RING_CONN = b"R"

_RECV_SIZE = 256 * 1024


class WriteStalled(Exception):
    """A send did not complete within the I/O timeout.

    The pending bytes stay queued in the :class:`SocketStream`; calling
    ``flush_pending`` resumes exactly where the send stopped, so a
    false-positive stall (congestion, not death) loses no data.
    """


@dataclass(frozen=True)
class Address:
    host: str
    port: int

    def as_tuple(self) -> Tuple[str, int]:
        return (self.host, self.port)


class SocketStream:
    """Framed, timeout-aware wrapper around a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._decoder = FrameDecoder()
        self._pending_send = b""
        self._closed = False
        # Disable Nagle: control messages (GET, PING, PASSED) are tiny and
        # latency-critical; bulk DATA frames are large enough not to care.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets in tests
            pass

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def recv_message(self, timeout: Optional[float]) -> Tuple[Message, bytes]:
        """Receive one complete frame.

        Raises ``TimeoutError`` if no complete frame arrives in time
        (already-buffered partial bytes are kept for the next call),
        ``ConnectionError`` if the peer closed or reset the connection.
        """
        while True:
            item = self._decoder.try_pop()
            if item is not None:
                return item
            self._sock.settimeout(timeout)
            try:
                data = self._sock.recv(_RECV_SIZE)
            except socket.timeout:
                raise TimeoutError("read stalled") from None
            except OSError as exc:
                raise ConnectionError(f"receive failed: {exc}") from exc
            if not data:
                raise ConnectionError("peer closed connection")
            self._decoder.feed(data)

    def try_recv_message(self) -> Optional[Tuple[Message, bytes]]:
        """Non-blocking poll for an already-buffered frame."""
        return self._decoder.try_pop()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send_message(
        self,
        msg: Message,
        payload: bytes = b"",
        *,
        timeout: Optional[float] = None,
    ) -> None:
        """Queue and send one frame; raises :class:`WriteStalled` on timeout.

        After a stall, the caller decides (via ping) whether to retry with
        :meth:`flush_pending` or declare the peer dead.
        """
        expected = payload_size(msg)
        if len(payload) != expected:
            raise ProtocolError(
                f"{msg!r} requires {expected} payload bytes, got {len(payload)}"
            )
        self._pending_send += encode_header(msg) + payload
        self.flush_pending(timeout=timeout)

    def send_raw(self, data: bytes, *, timeout: Optional[float] = None) -> None:
        """Queue and send raw bytes (used for the connection preamble)."""
        self._pending_send += data
        self.flush_pending(timeout=timeout)

    def flush_pending(self, *, timeout: Optional[float] = None) -> None:
        """Push queued bytes; resumable across :class:`WriteStalled`."""
        while self._pending_send:
            self._sock.settimeout(timeout)
            try:
                sent = self._sock.send(self._pending_send)
            except socket.timeout:
                raise WriteStalled(
                    f"{len(self._pending_send)} bytes still pending"
                ) from None
            except OSError as exc:
                raise ConnectionError(f"send failed: {exc}") from exc
            self._pending_send = self._pending_send[sent:]

    @property
    def pending_bytes(self) -> int:
        return len(self._pending_send)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SocketStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(addr: Address, kind: bytes, timeout: float) -> SocketStream:
    """Open a connection to ``addr`` and send the preamble ``kind``.

    Raises :class:`NodeFailedError` if the peer is unreachable — the
    caller treats that as a dead node (§III-D: connect-refused counts as
    a detected failure).
    """
    try:
        sock = socket.create_connection(addr.as_tuple(), timeout=timeout)
    except OSError as exc:
        raise NodeFailedError(f"{addr.host}:{addr.port}", f"connect failed: {exc}")
    stream = SocketStream(sock)
    try:
        stream.send_raw(kind, timeout=timeout)
    except (ConnectionError, WriteStalled) as exc:
        stream.close()
        raise NodeFailedError(f"{addr.host}:{addr.port}", f"preamble failed: {exc}")
    return stream


class Listener:
    """Listening socket accepting preambled connections."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 64):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._closed = False
        self.address = Address(*self._sock.getsockname()[:2])

    def accept(self, timeout: Optional[float]) -> Tuple[bytes, SocketStream]:
        """Accept one connection and read its preamble byte.

        Returns ``(kind, stream)``.  Raises ``TimeoutError`` if nothing
        arrives, ``ConnectionError`` once closed.
        """
        self._sock.settimeout(timeout)
        try:
            conn, _peer = self._sock.accept()
        except socket.timeout:
            raise TimeoutError("accept timed out") from None
        except OSError as exc:
            raise ConnectionError(f"listener closed: {exc}") from exc
        conn.settimeout(timeout if timeout is not None else 5.0)
        try:
            kind = conn.recv(1)
        except OSError as exc:
            conn.close()
            raise ConnectionError(f"preamble read failed: {exc}") from exc
        if not kind:
            conn.close()
            raise ConnectionError("peer closed before preamble")
        return kind, SocketStream(conn)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed
