"""One entry point for every Kascade backend.

The repo grew three ways to run a broadcast — the real TCP runtime
(:class:`repro.runtime.LocalBroadcast`), the protocol-exact simulator
(:class:`repro.protosim.ProtoBroadcast`), and the fluid-flow evaluation
harness — each with its own constructor shape and result type.  This
module is the blessed facade over the first two, the ones that execute
the actual protocol:

    result = repro.run_broadcast(
        BytesSource(payload), ["n2", "n3", "n4"],
        backend="simnet", trace=True,
    )
    print(result.trace.failure_chronology())

Both backends return the *same* :class:`~repro.runtime.BroadcastResult`
shape (ok / duration / total_bytes / report / per-node outcomes /
trace / perfstats), so a crash-injection scenario and its simulated twin
are compared field-for-field — and event-for-event via the trace.

``trace`` accepts:

* ``None`` — tracing disabled (the zero-overhead no-op recorder);
* ``True`` — record into a fresh :class:`TraceCollector`, returned on
  ``result.trace``;
* a :class:`TraceCollector` — record into the given collector;
* a path (``str`` / ``os.PathLike``) — record, then write the JSONL
  timeline there after the run.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Optional, Sequence, Union

from .core.config import DEFAULT_CONFIG, KascadeConfig
from .core.errors import KascadeError
from .core.plan import ChainPlan
from .core.recovery import SourceKind
from .core.sinks import Sink
from .core.sources import Source
from .core.tracing import NULL_TRACER, TraceCollector
from .runtime.cluster import BroadcastResult, CrashPlan, LocalBroadcast
from .runtime.node import NodeOutcome

__all__ = ["BACKENDS", "BACKEND_CATALOGUE", "STRIPE_CATALOGUE",
           "BroadcastSession", "TraceSpec", "run_broadcast"]

#: What the ``trace`` argument accepts.
TraceSpec = Union[None, bool, TraceCollector, str, os.PathLike]

#: Every runnable backend with a one-line description — the unknown-
#: backend error renders this catalogue so the caller can pick without
#: opening the docs (same UX as ``bench_loopback.py --scenario``).
BACKEND_CATALOGUE = {
    "local": "threads + loopback TCP in this process (default)",
    "procs": "one OS process per node, real signals for crash injection",
    "daemon": "session on a persistent agent fleet (chunk cache, late join)",
    "simnet": "protocol-exact discrete-event simulator (no real I/O)",
}

BACKENDS = tuple(BACKEND_CATALOGUE)


def _unknown_backend(backend: str) -> KascadeError:
    lines = [f"unknown backend {backend!r}; known backends:"]
    lines += [f"  {name:<7} {desc}" for name, desc in
              BACKEND_CATALOGUE.items()]
    return KascadeError("\n".join(lines))


#: How each backend realises ``stripes > 1`` — rendered into the error
#: when a requested combination cannot be honored (same catalogue UX as
#: :func:`_unknown_backend`).
STRIPE_CATALOGUE = {
    "local": "k in-process chains; needs a seekable-file source",
    "procs": "k listeners per agent; any source (the head spools it)",
    "daemon": "k per-session listeners per fleet agent; any source",
    "simnet": "k simulated channels; needs a seekable-file source",
}


def _stripes_unsupported(backend: str, stripes: int,
                         reason: str) -> KascadeError:
    lines = [f"backend {backend!r} cannot run stripes={stripes}: {reason}; "
             f"stripe support by backend:"]
    lines += [f"  {name:<7} {desc}" for name, desc in
              STRIPE_CATALOGUE.items()]
    return KascadeError("\n".join(lines))


def _resolve_trace(trace: TraceSpec):
    """Normalize a trace spec to ``(recorder, jsonl_path_or_None)``."""
    if trace is None or trace is False:
        return NULL_TRACER, None
    if trace is True:
        return TraceCollector(), None
    if isinstance(trace, TraceCollector):
        return trace, None
    if isinstance(trace, (str, os.PathLike)):
        return TraceCollector(), os.fspath(trace)
    raise TypeError(
        f"trace must be None, True, a TraceCollector, or a path; "
        f"got {type(trace).__name__}"
    )


class BroadcastSession:
    """A configured broadcast, runnable on any backend.

    Parameters mirror :class:`~repro.runtime.LocalBroadcast`; ``backend``
    selects execution on localhost TCP threads (``"local"``), on one OS
    process per node with real crash signals (``"procs"``), or on the
    protocol-exact discrete-event simulator (``"simnet"``); ``trace``
    enables the structured event timeline (see module docs).

    ``data_plane`` overrides :attr:`KascadeConfig.data_plane` for this
    session: ``"threaded"`` (default, the conformance reference) or
    ``"evloop"`` (one reactor thread per process, kernel-path relay —
    see :mod:`repro.runtime.evloop`).  Real-I/O backends only.
    ``stripes`` overrides :attr:`KascadeConfig.stripes` the same way.

    ``plan`` supplies a pre-built :class:`~repro.core.plan.ChainPlan`
    (who feeds whom, per stripe) instead of having the backend derive
    one from ``order`` and ``config.stripes``; the executed plan is
    returned on ``result.plan`` either way.  Striped sessions
    (``config.stripes > 1`` or a multi-stripe plan) on the local and
    simnet backends need a seekable-file source — the stripe views read
    the stream at k interleaved offsets (see :data:`STRIPE_CATALOGUE`).

    Backend-specific keyword options:

    * ``local``: none beyond the common set;
    * ``procs``: ``window``, ``spawn_retries``, ``startup_timeout``,
      ``backoff``, ``heartbeat_interval``, ``heartbeat_timeout``,
      ``progress_every``, ``output_template``, ``python``,
      ``bind_host``, ``agent_args``, ``stderr_dir`` — see
      :class:`repro.deploy.ProcBroadcast`.  ``crashes`` become real
      signals (``"close"`` → SIGKILL, ``"silent"`` → SIGSTOP) and
      ``sink_factory`` is rejected (sinks cannot cross process
      boundaries; use ``output_template``);
    * ``simnet``: ``bandwidth`` (bytes/s per link, default 125e6),
      ``latency`` (seconds per hop, default 1e-4), ``sim_horizon``
      (simulated-seconds cap, default 3600).
    """

    def __init__(
        self,
        source: Source,
        receivers: Sequence[str],
        *,
        backend: str = "local",
        trace: TraceSpec = None,
        sink_factory: Optional[Callable[[str], Sink]] = None,
        config: KascadeConfig = DEFAULT_CONFIG,
        head: str = "n1",
        order: str = "given",
        crashes: Sequence = (),
        data_plane: Optional[str] = None,
        stripes: Optional[int] = None,
        plan: Optional[ChainPlan] = None,
        **backend_opts,
    ) -> None:
        if backend not in BACKENDS:
            raise _unknown_backend(backend)
        if data_plane is not None and data_plane != config.data_plane:
            # Convenience override: ``run_broadcast(..., data_plane="evloop")``
            # without the caller building a config copy by hand.
            config = dataclasses.replace(config, data_plane=data_plane)
        if stripes is not None and stripes != config.stripes:
            # Same convenience for ``run_broadcast(..., stripes=4)``.
            config = dataclasses.replace(config, stripes=stripes)
        if backend == "simnet" and config.data_plane != "threaded":
            raise KascadeError(
                "simnet is a discrete-event simulator; data_plane selects a "
                "real-I/O engine and only applies to local/procs backends"
            )
        stripes = plan.stripe_count if plan is not None else config.stripes
        if stripes > 1 and backend in ("local", "simnet") \
                and source.kind is not SourceKind.SEEKABLE_FILE:
            raise _stripes_unsupported(
                backend, stripes,
                f"splitting a {type(source).__name__} into stripes needs "
                f"random access (source.kind is {source.kind.name})"
            )
        self.backend = backend
        self.source = source
        self.receivers = tuple(receivers)
        self.sink_factory = sink_factory
        self.config = config
        self.head = head
        self.order = order
        self.crashes = tuple(crashes)
        self.plan = plan
        self.tracer, self.trace_path = _resolve_trace(trace)
        self.backend_opts = backend_opts

    # ------------------------------------------------------------------

    def run(self, timeout: float = 120.0) -> BroadcastResult:
        """Execute the broadcast; ``timeout`` bounds the local backend's
        wall clock (the simnet backend is bounded by ``sim_horizon``)."""
        if self.backend == "local":
            result = self._run_local(timeout)
        elif self.backend == "procs":
            result = self._run_procs(timeout)
        elif self.backend == "daemon":
            result = self._run_daemon(timeout)
        else:
            result = self._run_simnet()
        if self.trace_path is not None and isinstance(self.tracer,
                                                      TraceCollector):
            self.tracer.to_jsonl(self.trace_path)
        return result

    def _run_local(self, timeout: float) -> BroadcastResult:
        opts = dict(self.backend_opts)
        allow_head_chaos = bool(opts.pop("allow_head_chaos", False))
        if opts:
            raise KascadeError(
                f"local backend takes no extra options: {sorted(opts)}"
            )
        cluster = LocalBroadcast(
            self.source, self.receivers,
            sink_factory=self.sink_factory,
            config=self.config,
            head=self.head,
            order=self.order,
            crashes=[self._as_crash_plan(c) for c in self.crashes],
            tracer=self.tracer,
            plan=self.plan,
            allow_head_chaos=allow_head_chaos,
        )
        return cluster.run(timeout=timeout)

    #: Keyword options the procs backend forwards to
    #: :class:`repro.deploy.ProcBroadcast` (everything else is rejected).
    _PROCS_OPTS = frozenset({
        "window", "spawn_retries", "startup_timeout", "backoff",
        "heartbeat_interval", "heartbeat_timeout", "progress_every",
        "output_template", "python", "bind_host", "agent_args",
        "stderr_dir", "coordinator_replicas", "allow_head_chaos",
    })

    def _run_procs(self, timeout: float) -> BroadcastResult:
        from .deploy.chaos import MODE_TO_SIGNAL, ChaosPlan
        from .deploy.coordinator import ProcBroadcast

        if self.sink_factory is not None:
            raise KascadeError(
                "procs backend cannot ship a sink_factory across process "
                "boundaries; use output_template='/path/{node}.out' "
                "(digests are computed agent-side either way)"
            )
        unknown = set(self.backend_opts) - self._PROCS_OPTS
        if unknown:
            raise KascadeError(f"unknown procs options: {sorted(unknown)}")

        def as_chaos(crash) -> ChaosPlan:
            if isinstance(crash, ChaosPlan):
                return crash
            plan = self._as_crash_plan(crash)  # normalizes tuples too
            return ChaosPlan(plan.node, after_bytes=plan.after_bytes,
                             sig=MODE_TO_SIGNAL[plan.mode])

        cluster = ProcBroadcast(
            self.source, self.receivers,
            config=self.config,
            head=self.head,
            order=self.order,
            chaos=[as_chaos(c) for c in self.crashes],
            tracer=self.tracer,
            plan=self.plan,
            **self.backend_opts,
        )
        return cluster.run(timeout=timeout)

    #: Keyword options the daemon backend understands.  ``server`` is
    #: the interesting one: a started :class:`repro.daemon.DaemonServer`
    #: to submit this broadcast into as one more session on its warm
    #: fleet (skipping launch entirely); without it an ephemeral fleet
    #: is launched for this one session and torn down after.
    _DAEMON_OPTS = frozenset({
        "window", "spawn_retries", "startup_timeout", "backoff",
        "heartbeat_interval", "heartbeat_timeout", "progress_every",
        "output_template", "python", "bind_host", "stderr_dir",
        "cache_bytes", "server", "late_join", "session_name",
        "coordinator_replicas",
    })

    def _run_daemon(self, timeout: float) -> BroadcastResult:
        from .daemon.server import DaemonServer, LateJoin
        from .deploy.chaos import MODE_TO_SIGNAL, ChaosPlan

        if self.sink_factory is not None:
            raise KascadeError(
                "daemon backend cannot ship a sink_factory across process "
                "boundaries; use output_template='/path/{node}.out' "
                "(digests are computed agent-side either way)"
            )
        if self.order != "given":
            raise KascadeError("daemon backend supports order='given' only")
        if self.plan is not None:
            raise KascadeError(
                "daemon backend plans per session (the warm partition is "
                "not knowable up front); pre-built plans are not supported"
            )
        unknown = set(self.backend_opts) - self._DAEMON_OPTS
        if unknown:
            raise KascadeError(f"unknown daemon options: {sorted(unknown)}")

        def as_chaos(crash) -> ChaosPlan:
            if isinstance(crash, ChaosPlan):
                return crash
            plan = self._as_crash_plan(crash)
            return ChaosPlan(plan.node, after_bytes=plan.after_bytes,
                             sig=MODE_TO_SIGNAL[plan.mode])

        opts = dict(self.backend_opts)
        server = opts.pop("server", None)
        late_join = tuple(
            lj if isinstance(lj, LateJoin) else LateJoin(lj[0], int(lj[1]))
            for lj in opts.pop("late_join", ())
        )
        submit_kwargs = dict(
            head=self.head,
            output_template=opts.pop("output_template", None),
            chaos=[as_chaos(c) for c in self.crashes],
            late_join=late_join,
            session=opts.pop("session_name", None),
            trace=self.tracer,
            timeout=timeout,
        )
        if server is not None:
            if opts:
                raise KascadeError(
                    f"options {sorted(opts)} configure a fleet launch and "
                    f"do not apply when submitting to an existing server"
                )
            return server.submit(self.source, self.receivers,
                                 **submit_kwargs)
        fleet = (self.head, *self.receivers,
                 *(lj.node for lj in late_join))
        with DaemonServer(fleet, config=self.config, **opts) as ephemeral:
            return ephemeral.submit(self.source, self.receivers,
                                    **submit_kwargs)

    def _run_simnet(self) -> BroadcastResult:
        from .protosim.broadcast import ProtoBroadcast, ProtoCrash

        if self.order != "given":
            raise KascadeError("simnet backend supports order='given' only")
        opts = dict(self.backend_opts)
        sim_horizon = opts.pop("sim_horizon", 3600.0)
        unknown = set(opts) - {"bandwidth", "latency"}
        if unknown:
            raise KascadeError(f"unknown simnet options: {sorted(unknown)}")
        sim = ProtoBroadcast(
            self.source, self.receivers,
            sink_factory=self.sink_factory,
            config=self.config,
            head=self.head,
            crashes=[self._as_proto_crash(c) for c in self.crashes],
            plan=self.plan,
            **opts,
        )
        proto = sim.run(sim_horizon=sim_horizon, tracer=self.tracer)
        outcomes = {
            name: NodeOutcome(
                name=name,
                ok=proto.node_ok.get(name, False),
                bytes_received=proto.node_bytes.get(name, 0),
                crashed=name in proto.crashed,
                error=proto.node_errors.get(name),
                failures_detected=list(proto.report.failures),
            )
            for name in (self.head, *self.receivers)
        }
        return BroadcastResult(
            ok=proto.ok,
            duration=proto.sim_time,
            total_bytes=proto.total_bytes,
            report=proto.report,
            outcomes=outcomes,
            trace=proto.trace,
            # No real I/O happens in the simulator; what matters is the
            # kernel's own work: events dispatched, dead heap entries
            # skipped, solver rounds vs full rebuilds.
            perfstats=proto.perfstats,
            backend="simnet",
            plan=sim.chain_plan,
        )

    # -- crash-plan coercion --------------------------------------------

    @staticmethod
    def _as_crash_plan(crash) -> CrashPlan:
        if isinstance(crash, CrashPlan):
            return crash
        # Duck-type ProtoCrash and plain tuples for convenience.
        if hasattr(crash, "after_bytes"):
            if crash.after_bytes is None:
                raise KascadeError(
                    "local backend supports byte-triggered crashes only"
                )
            return CrashPlan(crash.node, crash.after_bytes, crash.mode)
        node, after_bytes, *rest = crash
        return CrashPlan(node, after_bytes, *(rest or ["close"]))

    @staticmethod
    def _as_proto_crash(crash):
        from .protosim.broadcast import ProtoCrash

        if isinstance(crash, ProtoCrash):
            return crash
        if isinstance(crash, CrashPlan):
            return ProtoCrash(crash.node, after_bytes=crash.after_bytes,
                              mode=crash.mode)
        node, after_bytes, *rest = crash
        return ProtoCrash(node, after_bytes=after_bytes,
                          mode=(rest[0] if rest else "close"))


def run_broadcast(
    source: Source,
    receivers: Sequence[str],
    *,
    backend: str = "local",
    trace: TraceSpec = None,
    timeout: float = 120.0,
    **kwargs,
) -> BroadcastResult:
    """Run one broadcast and return its :class:`BroadcastResult`.

    The one-call form of :class:`BroadcastSession` — the blessed entry
    point replacing direct use of ``LocalBroadcast``/``broadcast()`` and
    ``ProtoBroadcast`` (see module docs for the ``trace`` forms and the
    per-backend options).
    """
    session = BroadcastSession(source, receivers, backend=backend,
                               trace=trace, **kwargs)
    return session.run(timeout=timeout)
