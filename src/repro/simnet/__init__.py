"""Fluid-flow discrete-event network simulator.

Substitute for the paper's Grid'5000 testbed: topologies from
:mod:`repro.topology`, a generator-coroutine DES kernel, and a weighted
max–min fair bandwidth allocator with chain-coupled streams that model
store-and-forward pipelines.
"""

from .engine import Engine, Event, Interrupted, Process, Timeout
from .fabric import (
    Fabric,
    FixedSupply,
    HostDied,
    Stream,
    StreamCancelled,
    StreamSupply,
    Supply,
)
from .flows import FlowSpec, MaxMinProblem, solve_max_min
from .nodes import HeadRx, NodeRx
from .trace import FabricTracer, StreamTrace
from .validation import chunk_pipeline_completion, chunk_pipeline_times

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "Interrupted",
    "Fabric",
    "Stream",
    "Supply",
    "FixedSupply",
    "StreamSupply",
    "HostDied",
    "StreamCancelled",
    "FlowSpec",
    "MaxMinProblem",
    "solve_max_min",
    "NodeRx",
    "FabricTracer",
    "StreamTrace",
    "chunk_pipeline_completion",
    "chunk_pipeline_times",
    "HeadRx",
]
