"""Message channels for protocol-exact simulation.

Where the fluid fabric abstracts data into rates, these channels carry
the protocol's *actual messages* (header objects + payload bytes) with
in-order delivery, per-message service time, and failure semantics that
mirror TCP's:

* a message occupies the channel for ``header/bw + payload/bw`` after a
  one-way latency — deliveries serialize like a byte stream;
* when an endpoint's host dies, the other side's pending and future
  receives raise :class:`ChannelClosed` (a reset), and sends into the
  void raise once the death is known;
* receives take an optional timeout, raising :class:`ChannelTimeout` —
  the primitive the protocol's failure detection is built on.

Connection establishment mimics the runtime's preamble scheme: a
:class:`SimNetHub` owns per-node listeners; ``connect`` yields a pair of
endpoints after the path latency.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..core.errors import KascadeError
from .engine import Engine, Event, Timeout

_HEADER_BYTES = 32  # generous per-message framing cost


class ChannelClosed(KascadeError):
    """The peer closed the connection or its host died (TCP reset)."""


class ChannelTimeout(KascadeError):
    """No message arrived within the receive timeout."""


class _Endpoint:
    """One side of a bidirectional channel."""

    def __init__(self, channel: "SimChannel", side: int) -> None:
        self._channel = channel
        self._side = side
        self.inbox: Deque[Tuple[object, bytes]] = deque()
        self.inbox_bytes = 0
        self._recv_waiter: Optional[Event] = None
        self._drain_waiter: Optional[Event] = None
        self.closed = False

    # -- sending ---------------------------------------------------------

    def send(self, msg: object, payload: bytes = b"") -> None:
        """Fire-and-forget send for small control messages.

        Ignores the flow-control window (control frames are tiny);
        raises :class:`ChannelClosed` on a dead channel.
        """
        self._channel._transmit(self._side, msg, payload)

    def send_wait(self, msg: object, payload: bytes = b"",
                  timeout: Optional[float] = None):
        """Sub-generator: windowed send — the data-plane primitive.

        Blocks while the peer's receive window is full, exactly like a
        TCP send against a non-reading peer; raises
        :class:`ChannelTimeout` if the stall outlasts ``timeout`` (the
        runtime's ``WriteStalled``) and :class:`ChannelClosed` on reset.
        """
        channel = self._channel
        peer = channel.ends[1 - self._side]
        size = _HEADER_BYTES + len(payload)
        while True:
            if channel.failed or self.closed or peer.closed:
                raise ChannelClosed("send on dead channel")
            outstanding = (
                peer.inbox_bytes + channel._in_flight[self._side]
            )
            if outstanding + size <= channel.window or outstanding == 0:
                channel._transmit(self._side, msg, payload)
                return
            drained = channel.engine.event(name="chan-drain")
            self._drain_waiter_set(peer, drained)
            token = None
            if timeout is not None:
                token = channel.engine.call_after(
                    timeout,
                    lambda ev=drained: ev.fail(ChannelTimeout("send stalled"))
                    if not ev.triggered else None,
                )
            try:
                yield drained
            finally:
                if peer._drain_waiter is drained:
                    peer._drain_waiter = None
                if token is not None:
                    channel.engine._cancel_timeout(token)

    @staticmethod
    def _drain_waiter_set(peer: "_Endpoint", event: Event) -> None:
        peer._drain_waiter = event

    # -- receiving ---------------------------------------------------------

    def recv(self, timeout: Optional[float] = None):
        """Sub-generator (use ``yield from``): next ``(msg, payload)``.

        Raises :class:`ChannelTimeout` after ``timeout`` simulated
        seconds, :class:`ChannelClosed` when the peer is gone and the
        inbox is drained.
        """
        engine = self._channel.engine
        peer = self._channel.ends[1 - self._side]
        while True:
            if self.inbox:
                msg, payload = self.inbox.popleft()
                self.inbox_bytes -= _HEADER_BYTES + len(payload)
                self._wake_drainer()
                return msg, payload
            # A graceful peer close still delivers in-flight messages
            # (TCP semantics: close after send flushes); a failure does
            # not (a reset drops the queue).
            in_flight = self._channel._in_flight[1 - self._side]
            if self.closed or self._channel.failed or (
                    peer.closed and in_flight == 0):
                raise ChannelClosed("peer gone")
            arrival = engine.event(name="chan-recv")
            self._recv_waiter = arrival
            token = None
            if timeout is not None:
                token = engine.call_after(
                    timeout,
                    lambda ev=arrival: ev.fail(ChannelTimeout("recv timeout"))
                    if not ev.triggered else None,
                )
            try:
                yield arrival
            finally:
                self._recv_waiter = None
                if token is not None:
                    engine._cancel_timeout(token)
            # Loop: either a message arrived or the channel failed (the
            # notification re-checks state at the top).

    def _wake_drainer(self) -> None:
        waiter, self._drain_waiter = self._drain_waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)

    def _notify(self) -> None:
        waiter, self._recv_waiter = self._recv_waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)
        self._wake_drainer()

    def close(self) -> None:
        """Close this side; the peer sees ChannelClosed once drained."""
        if not self.closed:
            self.closed = True
            self._channel._on_side_closed(self._side)


class SimChannel:
    """A bidirectional, in-order message channel between two hosts."""

    def __init__(self, engine: Engine, a: str, b: str,
                 bandwidth: float, latency: float,
                 window: float = 512 * 1024,
                 hub: "Optional[SimNetHub]" = None) -> None:
        self.engine = engine
        self.hub = hub
        self.hosts = (a, b)
        self.bandwidth = bandwidth
        self.latency = latency
        self.window = window
        self.failed = False
        self.ends = (_Endpoint(self, 0), _Endpoint(self, 1))
        self._busy_until = [0.0, 0.0]   # per direction
        self._in_flight = [0, 0]        # bytes scheduled, not delivered

    def _transmit(self, side: int, msg: object, payload: bytes) -> None:
        if self.failed or self.ends[side].closed:
            raise ChannelClosed("send on dead channel")
        if self.ends[1 - side].closed:
            raise ChannelClosed("peer closed")
        engine = self.engine
        if self.hub is not None and self.hub.message_log is not None:
            self.hub.message_log.append(
                (engine.now, self.hosts[side], self.hosts[1 - side],
                 msg, len(payload))
            )
        size = _HEADER_BYTES + len(payload)
        service = size / self.bandwidth
        start = max(engine.now, self._busy_until[side])
        done = start + service
        self._busy_until[side] = done
        self._in_flight[side] += size
        deliver_at = done + self.latency

        def deliver() -> None:
            self._in_flight[side] -= size
            if self.failed:
                return
            peer = self.ends[1 - side]
            if peer.closed:
                return
            peer.inbox.append((msg, payload))
            peer.inbox_bytes += size
            peer._notify()

        engine.call_at(deliver_at, deliver)

    def _on_side_closed(self, side: int) -> None:
        # Wake a peer blocked in recv/send so it observes the close.
        self.ends[1 - side]._notify()
        self.ends[side]._wake_drainer()

    def fail(self) -> None:
        """Hard failure (host death): both sides reset immediately.

        In-flight and queued messages are lost, matching a crashed
        process whose kernel resets the connection.
        """
        if self.failed:
            return
        self.failed = True
        for end in self.ends:
            end.inbox.clear()
            end.inbox_bytes = 0
            end._notify()


class SimListener:
    """Accept queue for inbound connections to one node."""

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name
        self._queue: Deque[Tuple[bytes, _Endpoint]] = deque()
        self._waiter: Optional[Event] = None
        self.closed = False

    def accept(self, timeout: Optional[float] = None):
        """Sub-generator: next ``(kind, endpoint)`` inbound connection."""
        while True:
            if self._queue:
                return self._queue.popleft()
            if self.closed:
                raise ChannelClosed("listener closed")
            arrival = self.engine.event(name=f"accept:{self.name}")
            self._waiter = arrival
            token = None
            if timeout is not None:
                token = self.engine.call_after(
                    timeout,
                    lambda ev=arrival: ev.fail(ChannelTimeout("accept timeout"))
                    if not ev.triggered else None,
                )
            try:
                yield arrival
            finally:
                self._waiter = None
                if token is not None:
                    self.engine._cancel_timeout(token)

    def _offer(self, kind: bytes, endpoint: _Endpoint) -> None:
        self._queue.append((kind, endpoint))
        waiter, self._waiter = self._waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)

    def close(self) -> None:
        self.closed = True
        waiter, self._waiter = self._waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.fail(ChannelClosed("listener closed"))


class SimNetHub:
    """Registry of nodes, listeners, and live channels."""

    def __init__(self, engine: Engine, *, bandwidth: float = 125e6,
                 latency: float = 1e-4) -> None:
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency = latency
        self.listeners: Dict[str, SimListener] = {}
        self.dead: set[str] = set()
        self.channels: list[SimChannel] = []
        #: When not None, every transmitted message is appended as
        #: ``(send_time, src, dst, message, payload_len)`` — the raw
        #: material for message sequence charts.
        self.message_log: Optional[list] = None

    def start_tracing(self) -> list:
        self.message_log = []
        return self.message_log

    def register(self, name: str) -> SimListener:
        listener = SimListener(self.engine, name)
        self.listeners[name] = listener
        return listener

    def connect(self, src: str, dst: str, kind: bytes):
        """Sub-generator: connect ``src`` → ``dst``; returns the client
        endpoint after one latency.  Raises :class:`ChannelClosed` when
        the destination is dead or not listening (connection refused)."""
        yield Timeout(self.latency)
        if src in self.dead:
            raise ChannelClosed(f"{src} is dead")
        if dst in self.dead or dst not in self.listeners:
            raise ChannelClosed(f"connect refused by {dst}")
        listener = self.listeners[dst]
        if listener.closed:
            raise ChannelClosed(f"connect refused by {dst}")
        channel = SimChannel(self.engine, src, dst,
                             self.bandwidth, self.latency, hub=self)
        self.channels.append(channel)
        listener._offer(kind, channel.ends[1])
        return channel.ends[0]

    def kill(self, name: str) -> None:
        """Host death: reset every channel touching it, close its
        listener (silent deaths keep the listener: see ``kill_silent``)."""
        self.dead.add(name)
        listener = self.listeners.get(name)
        if listener is not None:
            listener.close()
        for channel in self.channels:
            if name in channel.hosts:
                channel.fail()

    def kill_silent(self, name: str) -> None:
        """Hang, not crash: channels stay up but nothing answers.

        The node's processes must be stopped by the caller; peers can
        only discover the death through timeouts and unanswered pings.
        """
        self.dead.add(name)
