"""Message channels for protocol-exact simulation.

Where the fluid fabric abstracts data into rates, these channels carry
the protocol's *actual messages* (header objects + payload bytes) with
in-order delivery, per-message service time, and failure semantics that
mirror TCP's:

* a message occupies the channel for ``header/bw + payload/bw`` after a
  one-way latency — deliveries serialize like a byte stream;
* when an endpoint's host dies, the other side's pending and future
  receives raise :class:`ChannelClosed` (a reset), and sends into the
  void raise once the death is known;
* receives take an optional timeout, raising :class:`ChannelTimeout` —
  the primitive the protocol's failure detection is built on.

Connection establishment mimics the runtime's preamble scheme: a
:class:`SimNetHub` owns per-node listeners; ``connect`` yields a pair of
endpoints after the path latency.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Deque, Dict, Optional, Tuple

from ..core.errors import KascadeError
from .engine import _CALL, Engine, Event, Timeout

_HEADER_BYTES = 32  # generous per-message framing cost


class ChannelClosed(KascadeError):
    """The peer closed the connection or its host died (TCP reset)."""


class ChannelTimeout(KascadeError):
    """No message arrived within the receive timeout."""


class _Endpoint:
    """One side of a bidirectional channel."""

    def __init__(self, channel: "SimChannel", side: int) -> None:
        self._channel = channel
        self._side = side
        self.inbox: Deque[Tuple[object, bytes]] = deque()
        self.inbox_bytes = 0
        self._recv_waiter: Optional[Event] = None
        self._drain_waiter: Optional[Event] = None
        # Receive-timeout watchdog: ``recv`` records its deadline here
        # instead of arming (and almost always cancelling) a heap timer
        # per call; one persistent timer per endpoint re-arms itself
        # toward the recorded deadline.  See ``_deadline_fired``.
        self._recv_deadline: Optional[float] = None
        self._wd_token: Optional[int] = None    # armed timer's cancel token
        self._wd_at = 0.0                       # ... and its fire time
        # Reusable arrival event for recv_begin/recv_finish: a channel
        # has at most one receiver waiting at a time, so one Event per
        # endpoint (reset between waits) replaces a pool borrow/recycle
        # round trip per blocked receive.
        self._arrival: Optional[Event] = None
        # Same watchdog scheme for the send side: a flow-controlled
        # sender blocked on *this* endpoint's window records its stall
        # deadline here instead of arming a heap timer per stall (the
        # head stalls once per chunk in the pipelined steady state).
        self._drain_deadline: Optional[float] = None
        self._dwd_token: Optional[int] = None
        self._dwd_at = 0.0
        self._drain_ev: Optional[Event] = None
        self.closed = False

    # -- sending ---------------------------------------------------------

    def send(self, msg: object, payload: bytes = b"") -> None:
        """Fire-and-forget send for small control messages.

        Ignores the flow-control window (control frames are tiny);
        raises :class:`ChannelClosed` on a dead channel.
        """
        self._channel._transmit(self._side, msg, payload)

    def send_wait(self, msg: object, payload: bytes = b"",
                  timeout: Optional[float] = None):
        """Sub-generator: windowed send — the data-plane primitive.

        Blocks while the peer's receive window is full, exactly like a
        TCP send against a non-reading peer; raises
        :class:`ChannelTimeout` if the stall outlasts ``timeout`` (the
        runtime's ``WriteStalled``) and :class:`ChannelClosed` on reset.
        """
        channel = self._channel
        peer = channel.ends[1 - self._side]
        size = _HEADER_BYTES + len(payload)
        while True:
            if channel.failed or self.closed or peer.closed:
                raise ChannelClosed("send on dead channel")
            outstanding = (
                peer.inbox_bytes + channel._in_flight[self._side]
            )
            if outstanding + size <= channel.window or outstanding == 0:
                channel._transmit(self._side, msg, payload)
                return
            drained = peer.drain_begin(timeout)
            try:
                yield drained
            finally:
                peer.drain_finish()

    def drain_begin(self, timeout: Optional[float] = None) -> Event:
        """Arm a wait for *this* endpoint's receive window to drain.

        The send-side twin of :meth:`recv_begin`: the blocked sender
        yields the returned event and calls :meth:`drain_finish` when
        resumed.  ``ChannelTimeout`` ("send stalled") surfaces at the
        yield via the drain watchdog when the stall outlasts ``timeout``.
        """
        engine = self._channel.engine
        drained = self._drain_ev
        if drained is None:
            self._drain_ev = drained = Event(engine, name="chan-drain")
        else:
            drained._done = False
            drained._value = None
            drained._exc = None
        self._drain_waiter = drained
        if timeout is not None:
            deadline = engine.now + timeout
            self._drain_deadline = deadline
            if self._dwd_token is None or deadline < self._dwd_at:
                self._arm_drain_watchdog(deadline)
        return drained

    def drain_finish(self) -> None:
        self._drain_waiter = None
        self._drain_deadline = None

    def _arm_drain_watchdog(self, deadline: float) -> None:
        engine = self._channel.engine
        if self._dwd_token is not None:
            engine._cancel_timeout(self._dwd_token)
        self._dwd_token = engine.call_at1(
            deadline, self._drain_deadline_fired, None)
        self._dwd_at = deadline

    def _drain_deadline_fired(self, _unused) -> None:
        self._dwd_token = None
        deadline = self._drain_deadline
        if deadline is None:
            return
        engine = self._channel.engine
        if deadline > engine.now:     # progress since armed: chase it
            self._arm_drain_watchdog(deadline)
            return
        waiter = self._drain_waiter
        if waiter is not None and not waiter.triggered:
            waiter.fail(ChannelTimeout("send stalled"))

    def try_send(self, msg: object, payload: bytes = b"") -> bool:
        """Windowed send without blocking — the data-plane fast path.

        Transmits and returns True when the peer's window has room (the
        common case: window ≫ chunk), else returns False so the caller
        falls back to the :meth:`send_wait` sub-generator.  Raises
        :class:`ChannelClosed` exactly when ``send_wait`` would; the
        dispatch order on the wire is identical either way, because
        ``send_wait`` with an open window also transmits synchronously.
        """
        channel = self._channel
        side = self._side
        peer = channel.ends[1 - side]
        if channel.failed or self.closed or peer.closed:
            raise ChannelClosed("send on dead channel")
        size = _HEADER_BYTES + len(payload)
        in_flight = channel._in_flight
        outstanding = peer.inbox_bytes + in_flight[side]
        if outstanding + size > channel.window and outstanding != 0:
            return False
        # Inlined ``_transmit_sized`` + the engine push: this is the
        # per-chunk data-plane send, worth flattening five calls into
        # straight-line code.  Semantics are identical: same message-log
        # entry, same busy-until/in-flight accounting, same (time, seq)
        # queue entry the generic path would have produced.
        engine = channel.engine
        now = engine.now
        hub = channel.hub
        if hub is not None and hub.message_log is not None:
            hub.message_log.append(
                (now, channel.hosts[side], channel.hosts[1 - side],
                 msg, size - _HEADER_BYTES))
        start = channel._busy_until[side]
        if start < now:
            start = now
        done = start + size / channel.bandwidth
        channel._busy_until[side] = done
        in_flight[side] += size
        when = done + channel.latency
        engine._seq = seq = engine._seq + 1
        if when > now:
            heappush(engine._heap,
                     (when, seq, _CALL, channel._deliver,
                      (side, msg, payload, size)))
        else:
            engine._immediate.append(
                (seq, _CALL, channel._deliver, (side, msg, payload, size)))
        return True

    # -- receiving ---------------------------------------------------------

    def recv(self, timeout: Optional[float] = None):
        """Sub-generator (use ``yield from``): next ``(msg, payload)``.

        Raises :class:`ChannelTimeout` after ``timeout`` simulated
        seconds, :class:`ChannelClosed` when the peer is gone and the
        inbox is drained.
        """
        while True:
            item = self.recv_nowait()
            if item is not None:
                return item
            arrival = self.recv_begin(timeout)
            try:
                yield arrival
            finally:
                self.recv_finish()
            # Loop: either a message arrived or the channel failed
            # (``recv_nowait`` re-checks state at the top).

    def recv_begin(self, timeout: Optional[float] = None) -> Event:
        """Arm a bare wait for the next message; returns the Event to yield.

        This is the blocking half of :meth:`recv` without the
        sub-generator: the caller checks :meth:`recv_nowait` first,
        then does ``yield endpoint.recv_begin(t)`` directly from its own
        run loop, calls :meth:`recv_finish` (in a ``finally``), and
        re-polls ``recv_nowait`` — looping on ``None`` for spurious
        wakes, exactly as ``recv`` itself loops.  ``ChannelTimeout`` /
        ``ChannelClosed`` surface at the yield / the re-poll just as
        they would from ``recv``.
        """
        engine = self._channel.engine
        arrival = self._arrival
        if arrival is None:
            self._arrival = arrival = Event(engine, name="chan-recv")
        else:
            arrival._done = False
            arrival._value = None
            arrival._exc = None
        self._recv_waiter = arrival
        if timeout is not None:
            deadline = engine.now + timeout
            self._recv_deadline = deadline
            if self._wd_token is None or deadline < self._wd_at:
                self._arm_watchdog(deadline)
        return arrival

    def recv_finish(self) -> None:
        """Detach the wait armed by :meth:`recv_begin`.

        The waiter slot and the recorded deadline must not outlive the
        wait (the armed watchdog may outlive it — it checks both).
        """
        self._recv_waiter = None
        self._recv_deadline = None

    def _arm_watchdog(self, deadline: float) -> None:
        """(Re-)arm the single watchdog timer to fire at ``deadline``.

        Invariant: while a timed wait with deadline D is pending, the
        armed timer fires at or before D — arming earlier cancels the
        old entry (rare: only when a shorter timeout follows a longer
        one on the same endpoint); arming later is a no-op because the
        earlier fire re-arms itself toward D.
        """
        engine = self._channel.engine
        if self._wd_token is not None:
            engine._cancel_timeout(self._wd_token)
        self._wd_token = engine.call_at1(deadline, self._deadline_fired, None)
        self._wd_at = deadline

    def _disarm_watchdog(self) -> None:
        """Cancel both deadline watchdogs (receive and drain).

        Called when this endpoint can no longer time out — close, channel
        failure, silent host death — so a leftover armed timer cannot
        advance the clock past the last real event of a run.
        """
        if self._wd_token is not None:
            self._channel.engine._cancel_timeout(self._wd_token)
            self._wd_token = None
        if self._dwd_token is not None:
            self._channel.engine._cancel_timeout(self._dwd_token)
            self._dwd_token = None

    def _deadline_fired(self, _unused) -> None:
        """Watchdog tick: fail the waiter iff its deadline truly passed.

        Fires at the deadline recorded by the *first* timed ``recv``;
        when later receives have moved the deadline forward (progress
        happened), re-arms at the current deadline instead of failing —
        so a streaming endpoint costs one timer per timeout-interval of
        simulated time rather than one per message.  The failure time is
        exact: the final arm lands on the recorded deadline itself.
        """
        self._wd_token = None
        deadline = self._recv_deadline
        if deadline is None:          # nobody is waiting (or no timeout)
            return
        engine = self._channel.engine
        if deadline > engine.now:     # progress since armed: chase it
            self._arm_watchdog(deadline)
            return
        waiter = self._recv_waiter
        if waiter is not None and not waiter.triggered:
            waiter.fail(ChannelTimeout("recv timeout"))

    def recv_nowait(self) -> Optional[Tuple[object, bytes]]:
        """Non-blocking receive — the inbox-ready fast path.

        Returns the next ``(msg, payload)`` when one is queued, ``None``
        when a blocking :meth:`recv` would have to wait.  Raises
        :class:`ChannelClosed` exactly when ``recv`` would.  This is the
        synchronous prefix of ``recv`` without the sub-generator
        machinery: callers avoid a generator allocation per message on
        the (hot) path where data is already waiting.
        """
        if self.inbox:
            msg, payload = self.inbox.popleft()
            self.inbox_bytes -= _HEADER_BYTES + len(payload)
            self._wake_drainer()
            return msg, payload
        channel = self._channel
        peer = channel.ends[1 - self._side]
        if self.closed or channel.failed or (
                peer.closed and channel._in_flight[1 - self._side] == 0):
            raise ChannelClosed("peer gone")
        return None

    def _wake_drainer(self) -> None:
        waiter, self._drain_waiter = self._drain_waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)

    def _notify(self) -> None:
        waiter, self._recv_waiter = self._recv_waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)
        self._wake_drainer()

    def close(self) -> None:
        """Close this side; the peer sees ChannelClosed once drained."""
        if not self.closed:
            self.closed = True
            self._disarm_watchdog()
            self._channel._on_side_closed(self._side)


class SimChannel:
    """A bidirectional, in-order message channel between two hosts."""

    def __init__(self, engine: Engine, a: str, b: str,
                 bandwidth: float, latency: float,
                 window: float = 512 * 1024,
                 hub: "Optional[SimNetHub]" = None) -> None:
        self.engine = engine
        self.hub = hub
        self.hosts = (a, b)
        self.bandwidth = bandwidth
        self.latency = latency
        self.window = window
        self.failed = False
        self.ends = (_Endpoint(self, 0), _Endpoint(self, 1))
        self._busy_until = [0.0, 0.0]   # per direction
        self._in_flight = [0, 0]        # bytes scheduled, not delivered

    def _transmit(self, side: int, msg: object, payload: bytes) -> None:
        if self.failed or self.ends[side].closed:
            raise ChannelClosed("send on dead channel")
        if self.ends[1 - side].closed:
            raise ChannelClosed("peer closed")
        self._transmit_sized(side, msg, payload, _HEADER_BYTES + len(payload))

    def _transmit_sized(self, side: int, msg: object, payload: bytes,
                        size: int) -> None:
        """Liveness-checked transmit core (callers verified the channel)."""
        engine = self.engine
        hub = self.hub
        if hub is not None and hub.message_log is not None:
            hub.message_log.append(
                (engine.now, self.hosts[side], self.hosts[1 - side],
                 msg, size - _HEADER_BYTES)
            )
        service = size / self.bandwidth
        start = self._busy_until[side]
        now = engine.now
        if start < now:
            start = now
        done = start + service
        self._busy_until[side] = done
        self._in_flight[side] += size
        engine.call_at1(done + self.latency, self._deliver,
                        (side, msg, payload, size))

    def _deliver(self, item: Tuple[int, object, bytes, int]) -> None:
        side, msg, payload, size = item
        self._in_flight[side] -= size
        if self.failed:
            return
        peer = self.ends[1 - side]
        if peer.closed:
            return
        peer.inbox.append((msg, payload))
        peer.inbox_bytes += size
        # Inlined ``peer._notify()``: this runs once per delivered
        # message, and the generic Event.succeed/_flush path costs four
        # calls for what is two appends here.  The resume still goes
        # through the engine's immediate queue, so dispatch order is
        # identical to the generic path.
        waiter = peer._recv_waiter
        if waiter is not None:
            peer._recv_waiter = None
            if not waiter._done:
                waiter._done = True
                waiters = waiter._waiters
                if waiters:
                    engine = self.engine
                    for proc in waiters:
                        engine._schedule_resume(proc, None)
                    waiters.clear()
        if peer._drain_waiter is not None:
            peer._wake_drainer()

    def _on_side_closed(self, side: int) -> None:
        # Wake a peer blocked in recv/send so it observes the close.
        self.ends[1 - side]._notify()
        self.ends[side]._wake_drainer()

    def fail(self) -> None:
        """Hard failure (host death): both sides reset immediately.

        In-flight and queued messages are lost, matching a crashed
        process whose kernel resets the connection.
        """
        if self.failed:
            return
        self.failed = True
        for end in self.ends:
            end.inbox.clear()
            end.inbox_bytes = 0
            end._disarm_watchdog()
            end._notify()


class SimListener:
    """Accept queue for inbound connections to one node."""

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name
        self._queue: Deque[Tuple[bytes, _Endpoint]] = deque()
        self._waiter: Optional[Event] = None
        self.closed = False

    def accept(self, timeout: Optional[float] = None):
        """Sub-generator: next ``(kind, endpoint)`` inbound connection."""
        while True:
            if self._queue:
                return self._queue.popleft()
            if self.closed:
                raise ChannelClosed("listener closed")
            engine = self.engine
            arrival = engine._borrow_event(name=f"accept:{self.name}")
            self._waiter = arrival
            token = None
            if timeout is not None:
                token = engine.fail_after(
                    timeout, arrival, ChannelTimeout, "accept timeout")
            try:
                yield arrival
            finally:
                self._waiter = None
                if token is not None:
                    engine._cancel_timeout(token)
                engine._recycle_event(arrival)

    def _offer(self, kind: bytes, endpoint: _Endpoint) -> None:
        self._queue.append((kind, endpoint))
        waiter, self._waiter = self._waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)

    def close(self) -> None:
        self.closed = True
        waiter, self._waiter = self._waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.fail(ChannelClosed("listener closed"))


class SimNetHub:
    """Registry of nodes, listeners, and live channels."""

    def __init__(self, engine: Engine, *, bandwidth: float = 125e6,
                 latency: float = 1e-4) -> None:
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency = latency
        self.listeners: Dict[str, SimListener] = {}
        self.dead: set[str] = set()
        self.channels: list[SimChannel] = []
        #: When not None, every transmitted message is appended as
        #: ``(send_time, src, dst, message, payload_len)`` — the raw
        #: material for message sequence charts.
        self.message_log: Optional[list] = None

    def start_tracing(self) -> list:
        self.message_log = []
        return self.message_log

    def register(self, name: str) -> SimListener:
        listener = SimListener(self.engine, name)
        self.listeners[name] = listener
        return listener

    def connect(self, src: str, dst: str, kind: bytes):
        """Sub-generator: connect ``src`` → ``dst``; returns the client
        endpoint after one latency.  Raises :class:`ChannelClosed` when
        the destination is dead or not listening (connection refused)."""
        yield Timeout(self.latency)
        if src in self.dead:
            raise ChannelClosed(f"{src} is dead")
        if dst in self.dead or dst not in self.listeners:
            raise ChannelClosed(f"connect refused by {dst}")
        listener = self.listeners[dst]
        if listener.closed:
            raise ChannelClosed(f"connect refused by {dst}")
        channel = SimChannel(self.engine, src, dst,
                             self.bandwidth, self.latency, hub=self)
        self.channels.append(channel)
        listener._offer(kind, channel.ends[1])
        return channel.ends[0]

    def kill(self, name: str) -> None:
        """Host death: reset every channel touching it, close its
        listener (silent deaths keep the listener: see ``kill_silent``)."""
        self.dead.add(name)
        listener = self.listeners.get(name)
        if listener is not None:
            listener.close()
        for channel in self.channels:
            if name in channel.hosts:
                channel.fail()

    def kill_silent(self, name: str) -> None:
        """Hang, not crash: channels stay up but nothing answers.

        The node's processes must be stopped by the caller; peers can
        only discover the death through timeouts and unanswered pings.
        """
        self.dead.add(name)
        # The dead node's own receive watchdogs will never matter again
        # (its processes are gone); disarm them so they drain as skips
        # instead of firing no-ops that would advance the clock.  The
        # *peers'* watchdogs stay armed — timeouts are exactly how they
        # discover the silent death.
        for channel in self.channels:
            if name in channel.hosts:
                channel.ends[channel.hosts.index(name)]._disarm_watchdog()
