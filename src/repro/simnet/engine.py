"""Discrete-event simulation kernel.

A minimal, deterministic, generator-coroutine engine in the style of
SimPy, purpose-built for this reproduction (SimPy itself is not available
offline, and we need far fewer features than it offers):

* :class:`Engine` — binary-heap event queue plus a FIFO for this
  instant's work, with deterministic tie-breaking ``(time, seq)`` across
  both; no wall-clock anywhere.  Queue entries are direct ``(when, seq,
  kind, a, b)`` records dispatched inline — no closure per event.
* :class:`Process` — a Python generator that ``yield``s waitables
  (:class:`Timeout`, :class:`Event`, or another :class:`Process`) and is
  resumed with the waitable's value — or has an exception thrown into it
  when the waitable fails (how simulated node crashes propagate).
* :class:`Event` — one-shot synchronisation cell with ``succeed`` /
  ``fail``.

Example::

    eng = Engine()

    def worker(eng):
        yield Timeout(1.5)
        return eng.now

    p = eng.spawn(worker(eng))
    eng.run()
    assert p.value == 1.5
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.perfstats import get_stats

#: The engine's single time tolerance: ``call_at`` accepts targets up to
#: this far in the (float-drift) past, and :meth:`Engine.run` treats a
#: larger backwards jump as corruption.  Historically these were two
#: different constants (1e-12 and 1e-9); one named epsilon keeps "just
#: now, modulo rounding" meaning the same thing everywhere.
TIME_EPS = 1e-9

# Queue-entry kinds, dispatched inline by the run loop.  Heap entries are
# ``(when, seq, kind, a, b)``; immediate entries ``(seq, kind, a, b)``.
# Direct entries replace the historical one-closure-per-event scheme
# (``lambda: self._step(proc, value, None)``): no closure or cell
# allocation per resume, and the hot kinds dispatch without a Python
# frame beyond the target itself.
_CB = 0       # a = zero-argument callable
_CALL = 1     # a = one-argument callable, b = its argument
_STEP = 2     # a = process, b = value to send
_THROW = 3    # a = process, b = exception to throw
_TIMER = 4    # a = process; resume with None if still alive
_EVFAIL = 5   # a = event, b = (exc_type, message); fail if untriggered


class Interrupted(Exception):
    """Thrown into a process whose wait was cancelled (e.g. host died)."""


class Timeout:
    """Waitable: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class Event:
    """One-shot event: processes wait on it; someone succeeds/fails it."""

    __slots__ = ("_engine", "_done", "_value", "_exc", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self._engine = engine
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: List["Process"] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._value = value
        self._flush()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._exc = exc
        self._flush()

    def _flush(self) -> None:
        waiters = self._waiters
        if not waiters:
            return
        # Safe to clear after iterating: once _done is set, _add_waiter
        # schedules directly instead of appending here.
        engine = self._engine
        exc = self._exc
        if exc is not None:
            for proc in waiters:
                engine._schedule_throw(proc, exc)
        else:
            value = self._value
            for proc in waiters:
                engine._schedule_resume(proc, value)
        waiters.clear()

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            if self._exc is not None:
                self._engine._schedule_throw(proc, self._exc)
            else:
                self._engine._schedule_resume(proc, self._value)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A running generator coroutine inside the engine."""

    __slots__ = ("engine", "gen", "name", "done", "value", "exc",
                 "on_error", "_completion", "_waiting_on", "_timeout_seq")

    def __init__(self, engine: "Engine", gen: Generator, name: str) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.value: Any = None
        self.exc: Optional[BaseException] = None
        #: Optional supervisor hook: called with the exception when the
        #: generator raises.  Returning True absorbs the failure (the
        #: process completes as if it returned None) — this replaces the
        #: historical per-node wrapper *generator* whose only job was a
        #: try/except around ``yield from node.run()``, which cost a
        #: delegation hop on every resume of every process.
        self.on_error: Optional[Callable[[BaseException], bool]] = None
        self._completion: Optional[Event] = None
        self._waiting_on: Optional[Event] = None
        self._timeout_seq: Optional[int] = None  # pending Timeout identity

    @property
    def completion(self) -> Event:
        """Event triggered when this process returns (value = return value)."""
        if self._completion is None:
            self._completion = Event(self.engine, name=f"done:{self.name}")
            if self.done:
                if self.exc is not None:
                    self._completion.fail(self.exc)
                else:
                    self._completion.succeed(self.value)
        return self._completion

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Cancel this process's current wait and throw into it now."""
        if self.done:
            return
        if exc is None:
            exc = Interrupted(f"{self.name} interrupted")
        # Detach from whatever it is waiting on so it is not resumed twice.
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        if self._timeout_seq is not None:
            self.engine._cancel_timeout(self._timeout_seq)
            self._timeout_seq = None
        self.engine._schedule_throw(self, exc)

    def kill(self) -> None:
        """Terminate the process silently (a dead node's code just stops)."""
        if self.done:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        if self._timeout_seq is not None:
            self.engine._cancel_timeout(self._timeout_seq)
            self._timeout_seq = None
        self.done = True
        self.gen.close()
        # A killed process never completes its completion event: anyone
        # waiting on it must be interrupted separately by the killer.


class Engine:
    """The simulation kernel.

    ``tracer`` is the structured event recorder simulation code emits
    into (see :mod:`repro.core.tracing`); it defaults to the shared
    no-op recorder.  :meth:`trace` stamps events with simulated time, so
    a simulated run's timeline is directly comparable with a real one.
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, int, Any, Any]] = []
        #: FIFO of work scheduled for *this* instant: same-time resumes
        #: (the overwhelmingly common case on the protocol-exact data
        #: path) append/popleft here instead of round-tripping the heap.
        #: Entries carry their global ``seq``, so merging with the heap
        #: preserves the engine's ``(time, seq)`` dispatch order exactly.
        self._immediate: deque = deque()
        self._seq = 0
        self._cancelled: set[int] = set()
        self._event_pool: List[Event] = []
        if tracer is None:
            from ..core.tracing import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer

    def trace(self, type_: str, node: str, **kwargs) -> None:
        """Emit one structured event stamped with simulated time."""
        if self.tracer.enabled:
            kwargs.setdefault("t", self.now)
            self.tracer.emit(type_, node, **kwargs)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def _push(self, when: float, kind: int, a: Any, b: Any) -> int:
        """Schedule one queue entry; returns its cancellation token.

        Targets at or (within :data:`TIME_EPS`) before ``now`` go to the
        immediate FIFO — they are *this* instant's work, and a deque
        append/popleft is far cheaper than a heap round trip.  Strictly
        future targets go to the heap.
        """
        self._seq += 1
        if when <= self.now:
            if when < self.now - TIME_EPS:
                raise SimulationError(
                    f"cannot schedule in the past: {when} < {self.now}")
            self._immediate.append((self._seq, kind, a, b))
        else:
            heapq.heappush(self._heap, (when, self._seq, kind, a, b))
        return self._seq

    def call_at(self, when: float, fn: Callable[[], None]) -> int:
        """Schedule ``fn()`` at absolute simulated time ``when``.

        Returns a token usable with :meth:`_cancel_timeout`.
        """
        return self._push(when, _CB, fn, None)

    def call_after(self, delay: float, fn: Callable[[], None]) -> int:
        return self._push(self.now + delay, _CB, fn, None)

    def call_at1(self, when: float, fn: Callable[[Any], None],
                 arg: Any) -> int:
        """Schedule ``fn(arg)`` at ``when`` without building a closure —
        the hot-path variant for per-message work (channel delivery)."""
        return self._push(when, _CALL, fn, arg)

    def fail_after(self, delay: float, event: "Event", exc_type: type,
                   message: str) -> int:
        """Schedule ``event.fail(exc_type(message))`` after ``delay``
        unless the event has triggered by then.

        This is the deadline primitive behind every channel timeout; as
        a direct queue entry it replaces the historical per-wait
        ``lambda ev=...: ev.fail(...) if not ev.triggered else None``
        closures.  The exception is constructed only if the deadline
        actually fires.  Cancel with :meth:`_cancel_timeout`.
        """
        return self._push(self.now + delay, _EVFAIL, event,
                          (exc_type, message))

    def _cancel_timeout(self, seq: int) -> None:
        """Lazily cancel a scheduled entry by its token.

        The queue entry stays in place (removing from a binary heap is
        O(n)) and is skipped when popped.  When cancellations outnumber
        half the queue, both queues are compacted in one O(n) pass so a
        cancel-heavy workload — or a :meth:`run` stopped at ``until``
        before the cancelled entries' times — cannot grow ``_cancelled``
        without bound.
        """
        self._cancelled.add(seq)
        if len(self._cancelled) > (len(self._heap)
                                   + len(self._immediate)) // 2:
            self._heap = [
                entry for entry in self._heap if entry[1] not in self._cancelled
            ]
            heapq.heapify(self._heap)
            if self._immediate:
                self._immediate = deque(
                    e for e in self._immediate if e[0] not in self._cancelled
                )
            self._cancelled.clear()

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    # -- event pooling --------------------------------------------------
    #
    # The protocol-exact channel layer needs one waiter cell per blocked
    # receive/send; at millions of simulated messages that is millions
    # of allocations.  Waits are strictly nested (create → yield →
    # finally: recycle), so a free list is safe *provided the recycler
    # has detached every alias* — the channel code clears its waiter
    # slot and cancels the deadline entry before recycling.

    def _borrow_event(self, name: str = "") -> Event:
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._done = False
            ev._value = None
            ev._exc = None
            ev.name = name
            return ev
        return Event(self, name)

    def _recycle_event(self, ev: Event) -> None:
        if ev._waiters:
            del ev._waiters[:]
        self._event_pool.append(ev)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        proc = Process(self, gen, name)
        self._schedule_resume(proc, None)
        return proc

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self._seq += 1
        self._immediate.append((self._seq, _STEP, proc, value))

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self._seq += 1
        self._immediate.append((self._seq, _THROW, proc, exc))

    def _step(self, proc: Process, value: Any, exc: Optional[BaseException]) -> None:
        if proc.done:
            return
        proc._waiting_on = None
        proc._timeout_seq = None
        try:
            if exc is not None:
                target = proc.gen.throw(exc)
            else:
                target = proc.gen.send(value)
        except StopIteration as stop:
            proc.done = True
            proc.value = stop.value
            if proc._completion is not None:
                proc._completion.succeed(stop.value)
            return
        except Interrupted:
            # Interrupt not caught by the process: it dies quietly.
            proc.done = True
            return
        except Exception as err:  # noqa: BLE001 - propagate to completion
            proc.done = True
            handler = proc.on_error
            if handler is not None and handler(err):
                # Supervisor absorbed it: complete as if run() returned.
                if proc._completion is not None:
                    proc._completion.succeed(None)
                return
            proc.exc = err
            if proc._completion is not None:
                proc._completion.fail(err)
            else:
                raise SimulationError(
                    f"process {proc.name!r} raised with no-one waiting: {err!r}"
                ) from err
            return
        # Inline the Event wait — the hottest yield target by far (every
        # blocked channel receive); anything else takes the full path.
        if target.__class__ is Event:
            proc._waiting_on = target
            if target._done:
                if target._exc is not None:
                    self._schedule_throw(proc, target._exc)
                else:
                    self._schedule_resume(proc, target._value)
            else:
                target._waiters.append(proc)
            return
        self._wait_on(proc, target)

    def _wait_on(self, proc: Process, target: Any) -> None:
        if isinstance(target, Event):          # hottest: channel waits
            proc._waiting_on = target
            target._add_waiter(proc)
        elif isinstance(target, Timeout):
            proc._timeout_seq = self._push(
                self.now + target.delay, _TIMER, proc, None
            )
        elif isinstance(target, Process):
            ev = target.completion
            proc._waiting_on = ev
            ev._add_waiter(proc)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded non-waitable {target!r}"
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain (or simulated time passes ``until``).

        Dispatch order is the engine's determinism contract: globally by
        ``(time, seq)``.  Immediate entries all live at the current
        instant, so the merge rule below — take the FIFO head unless the
        heap front is due *now* with a smaller seq (or is an epsilon-
        drifted past entry) — reproduces exactly the order a single heap
        would have produced.  Returns the final simulated time.

        NB: no local aliases of ``_heap``/``_immediate`` — compaction in
        :meth:`_cancel_timeout` rebinds them mid-run.
        """
        processed = skips = 0
        peak = 0
        # One float compare per heap pop instead of a None test + compare.
        horizon = float("inf") if until is None else until
        cancelled = self._cancelled  # set identity is stable (clear() mutates)
        try:
            while True:
                imm = self._immediate
                heap = self._heap
                pending = len(heap) + len(imm)
                if pending > peak:
                    peak = pending
                now = self.now
                if imm:
                    if heap:
                        head = heap[0]
                        hwhen = head[0]
                        use_imm = hwhen > now or (
                            hwhen == now and head[1] > imm[0][0])
                    else:
                        use_imm = True
                else:
                    use_imm = False
                if use_imm:
                    seq, kind, a, b = imm.popleft()
                    # Truthiness test first: the set is empty in healthy
                    # steady state, and a bool check beats a hash probe.
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        skips += 1
                        continue
                else:
                    if not heap:
                        break
                    when = heap[0][0]
                    if when > horizon:
                        self.now = until
                        return self.now
                    _, seq, kind, a, b = heapq.heappop(heap)
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        skips += 1
                        continue
                    if when < now - TIME_EPS:
                        raise SimulationError("time went backwards")
                    if when > now:
                        self.now = when
                processed += 1
                # Inline dispatch, hottest kinds first.
                if kind == _STEP:
                    self._step(a, b, None)
                elif kind == _CALL:
                    a(b)
                elif kind == _TIMER:
                    self._step(a, None, None)
                elif kind == _CB:
                    a()
                elif kind == _THROW:
                    self._step(a, None, b)
                else:  # _EVFAIL: deadline passed while the event pended
                    if not a._done:
                        exc_type, message = b
                        a.fail(exc_type(message))
            return self.now
        finally:
            get_stats().sim_ran(processed, skips, peak)

    @property
    def pending_events(self) -> int:
        # Every cancelled seq still sits in exactly one of the two
        # queues (compaction and the run() pops keep the structures in
        # sync), so this is O(1) instead of a scan.
        return len(self._heap) + len(self._immediate) - len(self._cancelled)
